"""Plain-text report formatting for experiment outputs.

Every experiment runner returns a data object plus a formatted table so the
benchmark harness can print "the same rows/series the paper reports" without
any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_series", "format_heatmap"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render a fixed-width text table."""
    rendered_rows = [
        [_render_cell(cell, float_format) for cell in row] for row in rows
    ]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(header).ljust(width) for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object], *, float_format: str = "{:.4g}"
) -> str:
    """Render a named (x, y) series as two aligned columns."""
    rows = list(zip(xs, ys))
    return format_table(["x", name], rows, float_format=float_format)


def format_heatmap(
    labels: Sequence[object], matrix, *, title: str | None = None, float_format: str = "{:.2f}"
) -> str:
    """Render a square matrix with row/column labels (Fig. 4 style)."""
    headers = [""] + [str(label) for label in labels]
    rows = []
    for label, row in zip(labels, matrix):
        rows.append([label] + [float(value) for value in row])
    return format_table(headers, rows, title=title, float_format=float_format)


def _render_cell(cell: object, float_format: str) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return float_format.format(cell)
    if cell is None:
        return "-"
    return str(cell)
