"""Evaluation metrics (paper §7.2) and savings analyses (§8).

Error and fidelity are defined per task as ε_i = |E_gs − E_i| / |E_gs| and
F_i = 1 − ε_i; an application reaches a fidelity threshold T only when every
task does.  Shot savings are the ratio of baseline to TreeVQA shots at the
same threshold (Fig. 6) or, for a fixed shot budget, the fidelity difference
(Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.results import RunResult

__all__ = [
    "relative_error",
    "fidelity",
    "SavingsPoint",
    "savings_curve",
    "savings_at_threshold",
    "fidelity_budget_curve",
    "common_max_fidelity",
]


def relative_error(estimated_energy: float, exact_energy: float) -> float:
    """ε = |E_gs − E| / |E_gs| (paper §7.2)."""
    if exact_energy == 0:
        return abs(estimated_energy - exact_energy)
    return abs(exact_energy - estimated_energy) / abs(exact_energy)


def fidelity(estimated_energy: float, exact_energy: float) -> float:
    """F = 1 − ε, clipped to [0, 1]."""
    return float(max(0.0, min(1.0, 1.0 - relative_error(estimated_energy, exact_energy))))


@dataclass(frozen=True)
class SavingsPoint:
    """Shots required by both methods at one fidelity threshold."""

    threshold: float
    treevqa_shots: int | None
    baseline_shots: int | None

    @property
    def savings_ratio(self) -> float | None:
        """baseline / TreeVQA shots; None when either never reached the threshold."""
        if not self.treevqa_shots or not self.baseline_shots:
            return None
        return self.baseline_shots / self.treevqa_shots


def common_max_fidelity(treevqa: RunResult, baseline: RunResult) -> float:
    """Highest fidelity threshold reached by *both* runs (the Fig. 6 'Max VQE Fidelity')."""
    return min(treevqa.max_reported_fidelity(), baseline.max_reported_fidelity())


def savings_curve(
    treevqa: RunResult,
    baseline: RunResult,
    thresholds: list[float] | np.ndarray,
) -> list[SavingsPoint]:
    """Shots required by each method across a sweep of fidelity thresholds (Fig. 6)."""
    points = []
    for threshold in thresholds:
        points.append(
            SavingsPoint(
                threshold=float(threshold),
                treevqa_shots=treevqa.shots_to_reach_fidelity(float(threshold)),
                baseline_shots=baseline.shots_to_reach_fidelity(float(threshold)),
            )
        )
    return points


def savings_at_threshold(
    treevqa: RunResult, baseline: RunResult, threshold: float | None = None
) -> tuple[float, float | None]:
    """(threshold used, savings ratio) at the highest commonly reached fidelity.

    When ``threshold`` is None the highest fidelity both methods reach is
    used, mirroring the per-panel 'Max VQE Fidelity / Shot savings' labels of
    Fig. 6.
    """
    if threshold is None:
        threshold = common_max_fidelity(treevqa, baseline)
    point = SavingsPoint(
        threshold=threshold,
        treevqa_shots=treevqa.shots_to_reach_fidelity(threshold),
        baseline_shots=baseline.shots_to_reach_fidelity(threshold),
    )
    return threshold, point.savings_ratio


def fidelity_budget_curve(
    result: RunResult, budgets: list[int] | np.ndarray, *, aggregate: str = "min"
) -> list[tuple[int, float]]:
    """Fidelity achievable under a sweep of shot budgets (Fig. 7)."""
    if aggregate not in ("min", "mean"):
        raise ValueError("aggregate must be 'min' or 'mean'")
    curve = []
    for budget in budgets:
        budget = int(budget)
        value = (
            result.fidelity_at_shots(budget)
            if aggregate == "min"
            else result.mean_fidelity_at_shots(budget)
        )
        curve.append((budget, value))
    return curve
