"""Figure 13 — impact of split timing (paper §9.1).

For three chemistry benchmarks a *single* split is enforced at a chosen point
of the optimisation (expressed as a percentage of the iteration budget),
automatic splitting is disabled, and the final mean error rate across tasks
is reported.  The paper finds a mid-optimisation sweet spot: splitting too
early wastes shared progress, splitting too late overfits to the mixed
Hamiltonian.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...core import TreeVQAController
from ..reporting import format_table
from .common import Preset, build_vqe_suite, default_config, get_preset

__all__ = ["SplitTimingPoint", "Figure13Result", "run_figure13", "format_figure13"]

#: Split points as a percentage of the iteration budget (paper's x-axis).
DEFAULT_SPLIT_PERCENTAGES = (25, 33, 41, 50, 58, 66, 75)


@dataclass(frozen=True)
class SplitTimingPoint:
    """Final error when the single split happens at one timing."""

    benchmark: str
    split_percent: float
    mean_error_percent: float
    min_fidelity: float


@dataclass
class Figure13Result:
    """The split-timing sweep for every benchmark."""

    points: list[SplitTimingPoint] = field(default_factory=list)

    def for_benchmark(self, benchmark: str) -> list[SplitTimingPoint]:
        return [point for point in self.points if point.benchmark == benchmark]

    def best_split_percent(self, benchmark: str) -> float | None:
        points = self.for_benchmark(benchmark)
        if not points:
            return None
        return min(points, key=lambda point: point.mean_error_percent).split_percent


def run_figure13(
    preset: str | Preset = "fast",
    benchmarks: tuple[str, ...] = ("H2", "HF", "LiH"),
    split_percentages: tuple[float, ...] | None = None,
    *,
    seed: int = 7,
) -> Figure13Result:
    """Sweep the forced-split timing for each benchmark."""
    preset = get_preset(preset)
    percentages = split_percentages or (
        (25, 50, 75) if preset.name == "fast" else DEFAULT_SPLIT_PERCENTAGES
    )
    result = Figure13Result()
    for benchmark in benchmarks:
        for percent in percentages:
            suite = build_vqe_suite(benchmark, preset)
            split_iteration = max(1, int(round(preset.max_rounds * percent / 100.0)))
            config = default_config(
                preset,
                seed=seed,
                forced_split_iteration=split_iteration,
                disable_automatic_splits=True,
            )
            run = TreeVQAController(suite.tasks, suite.ansatz, config).run()
            errors = [outcome.error for outcome in run.outcomes]
            result.points.append(
                SplitTimingPoint(
                    benchmark=benchmark,
                    split_percent=float(percent),
                    mean_error_percent=float(np.mean(errors) * 100.0),
                    min_fidelity=run.min_fidelity(),
                )
            )
    return result


def format_figure13(result: Figure13Result) -> str:
    """Render the split-timing sweep."""
    rows = [
        [point.benchmark, point.split_percent, point.mean_error_percent, point.min_fidelity]
        for point in result.points
    ]
    return format_table(
        ["benchmark", "split point (% of iterations)", "mean error (%)", "min fidelity"],
        rows,
        title="Fig. 13: splitting-point timing analysis",
    )
