"""Figure 12 — TreeVQA shot savings for QAOA / MaxCut (paper §8.8).

Three load-scale scenarios on the IEEE 14-bus system, each a family of ten
isomorphic weighted MaxCut instances solved with ma-QAOA.  All instances
share a Red-QAOA-style initialisation.  The figure reports, per scenario, the
edge-weight variance across instances (purple bars) and TreeVQA's shot
savings over the independent baseline (blue bars): lower variance (more
similar instances) should give larger savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...hamiltonians.catalog import maxcut_ieee14_suite
from ...hamiltonians.ieee14 import LOAD_SCENARIOS
from ...initialization.red_qaoa import red_qaoa_initialization
from ..metrics import savings_at_threshold
from ..reporting import format_table
from .common import BenchmarkComparison, Preset, default_config, get_preset, run_comparison

__all__ = ["Figure12Bar", "Figure12Result", "run_figure12", "format_figure12"]


@dataclass(frozen=True)
class Figure12Bar:
    """One load-scale scenario."""

    scenario: str
    edge_weight_variance: float
    savings_ratio: float | None
    fidelity: float
    comparison: BenchmarkComparison


@dataclass
class Figure12Result:
    """All three scenarios."""

    bars: list[Figure12Bar] = field(default_factory=list)

    def ordered_by_variance(self) -> list[Figure12Bar]:
        return sorted(self.bars, key=lambda bar: bar.edge_weight_variance)


def run_figure12(
    preset: str | Preset = "fast",
    scenarios: tuple[str, ...] | None = None,
    *,
    seed: int = 7,
    qaoa_layers: int = 1,
) -> Figure12Result:
    """Run the MaxCut comparison for every load scenario."""
    preset = get_preset(preset)
    names = scenarios or tuple(s.name for s in LOAD_SCENARIOS)
    num_instances = preset.num_tasks
    result = Figure12Result()
    for name in names:
        suite = maxcut_ieee14_suite(name, num_instances=num_instances, qaoa_layers=qaoa_layers)
        # Red-QAOA initialisation shared by all isomorphic instances (§8.8).
        reference_graph = suite.tasks[0].metadata["graph"]
        initialization = red_qaoa_initialization(reference_graph, num_layers=qaoa_layers)
        initial_parameters = initialization.broadcast(suite.ansatz)
        config = default_config(preset, seed=seed)
        comparison = run_comparison(
            suite,
            config,
            baseline_iterations=preset.baseline_iterations,
            initial_parameters=initial_parameters,
        )
        fidelity, savings = savings_at_threshold(comparison.treevqa, comparison.baseline)
        result.bars.append(
            Figure12Bar(
                scenario=name,
                edge_weight_variance=float(suite.metadata["edge_weight_variance"]),
                savings_ratio=savings,
                fidelity=fidelity,
                comparison=comparison,
            )
        )
    return result


def format_figure12(result: Figure12Result) -> str:
    """Render the variance / savings bars."""
    rows = [
        [bar.scenario, bar.edge_weight_variance, bar.savings_ratio, bar.fidelity]
        for bar in result.bars
    ]
    return format_table(
        ["load scale range", "edge weight variance", "shot savings", "fidelity"],
        rows,
        title="Fig. 12: TreeVQA shot savings for QAOA (IEEE 14-bus MaxCut)",
    )
