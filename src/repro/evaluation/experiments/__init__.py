"""Experiment runners, one module per paper table / figure.

| Paper artefact | Runner |
|---|---|
| Table 1  | :func:`run_table1` |
| Fig. 4   | :func:`run_figure4` |
| Fig. 6   | :func:`run_figure6` |
| Fig. 7   | :func:`run_figure7` |
| Fig. 8   | :func:`run_figure8` |
| Fig. 9   | :func:`run_figure9` |
| Fig. 10  | :func:`run_figure10` |
| Fig. 11  | :func:`run_figure11` |
| Table 2  | :func:`run_table2` |
| Fig. 12  | :func:`run_figure12` |
| Fig. 13  | :func:`run_figure13` |
| Fig. 14 / §9.1 | :func:`run_figure14` |
"""

from .common import (
    FIG6_BENCHMARKS,
    PRESETS,
    BenchmarkComparison,
    Preset,
    build_vqe_suite,
    default_config,
    get_preset,
    run_comparison,
)
from .figure10 import Figure10Result, GapRecoveryPoint, format_figure10, run_figure10
from .figure11 import Figure11Bar, Figure11Result, format_figure11, run_figure11
from .figure12 import Figure12Bar, Figure12Result, format_figure12, run_figure12
from .figure13 import Figure13Result, SplitTimingPoint, format_figure13, run_figure13
from .figure14 import (
    Figure14Result,
    ThresholdPoint,
    WindowSizePoint,
    format_figure14,
    run_figure14,
    run_threshold_sweep,
    run_window_size_sweep,
)
from .figure4 import Figure4Result, format_figure4, run_figure4, run_figure4a
from .figure6 import Figure6Panel, Figure6Result, format_figure6, run_figure6, run_figure6_panel
from .figure7 import Figure7Panel, Figure7Result, format_figure7, run_figure7, run_figure7_panel
from .figure8 import Figure8Result, PrecisionPoint, format_figure8, run_figure8
from .figure9 import (
    Figure9Result,
    LargeScaleBenchmarkResult,
    LargeScaleTaskResult,
    format_figure9,
    run_figure9,
    run_large_scale_benchmark,
)
from .table1 import Table1Row, format_table1, run_table1
from .table2 import Table2Result, Table2Row, format_table2, run_table2

__all__ = [
    "FIG6_BENCHMARKS",
    "PRESETS",
    "BenchmarkComparison",
    "Preset",
    "build_vqe_suite",
    "default_config",
    "get_preset",
    "run_comparison",
    "Figure4Result",
    "format_figure4",
    "run_figure4",
    "run_figure4a",
    "Figure6Panel",
    "Figure6Result",
    "format_figure6",
    "run_figure6",
    "run_figure6_panel",
    "Figure7Panel",
    "Figure7Result",
    "format_figure7",
    "run_figure7",
    "run_figure7_panel",
    "Figure8Result",
    "PrecisionPoint",
    "format_figure8",
    "run_figure8",
    "Figure9Result",
    "LargeScaleBenchmarkResult",
    "LargeScaleTaskResult",
    "format_figure9",
    "run_figure9",
    "run_large_scale_benchmark",
    "Figure10Result",
    "GapRecoveryPoint",
    "format_figure10",
    "run_figure10",
    "Figure11Bar",
    "Figure11Result",
    "format_figure11",
    "run_figure11",
    "Figure12Bar",
    "Figure12Result",
    "format_figure12",
    "run_figure12",
    "Figure13Result",
    "SplitTimingPoint",
    "format_figure13",
    "run_figure13",
    "Figure14Result",
    "ThresholdPoint",
    "WindowSizePoint",
    "format_figure14",
    "run_figure14",
    "run_threshold_sweep",
    "run_window_size_sweep",
    "Table1Row",
    "format_table1",
    "run_table1",
    "Table2Result",
    "Table2Row",
    "format_table2",
    "run_table2",
]
