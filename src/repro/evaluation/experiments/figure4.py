"""Figure 4 — the task-similarity observation (paper §3).

* Fig. 4a: dominant ground-state basis amplitudes of H2 at several bond
  lengths, showing that the wavefunction varies gradually with geometry.
* Fig. 4b: pairwise ground-state overlap |<ψ_i|ψ_j>|² of LiH tasks across a
  wide bond-length scan.
* Fig. 4c: the TreeVQA Hamiltonian similarity metric (ℓ1 coefficient distance
  through a Gaussian kernel) over the same scan, showing it tracks the
  ground-state overlap structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.similarity import ground_state_overlap_matrix, normalize_matrix, similarity_matrix
from ...hamiltonians.molecular import MolecularFamily, get_molecule
from ...quantum.exact import ground_state
from ..reporting import format_heatmap, format_table

__all__ = ["Figure4aRow", "Figure4Result", "run_figure4a", "run_figure4", "format_figure4"]

#: Bond lengths used by the Fig. 4b/4c heatmaps (Å), matching the paper's axis.
DEFAULT_HEATMAP_LENGTHS = (0.6, 0.7, 0.9, 1.0, 1.2, 1.3, 1.4, 1.6, 1.7, 1.8, 2.0, 2.1, 2.3, 2.4)


@dataclass(frozen=True)
class Figure4aRow:
    """Dominant ground-state amplitudes of H2 at one bond length."""

    bond_length: float
    amplitudes: dict[str, float]


@dataclass
class Figure4Result:
    """All three panels of Fig. 4."""

    h2_states: list[Figure4aRow]
    bond_lengths: tuple[float, ...]
    overlap_matrix: np.ndarray
    hamiltonian_similarity: np.ndarray

    def correlation(self) -> float:
        """Pearson correlation between the two heatmaps' off-diagonal entries.

        The paper's claim is that the coefficient-based similarity metric is a
        faithful proxy for ground-state overlap; a strongly positive
        correlation reproduces that claim quantitatively.
        """
        mask = ~np.eye(self.overlap_matrix.shape[0], dtype=bool)
        a = self.overlap_matrix[mask]
        b = self.hamiltonian_similarity[mask]
        if np.std(a) == 0 or np.std(b) == 0:
            return 1.0
        return float(np.corrcoef(a, b)[0, 1])


def run_figure4a(
    bond_lengths: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0), top_amplitudes: int = 4
) -> list[Figure4aRow]:
    """Ground states of H2 at several bond lengths (Fig. 4a)."""
    family = MolecularFamily(get_molecule("H2"))
    rows = []
    for length in bond_lengths:
        result = ground_state(family.hamiltonian(length))
        probabilities = result.statevector.probabilities()
        order = np.argsort(probabilities)[::-1][:top_amplitudes]
        amplitudes = {
            format(int(index), f"0{family.num_qubits}b"): float(np.sqrt(probabilities[index]))
            for index in order
        }
        rows.append(Figure4aRow(bond_length=float(length), amplitudes=amplitudes))
    return rows


def run_figure4(
    molecule: str = "LiH",
    bond_lengths: tuple[float, ...] = DEFAULT_HEATMAP_LENGTHS,
) -> Figure4Result:
    """Compute all three Fig. 4 panels."""
    family = MolecularFamily(get_molecule(molecule))
    hamiltonians = [family.hamiltonian(length) for length in bond_lengths]
    overlap = normalize_matrix(ground_state_overlap_matrix(hamiltonians))
    hamiltonian_similarity = normalize_matrix(similarity_matrix(hamiltonians))
    return Figure4Result(
        h2_states=run_figure4a(),
        bond_lengths=tuple(float(length) for length in bond_lengths),
        overlap_matrix=overlap,
        hamiltonian_similarity=hamiltonian_similarity,
    )


def format_figure4(result: Figure4Result) -> str:
    """Render the Fig. 4 panels as text heatmaps."""
    labels = [f"{length:.1f}" for length in result.bond_lengths]
    sections = []
    headers = ["Bond (Å)"] + [f"state {i}" for i in range(len(result.h2_states[0].amplitudes))]
    rows = []
    for row in result.h2_states:
        cells = [f"{row.bond_length:.2f}"]
        cells.extend(f"|{bits}>: {amp:.3f}" for bits, amp in row.amplitudes.items())
        rows.append(cells)
    sections.append(format_table(headers, rows, title="Fig. 4a: H2 ground-state amplitudes"))
    sections.append(
        format_heatmap(
            labels,
            result.overlap_matrix,
            title="Fig. 4b: ground-state overlap (normalised)",
        )
    )
    sections.append(
        format_heatmap(
            labels, result.hamiltonian_similarity,
            title="Fig. 4c: Hamiltonian similarity in TreeVQA norm space (normalised)",
        )
    )
    sections.append(f"off-diagonal correlation (4b vs 4c): {result.correlation():.3f}")
    return "\n\n".join(sections)
