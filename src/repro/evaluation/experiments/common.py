"""Shared infrastructure for the figure/table experiment runners.

Every evaluation experiment compares TreeVQA against the independent baseline
on one or more benchmark suites.  This module centralises:

* presets ("fast" for CI/benchmark runs, "full" for closer-to-paper runs) that
  control task counts, controller rounds and suite sizes;
* per-suite-kind TreeVQA configurations (SPSA settings, split thresholds);
* :func:`run_comparison`, which runs both methods on a suite and returns a
  :class:`BenchmarkComparison` that the figure analyses consume.

The paper runs 16k–30k SPSA iterations and 10^9–10^11 shots per panel; the
presets scale iteration counts down proportionally for *both* methods, which
preserves the savings-ratio shape (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...core import (
    IndependentBaselineResult,
    IndependentVQABaseline,
    TreeVQAConfig,
    TreeVQAController,
    TreeVQAResult,
)
from ...hamiltonians.catalog import (
    BenchmarkSuite,
    chemistry_suite,
    maxcut_ieee14_suite,
    tfim_suite,
    xxz_suite,
)

__all__ = [
    "Preset",
    "PRESETS",
    "get_preset",
    "default_config",
    "BenchmarkComparison",
    "run_comparison",
    "build_vqe_suite",
    "FIG6_BENCHMARKS",
]


@dataclass(frozen=True)
class Preset:
    """Experiment size preset."""

    name: str
    num_tasks: int
    max_rounds: int
    baseline_iterations: int
    chemistry_qubits_cap: int
    spin_sites: int
    warmup_iterations: int
    window_size: int


PRESETS: dict[str, Preset] = {
    "fast": Preset(
        name="fast", num_tasks=5, max_rounds=120, baseline_iterations=120,
        chemistry_qubits_cap=8, spin_sites=5, warmup_iterations=15, window_size=8,
    ),
    "full": Preset(
        name="full", num_tasks=10, max_rounds=400, baseline_iterations=400,
        chemistry_qubits_cap=10, spin_sites=6, warmup_iterations=30, window_size=12,
    ),
}


def get_preset(preset: str | Preset) -> Preset:
    """Resolve a preset by name."""
    if isinstance(preset, Preset):
        return preset
    try:
        return PRESETS[preset]
    except KeyError:
        raise ValueError(f"unknown preset {preset!r}; choose from {sorted(PRESETS)}") from None


def default_config(
    preset: Preset,
    *,
    optimizer: str = "spsa",
    seed: int = 7,
    max_total_shots: int | None = None,
    epsilon_split: float = 1.5e-3,
    **overrides,
) -> TreeVQAConfig:
    """The TreeVQA configuration used by the evaluation experiments."""
    optimizer_kwargs = {"learning_rate": 0.35, "perturbation": 0.15,
                        "expected_iterations": preset.max_rounds}
    if optimizer == "cobyla":
        optimizer_kwargs = {"initial_trust_radius": 0.4, "evaluations_per_step": 4}
    settings = dict(
        max_rounds=preset.max_rounds,
        max_total_shots=max_total_shots,
        warmup_iterations=preset.warmup_iterations,
        window_size=preset.window_size,
        epsilon_split=epsilon_split,
        individual_slope_threshold=2e-4,
        optimizer=optimizer,
        optimizer_kwargs=optimizer_kwargs,
        estimator="exact",
        seed=seed,
    )
    settings.update(overrides)
    return TreeVQAConfig(**settings)


@dataclass
class BenchmarkComparison:
    """TreeVQA vs baseline results on one suite."""

    suite: BenchmarkSuite
    treevqa: TreeVQAResult
    baseline: IndependentBaselineResult
    config: TreeVQAConfig
    metadata: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.suite.name


def run_comparison(
    suite: BenchmarkSuite,
    config: TreeVQAConfig,
    *,
    baseline_iterations: int | None = None,
    initial_parameters: np.ndarray | dict | None = None,
) -> BenchmarkComparison:
    """Run TreeVQA and the independent baseline on the same suite.

    Both methods start from the *same* initial parameters.  Unless an explicit
    initialisation is supplied (CAFQA, Red-QAOA), the standard VQE practice of
    random initial angles is used — this is what makes the paper's fidelity
    axes start well below 1 even for Hartree–Fock-referenced molecules.
    """
    if initial_parameters is None:
        rng = np.random.default_rng(config.seed)
        initial_parameters = rng.normal(0.0, 0.8, suite.ansatz.num_parameters)
    controller = TreeVQAController(
        suite.tasks, suite.ansatz, config, initial_parameters=initial_parameters
    )
    treevqa = controller.run()
    baseline = IndependentVQABaseline(
        suite.tasks, suite.ansatz, config, initial_parameters=initial_parameters
    ).run(iterations_per_task=baseline_iterations or config.max_rounds)
    return BenchmarkComparison(
        suite=suite,
        treevqa=treevqa,
        baseline=baseline,
        config=config,
        metadata={
            "backend": controller.backend.name,
            "backend_batches": controller.scheduler.batches_executed,
            "requests_executed": controller.scheduler.requests_executed,
        },
    )


#: The six VQE panels of Fig. 6 / Fig. 7 / Fig. 11.
FIG6_BENCHMARKS = ("HF", "LiH", "BeH2", "XXZ", "TFIM", "H2")


def build_vqe_suite(name: str, preset: Preset) -> BenchmarkSuite:
    """Build one of the six Fig. 6 benchmark suites at the preset's size."""
    key = name.lower()
    if key in ("hf", "lih", "beh2", "h2", "c2h2"):
        spec_name = {"hf": "HF", "lih": "LiH", "beh2": "BeH2", "h2": "H2", "c2h2": "C2H2"}[key]
        suite = chemistry_suite(spec_name)
        if spec_name != "H2" and preset.num_tasks < len(suite.tasks):
            suite.tasks = suite.tasks[: preset.num_tasks]
        return suite
    if key == "xxz":
        deltas = list(np.linspace(0.55, 1.45, preset.num_tasks))
        return xxz_suite(num_sites=preset.spin_sites, anisotropies=deltas)
    if key in ("tfim", "transversefieldising"):
        fields = list(np.linspace(0.55, 1.45, preset.num_tasks))
        return tfim_suite(num_sites=preset.spin_sites, fields=fields)
    if key in ("maxcut", "ieee14"):
        return maxcut_ieee14_suite(num_instances=preset.num_tasks)
    raise ValueError(f"unknown VQE benchmark {name!r}")
