"""Figure 8 — shot savings versus task precision (paper §8.3).

Over a fixed bond-length range, the precision (scan step size) controls how
many tasks the application contains: finer precision → more, more-similar
tasks → larger TreeVQA savings.  The finest paper setting (0.001 Å, ~300
tasks) is extrapolated from the measured trend, exactly as the paper's shaded
bars are.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...ansatz import HardwareEfficientAnsatz
from ...applications.pes import build_pes_tasks
from ...hamiltonians.catalog import BenchmarkSuite
from ...hamiltonians.molecular import get_molecule
from ..metrics import savings_at_threshold
from ..reporting import format_table
from .common import Preset, default_config, get_preset, run_comparison

__all__ = ["PrecisionPoint", "Figure8Result", "run_figure8", "format_figure8"]

#: Paper precision sweep (Å); the finest level is inferred, not measured.
PAPER_PRECISIONS = (0.1, 0.07, 0.05, 0.03, 0.01, 0.001)


@dataclass(frozen=True)
class PrecisionPoint:
    """Savings measured (or inferred) at one precision level."""

    molecule: str
    precision: float
    num_tasks: int
    savings_ratio: float | None
    fidelity: float
    inferred: bool = False


@dataclass
class Figure8Result:
    """The precision sweep for every molecule."""

    points: list[PrecisionPoint] = field(default_factory=list)

    def for_molecule(self, molecule: str) -> list[PrecisionPoint]:
        return [point for point in self.points if point.molecule == molecule]

    def savings_increase_with_precision(self, molecule: str) -> bool:
        """True when the finest measured precision saves at least as much as the coarsest."""
        measured = [
            point for point in self.for_molecule(molecule)
            if not point.inferred and point.savings_ratio is not None
        ]
        if len(measured) < 2:
            return False
        return measured[-1].savings_ratio >= measured[0].savings_ratio


def _extrapolate(points: list[PrecisionPoint], target_precision: float) -> PrecisionPoint | None:
    """Linear extrapolation of savings against task count (the paper's inferred bar)."""
    measured = [p for p in points if p.savings_ratio is not None]
    if len(measured) < 2:
        return None
    counts = np.array([p.num_tasks for p in measured], dtype=float)
    savings = np.array([p.savings_ratio for p in measured], dtype=float)
    slope, intercept = np.polyfit(counts, savings, 1)
    # Task count implied by the finest precision over the same bond range.
    molecule = measured[0].molecule
    spec = get_molecule(molecule)
    span = spec.bond_range[1] - spec.bond_range[0]
    target_tasks = int(round(span / target_precision)) + 1
    predicted = max(float(slope * target_tasks + intercept), 0.0)
    return PrecisionPoint(
        molecule=molecule,
        precision=target_precision,
        num_tasks=target_tasks,
        savings_ratio=predicted,
        fidelity=measured[-1].fidelity,
        inferred=True,
    )


def run_figure8(
    preset: str | Preset = "fast",
    molecules: tuple[str, ...] = ("HF", "LiH", "BeH2"),
    precisions: tuple[float, ...] | None = None,
    *,
    seed: int = 7,
    max_tasks: int = 12,
    infer_finest: bool = True,
) -> Figure8Result:
    """Measure savings across precision levels for each molecule."""
    preset = get_preset(preset)
    if precisions is None:
        precisions = (0.1, 0.05, 0.03) if preset.name == "fast" else (0.1, 0.07, 0.05, 0.03, 0.01)
    result = Figure8Result()
    for molecule in molecules:
        measured: list[PrecisionPoint] = []
        for precision in sorted(precisions, reverse=True):
            tasks, family = build_pes_tasks(molecule, precision=precision)
            if len(tasks) > max_tasks:
                tasks = tasks[:max_tasks]
            ansatz = HardwareEfficientAnsatz(
                family.num_qubits, num_layers=2,
                initial_bitstring=family.hartree_fock_bitstring(),
            )
            suite = BenchmarkSuite(
                name=f"{molecule}@{precision}", tasks=tasks, ansatz=ansatz, kind="chemistry"
            )
            config = default_config(preset, seed=seed)
            comparison = run_comparison(
                suite, config, baseline_iterations=preset.baseline_iterations
            )
            fidelity, savings = savings_at_threshold(comparison.treevqa, comparison.baseline)
            point = PrecisionPoint(
                molecule=molecule,
                precision=precision,
                num_tasks=len(tasks),
                savings_ratio=savings,
                fidelity=fidelity,
            )
            measured.append(point)
            result.points.append(point)
        if infer_finest:
            inferred = _extrapolate(measured, PAPER_PRECISIONS[-1])
            if inferred is not None:
                result.points.append(inferred)
    return result


def format_figure8(result: Figure8Result) -> str:
    """Render the precision sweep as a table."""
    rows = []
    for point in result.points:
        rows.append(
            [
                point.molecule,
                point.precision,
                point.num_tasks,
                point.savings_ratio,
                point.fidelity,
                "inferred" if point.inferred else "measured",
            ]
        )
    return format_table(
        ["molecule", "precision (Å)", "#tasks", "shot savings", "fidelity", "kind"],
        rows,
        title="Fig. 8: shot savings by precision",
    )
