"""Table 1 — chemistry benchmark characteristics.

Reports, for every molecular family, the paper's Hamiltonian term and qubit
counts alongside the scaled sizes this reproduction instantiates, plus the
bond-length range and equilibrium bond length.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...hamiltonians.molecular import MOLECULES, MolecularFamily
from ..reporting import format_table

__all__ = ["Table1Row", "run_table1", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One molecule's characteristics."""

    molecule: str
    paper_num_terms: int
    paper_num_qubits: int
    repro_num_terms: int
    repro_num_qubits: int
    bond_range: tuple[float, float]
    equilibrium_bond: float
    num_instances: int


def run_table1(molecules: tuple[str, ...] | None = None) -> list[Table1Row]:
    """Instantiate every chemistry family and report its actual sizes."""
    names = molecules or tuple(MOLECULES)
    rows = []
    for name in names:
        spec = MOLECULES[name]
        family = MolecularFamily(spec)
        hamiltonian = family.hamiltonian(spec.equilibrium_bond)
        rows.append(
            Table1Row(
                molecule=spec.name,
                paper_num_terms=spec.paper_num_terms,
                paper_num_qubits=spec.paper_num_qubits,
                repro_num_terms=hamiltonian.num_terms,
                repro_num_qubits=spec.num_qubits,
                bond_range=spec.bond_range,
                equilibrium_bond=spec.equilibrium_bond,
                num_instances=len(spec.default_bond_lengths),
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render the Table 1 analogue as text."""
    headers = [
        "Molecule", "Paper #terms", "Paper #qubits", "Repro #terms", "Repro #qubits",
        "Bond range (Å)", "Eq. bond (Å)", "#instances",
    ]
    body = [
        [
            row.molecule, row.paper_num_terms, row.paper_num_qubits,
            row.repro_num_terms, row.repro_num_qubits,
            f"{row.bond_range[0]:.2f}-{row.bond_range[1]:.2f}",
            row.equilibrium_bond, row.num_instances,
        ]
        for row in rows
    ]
    return format_table(headers, body, title="Table 1: chemistry benchmarks")
