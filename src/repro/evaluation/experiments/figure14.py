"""Figure 14 and the §9.1 threshold study — window-size and split-threshold sweeps.

* Window size: the number of iterations the slope regression averages over.
  Small windows are noise-sensitive (premature splits); large windows delay
  needed splits.  Reported per setting: final accuracy (mean fidelity, %) and
  the tree critical depth as a percentage of the iteration budget.
* Split threshold ε_split: swept over a logarithmic range; the paper finds an
  optimal middle ground.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...core import TreeVQAController
from ..reporting import format_table
from .common import Preset, build_vqe_suite, default_config, get_preset

__all__ = [
    "WindowSizePoint",
    "ThresholdPoint",
    "Figure14Result",
    "run_window_size_sweep",
    "run_threshold_sweep",
    "run_figure14",
    "format_figure14",
]


@dataclass(frozen=True)
class WindowSizePoint:
    """Outcome for one window-size setting."""

    benchmark: str
    window_size: int
    window_ratio: float
    final_accuracy_percent: float
    critical_depth_percent: float
    num_splits: int


@dataclass(frozen=True)
class ThresholdPoint:
    """Outcome for one ε_split setting."""

    benchmark: str
    epsilon_split: float
    mean_error_percent: float
    num_splits: int


@dataclass
class Figure14Result:
    """Window-size and threshold sweeps."""

    window_points: list[WindowSizePoint] = field(default_factory=list)
    threshold_points: list[ThresholdPoint] = field(default_factory=list)

    def best_window(self, benchmark: str) -> WindowSizePoint | None:
        points = [p for p in self.window_points if p.benchmark == benchmark]
        if not points:
            return None
        return max(points, key=lambda point: point.final_accuracy_percent)

    def best_threshold(self, benchmark: str) -> ThresholdPoint | None:
        points = [p for p in self.threshold_points if p.benchmark == benchmark]
        if not points:
            return None
        return min(points, key=lambda point: point.mean_error_percent)


def run_window_size_sweep(
    benchmark: str,
    preset: Preset,
    window_sizes: tuple[int, ...],
    *,
    seed: int = 7,
) -> list[WindowSizePoint]:
    """Run TreeVQA with several slope-window sizes."""
    points = []
    for window in window_sizes:
        suite = build_vqe_suite(benchmark, preset)
        config = default_config(preset, seed=seed, window_size=window)
        run = TreeVQAController(suite.tasks, suite.ansatz, config).run()
        accuracy = run.mean_fidelity() * 100.0
        critical_depth = run.tree.critical_depth_iterations()
        points.append(
            WindowSizePoint(
                benchmark=benchmark,
                window_size=window,
                window_ratio=window / preset.max_rounds,
                final_accuracy_percent=accuracy,
                critical_depth_percent=100.0 * critical_depth / max(run.total_rounds, 1),
                num_splits=run.tree.num_splits,
            )
        )
    return points


def run_threshold_sweep(
    benchmark: str,
    preset: Preset,
    thresholds: tuple[float, ...],
    *,
    seed: int = 7,
) -> list[ThresholdPoint]:
    """Run TreeVQA with several ε_split values."""
    points = []
    for epsilon in thresholds:
        suite = build_vqe_suite(benchmark, preset)
        config = default_config(preset, seed=seed, epsilon_split=epsilon)
        run = TreeVQAController(suite.tasks, suite.ansatz, config).run()
        errors = [outcome.error for outcome in run.outcomes]
        points.append(
            ThresholdPoint(
                benchmark=benchmark,
                epsilon_split=epsilon,
                mean_error_percent=float(np.mean(errors) * 100.0),
                num_splits=run.tree.num_splits,
            )
        )
    return points


def run_figure14(
    preset: str | Preset = "fast",
    benchmarks: tuple[str, ...] = ("LiH", "HF"),
    *,
    window_sizes: tuple[int, ...] | None = None,
    thresholds: tuple[float, ...] | None = None,
    include_threshold_sweep: bool = True,
    seed: int = 7,
) -> Figure14Result:
    """Run the window-size sweep (and optionally the threshold sweep)."""
    preset = get_preset(preset)
    if window_sizes is None:
        window_sizes = (4, 8, 16) if preset.name == "fast" else (4, 8, 16, 32, 48)
    if thresholds is None:
        thresholds = (
            (3e-4, 1.5e-3, 1e-2) if preset.name == "fast"
            else tuple(np.geomspace(1e-4, 3e-2, 6))
        )
    result = Figure14Result()
    for benchmark in benchmarks:
        result.window_points.extend(
            run_window_size_sweep(benchmark, preset, window_sizes, seed=seed)
        )
        if include_threshold_sweep:
            result.threshold_points.extend(
                run_threshold_sweep(benchmark, preset, thresholds, seed=seed)
            )
    return result


def format_figure14(result: Figure14Result) -> str:
    """Render both sweeps."""
    sections = []
    window_rows = [
        [p.benchmark, p.window_size, p.window_ratio, p.final_accuracy_percent,
         p.critical_depth_percent, p.num_splits]
        for p in result.window_points
    ]
    sections.append(
        format_table(
            ["benchmark", "window size", "window ratio", "final accuracy (%)",
             "critical depth (% of budget)", "#splits"],
            window_rows,
            title="Fig. 14: window-size analysis",
        )
    )
    if result.threshold_points:
        threshold_rows = [
            [p.benchmark, p.epsilon_split, p.mean_error_percent, p.num_splits]
            for p in result.threshold_points
        ]
        sections.append(
            format_table(
                ["benchmark", "epsilon_split", "mean error (%)", "#splits"],
                threshold_rows,
                title="§9.1: splitting-threshold analysis",
            )
        )
    return "\n\n".join(sections)
