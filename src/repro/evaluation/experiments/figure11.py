"""Figure 11 — untuned TreeVQA with the COBYLA optimizer (paper §8.6).

The six VQE benchmarks are re-run with COBYLA instead of SPSA, without any
TreeVQA re-tuning, to demonstrate plug-and-play behaviour across optimizers.
The figure reports a shot-savings bar (and the fidelity reached) per
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..metrics import savings_at_threshold
from ..reporting import format_table
from .common import (
    FIG6_BENCHMARKS,
    BenchmarkComparison,
    Preset,
    build_vqe_suite,
    default_config,
    get_preset,
    run_comparison,
)

__all__ = ["Figure11Bar", "Figure11Result", "run_figure11", "format_figure11"]


@dataclass(frozen=True)
class Figure11Bar:
    """One benchmark's COBYLA savings bar."""

    benchmark: str
    fidelity: float
    savings_ratio: float | None
    comparison: BenchmarkComparison


@dataclass
class Figure11Result:
    """All COBYLA bars."""

    bars: list[Figure11Bar] = field(default_factory=list)

    def savings_range(self) -> tuple[float, float] | None:
        values = [bar.savings_ratio for bar in self.bars if bar.savings_ratio]
        if not values:
            return None
        return float(np.min(values)), float(np.max(values))


def run_figure11(
    preset: str | Preset = "fast",
    benchmarks: tuple[str, ...] | None = None,
    *,
    seed: int = 7,
) -> Figure11Result:
    """Run the COBYLA comparison on every benchmark."""
    preset = get_preset(preset)
    names = benchmarks or FIG6_BENCHMARKS
    result = Figure11Result()
    for name in names:
        suite = build_vqe_suite(name, preset)
        config = default_config(preset, optimizer="cobyla", seed=seed)
        comparison = run_comparison(
            suite, config, baseline_iterations=preset.baseline_iterations
        )
        fidelity, savings = savings_at_threshold(comparison.treevqa, comparison.baseline)
        result.bars.append(
            Figure11Bar(
                benchmark=name, fidelity=fidelity, savings_ratio=savings, comparison=comparison
            )
        )
    return result


def format_figure11(result: Figure11Result) -> str:
    """Render the COBYLA savings bars."""
    rows = [[bar.benchmark, bar.fidelity, bar.savings_ratio] for bar in result.bars]
    title = "Fig. 11: TreeVQA with the COBYLA optimizer"
    bounds = result.savings_range()
    if bounds:
        title += f" (savings {bounds[0]:.1f}x–{bounds[1]:.1f}x)"
    return format_table(["benchmark", "fidelity", "shot savings"], rows, title=title)
