"""Figure 9 — large-scale problems via Pauli propagation (paper §8.4).

The paper evaluates a 25-site Ising chain and C2H2 (28/50 qubits) with the
PauliPropagation simulator, noiseless and with a 1% depolarising layer.
Because exact ground states are unavailable at this scale, the metric is
*per-task* shot savings: TreeVQA runs with a fixed iteration allocation, and
the baseline is charged the shots it needs to reach TreeVQA's final energy
for that task (hatched / lower-bounded when it never does).

Statevector simulation is impossible at these sizes, so this experiment uses
a dedicated two-phase TreeVQA execution (one shared root phase on the mixed
Hamiltonian followed by warm-started per-task leaf phases) with all
expectation values dispatched through the vectorized
:class:`~repro.quantum.pauli_propagation.PauliPropagationBackend` — the same
execution path ``TreeVQAConfig(backend="pauli_propagation")`` uses — built
here from the config's propagation knobs; the shot ledger uses the same
4096-per-term rule as everywhere else.  See DESIGN.md for why this preserves
the paper's comparison.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ...ansatz import HardwareEfficientAnsatz
from ...core.config import TreeVQAConfig
from ...core.mixed_hamiltonian import build_mixed_hamiltonian
from ...core.shots import shots_per_evaluation
from ...core.task import VQATask
from ...hamiltonians.molecular import MOLECULES, MolecularFamily
from ...hamiltonians.spin import transverse_field_ising_chain
from ...optimizers import SPSA
from ...quantum.backend import ExecutionBackend, ExecutionRequest
from ...quantum.engine import compiled_pauli_operator
from ...quantum.noise import global_depolarizing_expectation
from ...quantum.pauli import PauliOperator
from ..reporting import format_table

__all__ = [
    "LargeScaleTaskResult",
    "LargeScaleBenchmarkResult",
    "Figure9Result",
    "run_large_scale_benchmark",
    "run_figure9",
    "format_figure9",
]

#: Depolarising layer strength used for the noisy bars (paper: 1%).
NOISE_ERROR_RATE = 0.01


@dataclass(frozen=True)
class LargeScaleTaskResult:
    """Per-task outcome of one large-scale comparison."""

    task_name: str
    treevqa_energy: float
    treevqa_shots: int
    baseline_best_energy: float
    baseline_shots_to_match: int | None
    baseline_shots_allocated: int
    noisy: bool

    @property
    def reached(self) -> bool:
        """Did the baseline reach TreeVQA's energy within its allocation?"""
        return self.baseline_shots_to_match is not None

    @property
    def savings_ratio(self) -> float:
        """Shot savings (a lower bound when the baseline never matched)."""
        numerator = (
            self.baseline_shots_to_match
            if self.baseline_shots_to_match is not None
            else self.baseline_shots_allocated
        )
        return numerator / max(self.treevqa_shots, 1)


@dataclass
class LargeScaleBenchmarkResult:
    """All tasks of one benchmark, noiseless or noisy."""

    benchmark: str
    noisy: bool
    tasks: list[LargeScaleTaskResult] = field(default_factory=list)

    def mean_savings(self) -> float:
        return float(np.mean([task.savings_ratio for task in self.tasks])) if self.tasks else 0.0


@dataclass
class Figure9Result:
    """Noiseless and noisy results for every large-scale benchmark."""

    benchmarks: list[LargeScaleBenchmarkResult] = field(default_factory=list)


def _large_scale_tasks(benchmark: str, preset_name: str) -> tuple[list[VQATask], int, int]:
    """Tasks, qubit count and ansatz layers for a large-scale benchmark."""
    fast = preset_name == "fast"
    if benchmark.lower().startswith("ising"):
        num_sites = 14 if fast else 25
        fields = np.linspace(0.6, 1.4, 5 if fast else 10)
        tasks = [
            VQATask(
                name=f"Ising{num_sites}@{h:.3f}",
                hamiltonian=transverse_field_ising_chain(num_sites, float(h)),
                scan_parameter=float(h),
            )
            for h in fields
        ]
        return tasks, num_sites, 1
    if benchmark.lower() == "c2h2":
        spec = MOLECULES["C2H2"]
        if fast:
            spec = dataclasses.replace(spec, num_qubits=12, num_terms=80, num_particles=6)
        family = MolecularFamily(spec)
        lengths = spec.default_bond_lengths[: (5 if fast else 10)]
        bitstring = family.hartree_fock_bitstring()
        tasks = [
            VQATask(
                name=f"C2H2@{length:.3f}",
                hamiltonian=family.hamiltonian(length),
                scan_parameter=length,
                initial_bitstring=bitstring,
            )
            for length in lengths
        ]
        return tasks, spec.num_qubits, 1
    raise ValueError(f"unknown large-scale benchmark {benchmark!r}")


def _propagation_backend() -> ExecutionBackend:
    """The figure's execution backend, built from the config knobs.

    Exactly the backend ``TreeVQAConfig(backend="pauli_propagation")``
    dispatches through, with the paper's large-scale truncation settings
    (weight 6, threshold 1e-5, 30k terms on the fast preset)."""
    config = TreeVQAConfig(
        backend="pauli_propagation",
        propagation_max_weight=6,
        propagation_coefficient_threshold=1e-5,
        propagation_max_terms=30_000,
    )
    return config.make_backend()


class _BackendObjective:
    """SPSA objective dispatched through the Pauli-propagation backend.

    Each evaluation ships one :class:`ExecutionRequest` (compiled program +
    raw parameter vector) and recombines the returned term vector with the
    operator coefficients — the same payload contract the estimators use.
    Sharing one backend across objectives reuses the compiled conjugation
    structure for every (program, operator) pair.
    """

    def __init__(
        self,
        operator: PauliOperator,
        ansatz: HardwareEfficientAnsatz,
        initial_bits: str,
        *,
        noisy: bool,
        backend: ExecutionBackend,
    ) -> None:
        self.operator = operator
        self.program = ansatz.program()
        self.initial_bits = initial_bits
        self.noisy = noisy
        self.backend = backend
        self.num_layers = ansatz.num_layers
        self.coefficients = compiled_pauli_operator(operator).coefficients
        identity_coefficient = 0.0
        for pauli, coeff in operator.items():
            if pauli.is_identity:
                identity_coefficient += coeff.real
        self.identity_value = identity_coefficient
        self.evaluations = 0

    def __call__(self, parameters: np.ndarray) -> float:
        request = ExecutionRequest(
            circuit=None,
            operator=self.operator,
            initial_bitstring=self.initial_bits,
            program=self.program,
            parameters=np.asarray(parameters, dtype=float),
        )
        result = self.backend.run_batch([request])[0]
        value = float(self.coefficients @ result.term_vector)
        self.evaluations += 1
        if self.noisy:
            value = global_depolarizing_expectation(
                value, self.identity_value, layers=self.num_layers, error_rate=NOISE_ERROR_RATE
            )
        return value


def run_large_scale_benchmark(
    benchmark: str,
    *,
    preset_name: str = "fast",
    noisy: bool = False,
    shared_iterations: int | None = None,
    leaf_iterations: int | None = None,
    baseline_iterations: int | None = None,
    seed: int = 11,
) -> LargeScaleBenchmarkResult:
    """Run the two-phase TreeVQA execution and the baseline for one benchmark."""
    fast = preset_name == "fast"
    shared_iterations = shared_iterations or (15 if fast else 40)
    leaf_iterations = leaf_iterations or (6 if fast else 15)
    baseline_iterations = baseline_iterations or (30 if fast else 80)

    tasks, num_qubits, num_layers = _large_scale_tasks(benchmark, preset_name)
    bitstring = tasks[0].initial_bitstring or "0" * num_qubits
    ansatz = HardwareEfficientAnsatz(
        num_qubits, num_layers=num_layers, entanglement="linear", initial_bitstring=bitstring
    )
    backend = _propagation_backend()
    mixed = build_mixed_hamiltonian([task.hamiltonian for task in tasks])
    rng_seed = seed

    # Phase 1: shared optimisation of the mixed Hamiltonian (the tree root).
    shared_objective = _BackendObjective(
        mixed.operator, ansatz, bitstring, noisy=noisy, backend=backend
    )
    shared_optimizer = SPSA(learning_rate=0.3, perturbation=0.15, seed=rng_seed,
                            expected_iterations=shared_iterations + leaf_iterations)
    shared = shared_optimizer.minimize(
        shared_objective, ansatz.zero_parameters(), shared_iterations
    )
    shared_shots = shared.num_evaluations * shots_per_evaluation(mixed.operator)

    result = LargeScaleBenchmarkResult(benchmark=benchmark, noisy=noisy)
    per_task_shared_shots = shared_shots  # shared cost is charged once for the whole application

    for index, task in enumerate(tasks):
        # Phase 2: warm-started leaf optimisation of the individual task.
        leaf_objective = _BackendObjective(
            task.hamiltonian, ansatz, bitstring, noisy=noisy, backend=backend
        )
        leaf_optimizer = SPSA(learning_rate=0.2, perturbation=0.1, seed=rng_seed + index + 1,
                              expected_iterations=leaf_iterations)
        leaf = leaf_optimizer.minimize(leaf_objective, shared.parameters, leaf_iterations)
        treevqa_energy = min(leaf.best_loss, float(np.min(shared.loss_history)))
        leaf_shots = leaf.num_evaluations * shots_per_evaluation(task.hamiltonian)
        # The shared shots are amortised over the tasks; each task is charged its share.
        treevqa_shots = leaf_shots + per_task_shared_shots // len(tasks)

        # Baseline: from scratch, measure shots until it matches TreeVQA's energy.
        baseline_objective = _BackendObjective(
            task.hamiltonian, ansatz, bitstring, noisy=noisy, backend=backend
        )
        baseline_optimizer = SPSA(learning_rate=0.3, perturbation=0.15, seed=rng_seed + 100 + index,
                                  expected_iterations=baseline_iterations)
        baseline = baseline_optimizer.minimize(
            baseline_objective, ansatz.zero_parameters(), baseline_iterations
        )
        per_iteration_shots = 2 * shots_per_evaluation(task.hamiltonian)
        shots_to_match: int | None = None
        for iteration, loss in enumerate(baseline.loss_history, start=1):
            if loss <= treevqa_energy:
                shots_to_match = iteration * per_iteration_shots
                break
        result.tasks.append(
            LargeScaleTaskResult(
                task_name=task.name,
                treevqa_energy=treevqa_energy,
                treevqa_shots=treevqa_shots,
                baseline_best_energy=float(baseline.best_loss),
                baseline_shots_to_match=shots_to_match,
                baseline_shots_allocated=baseline_iterations * per_iteration_shots,
                noisy=noisy,
            )
        )
    return result


def run_figure9(
    preset: str = "fast",
    benchmarks: tuple[str, ...] = ("Ising25", "C2H2"),
    *,
    include_noisy: bool = True,
    seed: int = 11,
) -> Figure9Result:
    """Run the Fig. 9 benchmarks, noiseless and (optionally) noisy."""
    result = Figure9Result()
    for benchmark in benchmarks:
        result.benchmarks.append(
            run_large_scale_benchmark(benchmark, preset_name=preset, noisy=False, seed=seed)
        )
        if include_noisy:
            result.benchmarks.append(
                run_large_scale_benchmark(benchmark, preset_name=preset, noisy=True, seed=seed)
            )
    return result


def format_figure9(result: Figure9Result) -> str:
    """Render per-task savings bars as a table."""
    rows = []
    for benchmark in result.benchmarks:
        for index, task in enumerate(benchmark.tasks):
            rows.append(
                [
                    benchmark.benchmark,
                    "noisy" if benchmark.noisy else "noiseless",
                    index,
                    task.savings_ratio,
                    "yes" if task.reached else "no (lower bound)",
                ]
            )
    return format_table(
        ["benchmark", "setting", "task index", "shot savings", "baseline matched"],
        rows,
        title="Fig. 9: shot savings on large-scale applications",
    )
