"""Figure 7 — fidelity gain at a fixed shot budget (paper §8.2).

The same six benchmarks as Fig. 6, read the other way: for a sweep of shot
budgets, what application fidelity does each method achieve?  TreeVQA should
dominate the baseline across the budget range and show a lower variance of
per-task fidelities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..metrics import fidelity_budget_curve
from ..reporting import format_table
from .common import (
    FIG6_BENCHMARKS,
    BenchmarkComparison,
    Preset,
    build_vqe_suite,
    default_config,
    get_preset,
    run_comparison,
)

__all__ = ["Figure7Panel", "Figure7Result", "run_figure7_panel", "run_figure7", "format_figure7"]


@dataclass
class Figure7Panel:
    """Fidelity-vs-budget curves for one benchmark."""

    benchmark: str
    budgets: list[int]
    treevqa_fidelities: list[float]
    baseline_fidelities: list[float]
    treevqa_variance: float
    baseline_variance: float
    comparison: BenchmarkComparison

    def advantage(self) -> float:
        """Mean fidelity advantage of TreeVQA over the baseline across budgets."""
        return float(
            np.mean(np.array(self.treevqa_fidelities) - np.array(self.baseline_fidelities))
        )


@dataclass
class Figure7Result:
    """All panels of Fig. 7."""

    panels: list[Figure7Panel] = field(default_factory=list)


def _budget_sweep(comparison: BenchmarkComparison, num_points: int = 10) -> list[int]:
    """Log-spaced budgets covering both methods' recorded trajectories."""
    smallest = min(
        min((t.cumulative_shots[0] for t in result.trajectories.values() if t.cumulative_shots),
            default=1)
        for result in (comparison.treevqa, comparison.baseline)
    )
    largest = max(comparison.treevqa.total_shots, comparison.baseline.total_shots)
    largest = max(largest, smallest + 1)
    return [int(value) for value in np.geomspace(smallest, largest, num_points)]


def run_figure7_panel(
    benchmark: str,
    preset: str | Preset = "fast",
    *,
    comparison: BenchmarkComparison | None = None,
    seed: int = 7,
) -> Figure7Panel:
    """Fidelity-vs-budget curves for one benchmark."""
    preset = get_preset(preset)
    if comparison is None:
        suite = build_vqe_suite(benchmark, preset)
        config = default_config(preset, seed=seed)
        comparison = run_comparison(
            suite, config, baseline_iterations=preset.baseline_iterations
        )
    budgets = _budget_sweep(comparison)
    treevqa_curve = fidelity_budget_curve(comparison.treevqa, budgets)
    baseline_curve = fidelity_budget_curve(comparison.baseline, budgets)
    return Figure7Panel(
        benchmark=benchmark,
        budgets=budgets,
        treevqa_fidelities=[value for _, value in treevqa_curve],
        baseline_fidelities=[value for _, value in baseline_curve],
        treevqa_variance=comparison.treevqa.fidelity_variance(),
        baseline_variance=comparison.baseline.fidelity_variance(),
        comparison=comparison,
    )


def run_figure7(
    preset: str | Preset = "fast",
    benchmarks: tuple[str, ...] | None = None,
    *,
    seed: int = 7,
    comparisons: dict[str, BenchmarkComparison] | None = None,
) -> Figure7Result:
    """Run every Fig. 7 panel (optionally reusing Fig. 6 comparisons)."""
    preset = get_preset(preset)
    names = benchmarks or FIG6_BENCHMARKS
    panels = []
    for name in names:
        precomputed = comparisons.get(name) if comparisons else None
        panels.append(run_figure7_panel(name, preset, comparison=precomputed, seed=seed))
    return Figure7Result(panels=panels)


def format_figure7(result: Figure7Result) -> str:
    """Render Fig. 7 as per-panel fidelity-vs-budget tables."""
    sections = []
    for panel in result.panels:
        rows = [
            [budget, tree, base]
            for budget, tree, base in zip(
                panel.budgets, panel.treevqa_fidelities, panel.baseline_fidelities
            )
        ]
        sections.append(
            format_table(
                ["shot budget", "TreeVQA fidelity", "baseline fidelity"],
                rows,
                title=(
                    f"Fig. 7 [{panel.benchmark}] — mean advantage {panel.advantage():+.4f}, "
                    f"fidelity variance {panel.treevqa_variance:.2e} (TreeVQA) vs "
                    f"{panel.baseline_variance:.2e} (baseline)"
                ),
            )
        )
    return "\n\n".join(sections)
