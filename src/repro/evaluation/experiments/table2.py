"""Table 2 — noisy-device simulation of LiH (paper §8.7).

TreeVQA and the baseline are run under synthetic calibration profiles of five
IBM backends (Hanoi, Cairo, Mumbai, Kolkata, Auckland) using density-matrix
simulation with gate-attached noise and the COBYLA optimizer (the paper notes
SPSA converges too slowly under noise).  The table reports, per backend, the
maximum average fidelity reached and the shot-savings ratio.

The controller rounds execute through the batched density-matrix backend
(``backend="density_matrix"`` + ``estimator="density_matrix"``): every
cluster's noisy evaluations evolve as one stacked ``U ρ U†`` dispatch per
circuit structure, bit-identically to the per-request simulator path this
experiment used before.

For density-matrix tractability the scan uses a reduced LiH analogue (the
fast preset shrinks it further); the noise profiles are synthetic stand-ins
whose relative error magnitudes follow the publicly reported ordering of the
real devices — see DESIGN.md.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ...ansatz import HardwareEfficientAnsatz
from ...core.task import VQATask
from ...hamiltonians.catalog import BenchmarkSuite
from ...hamiltonians.molecular import MOLECULES, MolecularFamily
from ...quantum.noise import BACKEND_PROFILES, get_backend_profile
from ..metrics import savings_at_threshold
from ..reporting import format_table
from .common import BenchmarkComparison, Preset, default_config, get_preset, run_comparison

__all__ = ["Table2Row", "Table2Result", "run_table2", "format_table2"]

#: Ansatz entanglement layers for the noisy study (paper: 5 to accentuate noise).
NOISY_ANSATZ_LAYERS = 5


@dataclass(frozen=True)
class Table2Row:
    """One backend's noisy-simulation outcome."""

    backend: str
    max_fidelity: float
    savings_ratio: float | None
    comparison: BenchmarkComparison


@dataclass
class Table2Result:
    """All backends."""

    rows: list[Table2Row] = field(default_factory=list)

    def backends(self) -> list[str]:
        return [row.backend for row in self.rows]


def _reduced_lih_suite(preset: Preset, num_layers: int) -> BenchmarkSuite:
    """A density-matrix-sized LiH analogue scan."""
    spec = MOLECULES["LiH"]
    if preset.name == "fast":
        spec = dataclasses.replace(spec, num_qubits=4, num_terms=14, num_particles=2)
        num_tasks = 3
    else:
        spec = dataclasses.replace(spec, num_qubits=6, num_terms=40, num_particles=2)
        num_tasks = 5
    family = MolecularFamily(spec)
    lengths = spec.default_bond_lengths[:num_tasks]
    bitstring = family.hartree_fock_bitstring()
    tasks = [
        VQATask(
            name=f"LiH@{length:.3f}",
            hamiltonian=family.hamiltonian(length),
            scan_parameter=length,
            initial_bitstring=bitstring,
        )
        for length in lengths
    ]
    ansatz = HardwareEfficientAnsatz(
        spec.num_qubits, num_layers=num_layers, initial_bitstring=bitstring
    )
    return BenchmarkSuite(name="LiH-noisy", tasks=tasks, ansatz=ansatz, kind="chemistry")


def run_table2(
    preset: str | Preset = "fast",
    backends: tuple[str, ...] | None = None,
    *,
    seed: int = 7,
    num_layers: int = NOISY_ANSATZ_LAYERS,
    max_rounds: int | None = None,
) -> Table2Result:
    """Run the noisy LiH comparison on every backend profile."""
    preset = get_preset(preset)
    names = backends or tuple(BACKEND_PROFILES)
    rounds = max_rounds or (30 if preset.name == "fast" else 80)
    result = Table2Result()
    for name in names:
        profile = get_backend_profile(name)
        noise_model = profile.to_noise_model()
        suite = _reduced_lih_suite(preset, num_layers)
        config = default_config(
            preset,
            optimizer="cobyla",
            seed=seed,
            max_rounds=rounds,
            warmup_iterations=max(4, rounds // 6),
            window_size=max(4, rounds // 10),
            estimator="density_matrix",
            backend="density_matrix",
            noise_model=noise_model,
        )
        comparison = run_comparison(suite, config, baseline_iterations=rounds)
        fidelity, savings = savings_at_threshold(comparison.treevqa, comparison.baseline)
        max_fidelity = float(
            np.mean(list(comparison.treevqa.final_fidelities().values()))
        )
        result.rows.append(
            Table2Row(
                backend=profile.name,
                max_fidelity=max(max_fidelity, fidelity),
                savings_ratio=savings,
                comparison=comparison,
            )
        )
    return result


def format_table2(result: Table2Result) -> str:
    """Render Table 2."""
    rows = [[row.backend, row.max_fidelity, row.savings_ratio] for row in result.rows]
    return format_table(
        ["backend", "max avg fidelity", "shots saving ratio"],
        rows,
        title="Table 2: LiH TreeVQA noisy simulation results",
    )
