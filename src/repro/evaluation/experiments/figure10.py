"""Figure 10 — TreeVQA combined with CAFQA initialisation (paper §8.5).

A narrow, high-precision LiH scan is initialised with CAFQA (a Clifford-only
parameter search).  Both baseline VQE and TreeVQA start from those
parameters; the metric is how many shots each needs to recover a given
percentage of the residual energy gap between the CAFQA energy and the true
ground state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ...ansatz import HardwareEfficientAnsatz
from ...core.task import VQATask
from ...hamiltonians.catalog import BenchmarkSuite
from ...hamiltonians.molecular import MolecularFamily, get_molecule
from ...initialization.cafqa import cafqa_search
from ..reporting import format_table
from .common import BenchmarkComparison, Preset, default_config, get_preset, run_comparison

__all__ = ["GapRecoveryPoint", "Figure10Result", "run_figure10", "format_figure10"]


@dataclass(frozen=True)
class GapRecoveryPoint:
    """Shots needed by both methods to recover one gap percentage."""

    gap_recovered_percent: float
    treevqa_shots: int | None
    baseline_shots: int | None

    @property
    def savings_ratio(self) -> float | None:
        if not self.treevqa_shots or not self.baseline_shots:
            return None
        return self.baseline_shots / self.treevqa_shots


@dataclass
class Figure10Result:
    """The CAFQA-initialised comparison."""

    cafqa_fidelity: float
    cafqa_energies: dict[str, float]
    points: list[GapRecoveryPoint] = field(default_factory=list)
    comparison: BenchmarkComparison | None = None

    def headline_savings(self) -> float | None:
        """Savings at the largest gap percentage both methods recover."""
        usable = [point for point in self.points if point.savings_ratio is not None]
        return usable[-1].savings_ratio if usable else None


def _shots_to_recover(
    result, task_gaps: dict[str, tuple[float, float]], percent: float, *, per_task_sum: bool
) -> int | None:
    """Shots until every task recovers ``percent`` % of its CAFQA-to-exact gap."""
    worst = 0
    total = 0
    for task_name, (cafqa_energy, exact_energy) in task_gaps.items():
        trajectory = result.trajectories.get(task_name)
        if trajectory is None or not trajectory.energies:
            return None
        target = cafqa_energy - (percent / 100.0) * (cafqa_energy - exact_energy)
        shots = trajectory.shots_to_reach_energy(target)
        if shots is None:
            return None
        worst = max(worst, shots)
        total += shots
    return total if per_task_sum else worst


def run_figure10(
    preset: str | Preset = "fast",
    *,
    num_tasks: int | None = None,
    gap_percentages: tuple[float, ...] = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0),
    seed: int = 7,
    min_rounds: int = 200,
) -> Figure10Result:
    """Run the CAFQA-initialised LiH comparison.

    Gap recovery is a *fine-tuning* experiment: the residual CAFQA-to-exact
    gap closes over hundreds of small SPSA steps, so the round budget gets a
    figure-specific floor of ``min_rounds`` (the vectorized engine makes this
    cheap; pass a smaller value for deliberately tiny smoke runs).
    """
    preset = get_preset(preset)
    if preset.max_rounds < min_rounds:
        preset = replace(
            preset,
            max_rounds=min_rounds,
            baseline_iterations=max(min_rounds, preset.baseline_iterations),
        )
    num_tasks = num_tasks or preset.num_tasks
    spec = get_molecule("LiH")
    family = MolecularFamily(spec)
    # A narrow scan at fine precision, as in the paper (0.01 Å steps).
    center = spec.equilibrium_bond
    lengths = np.round(np.linspace(center - 0.05, center + 0.05, num_tasks), 4)
    bitstring = family.hartree_fock_bitstring()
    # The Hartree-Fock reference lives in the ansatz (its leading X layer), so
    # the tasks keep the default |0...0> initial state: the CAFQA search, the
    # CAFQA reference energies and the optimisation trajectories then all
    # prepare exactly the same state for the same parameters.
    tasks = [
        VQATask(
            name=f"LiH@{length:.4f}",
            hamiltonian=family.hamiltonian(float(length)),
            scan_parameter=float(length),
        )
        for length in lengths
    ]
    ansatz = HardwareEfficientAnsatz(spec.num_qubits, num_layers=2, initial_bitstring=bitstring)

    # CAFQA search on the scan-centre Hamiltonian; parameters shared by all tasks.
    center_task = tasks[len(tasks) // 2]
    cafqa = cafqa_search(
        center_task.hamiltonian,
        ansatz,
        num_sweeps=1 if preset.name == "fast" else 2,
        seed=seed,
    )

    cafqa_energies: dict[str, float] = {}
    task_gaps: dict[str, tuple[float, float]] = {}
    fidelities = []
    state = ansatz.prepare_state(cafqa.parameters)
    for task in tasks:
        energy = state.expectation(task.hamiltonian)
        exact = task.exact_ground_energy()
        cafqa_energies[task.name] = energy
        task_gaps[task.name] = (energy, exact)
        fidelities.append(task.fidelity(energy))
    cafqa_fidelity = float(np.mean(fidelities))

    suite = BenchmarkSuite(name="LiH-CAFQA", tasks=tasks, ansatz=ansatz, kind="chemistry")
    # CAFQA already lands within a few percent of the ground state, so both
    # methods *fine-tune*: SPSA needs perturbations well below the
    # global-search defaults or its very first ±c evaluation throws the state
    # out of the narrow high-precision basin, and the split thresholds must
    # shrink with the residual-gap energy scale or slope fluctuations split
    # the (nearly identical) scan points into full-price singletons.
    config = default_config(
        preset,
        seed=seed,
        epsilon_split=2e-5,
        individual_slope_threshold=1e-2,
        optimizer_kwargs={
            "learning_rate": 0.6,
            "perturbation": 0.08,
            "expected_iterations": preset.max_rounds,
        },
    )
    comparison = run_comparison(
        suite,
        config,
        baseline_iterations=preset.baseline_iterations,
        initial_parameters=cafqa.parameters,
    )

    points = []
    for percent in gap_percentages:
        points.append(
            GapRecoveryPoint(
                gap_recovered_percent=percent,
                treevqa_shots=_shots_to_recover(
                    comparison.treevqa, task_gaps, percent, per_task_sum=False
                ),
                baseline_shots=_shots_to_recover(
                    comparison.baseline, task_gaps, percent, per_task_sum=True
                ),
            )
        )
    return Figure10Result(
        cafqa_fidelity=cafqa_fidelity,
        cafqa_energies=cafqa_energies,
        points=points,
        comparison=comparison,
    )


def format_figure10(result: Figure10Result) -> str:
    """Render the gap-recovery comparison."""
    rows = [
        [
            point.gap_recovered_percent,
            point.treevqa_shots,
            point.baseline_shots,
            point.savings_ratio,
        ]
        for point in result.points
    ]
    headline = result.headline_savings()
    title = f"Fig. 10: CAFQA-initialised LiH (CAFQA fidelity {result.cafqa_fidelity:.3f})"
    if headline:
        title += f", shot savings {headline:.1f}x"
    return format_table(
        ["gap recovered (%)", "TreeVQA shots", "baseline shots", "savings"], rows, title=title
    )
