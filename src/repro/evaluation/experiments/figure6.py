"""Figure 6 — shot reduction at a fixed fidelity target (paper §8.1).

For each of the six VQE benchmarks (HF, LiH, BeH2, XXZ, transverse-field
Ising, H2-UCCSD) both TreeVQA and the independent baseline are run, and the
shots each needs to bring *every* task to a fidelity threshold are compared
across a sweep of thresholds.  Each panel also reports the paper's headline
pair: the highest fidelity both methods reach and the savings ratio there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..metrics import SavingsPoint, common_max_fidelity, savings_at_threshold, savings_curve
from ..reporting import format_table
from .common import (
    FIG6_BENCHMARKS,
    BenchmarkComparison,
    Preset,
    build_vqe_suite,
    default_config,
    get_preset,
    run_comparison,
)

__all__ = ["Figure6Panel", "Figure6Result", "run_figure6_panel", "run_figure6", "format_figure6"]


@dataclass
class Figure6Panel:
    """One benchmark's shots-vs-threshold comparison."""

    benchmark: str
    comparison: BenchmarkComparison
    thresholds: list[float]
    points: list[SavingsPoint]
    max_common_fidelity: float
    headline_savings: float | None

    @property
    def treevqa_shots(self) -> list[int | None]:
        return [point.treevqa_shots for point in self.points]

    @property
    def baseline_shots(self) -> list[int | None]:
        return [point.baseline_shots for point in self.points]


@dataclass
class Figure6Result:
    """All panels of Fig. 6."""

    panels: list[Figure6Panel] = field(default_factory=list)

    def average_savings(self) -> float | None:
        """Mean headline savings ratio over panels that produced one."""
        values = [panel.headline_savings for panel in self.panels if panel.headline_savings]
        return float(np.mean(values)) if values else None


def _initial_fidelity(comparison: BenchmarkComparison) -> float:
    """Application fidelity right after the first iteration (the curves' left edge)."""
    values = []
    for result in (comparison.treevqa, comparison.baseline):
        for outcome in result.outcomes:
            trajectory = result.trajectories.get(outcome.task_name)
            if trajectory is None or not trajectory.energies:
                continue
            values.append(outcome.task.fidelity(trajectory.energies[0]))
    return min(values) if values else 0.5


def _threshold_sweep(
    max_fidelity: float, initial_fidelity: float, num_points: int = 8
) -> list[float]:
    """Thresholds spanning the region the optimisation actually traverses.

    Never exceeds ``max_fidelity`` so every threshold is reachable by both
    methods (their shots-to-threshold values are finite).
    """
    upper = min(max_fidelity, 0.9999)
    lower = max(0.0, min(initial_fidelity + 0.02, upper - 0.05))
    thresholds = np.minimum(np.linspace(lower, upper, num_points), max_fidelity)
    return [float(value) for value in np.floor(thresholds * 1e4) / 1e4]


def run_figure6_panel(
    benchmark: str,
    preset: str | Preset = "fast",
    *,
    comparison: BenchmarkComparison | None = None,
    optimizer: str = "spsa",
    seed: int = 7,
) -> Figure6Panel:
    """Run (or analyse a precomputed) TreeVQA-vs-baseline comparison for one benchmark."""
    preset = get_preset(preset)
    if comparison is None:
        suite = build_vqe_suite(benchmark, preset)
        config = default_config(preset, optimizer=optimizer, seed=seed)
        comparison = run_comparison(
            suite, config, baseline_iterations=preset.baseline_iterations
        )
    max_fidelity = common_max_fidelity(comparison.treevqa, comparison.baseline)
    thresholds = _threshold_sweep(max_fidelity, _initial_fidelity(comparison))
    points = savings_curve(comparison.treevqa, comparison.baseline, thresholds)
    _, headline = savings_at_threshold(comparison.treevqa, comparison.baseline, max_fidelity)
    return Figure6Panel(
        benchmark=benchmark,
        comparison=comparison,
        thresholds=thresholds,
        points=points,
        max_common_fidelity=max_fidelity,
        headline_savings=headline,
    )


def run_figure6(
    preset: str | Preset = "fast",
    benchmarks: tuple[str, ...] | None = None,
    *,
    optimizer: str = "spsa",
    seed: int = 7,
) -> Figure6Result:
    """Run every Fig. 6 panel."""
    preset = get_preset(preset)
    names = benchmarks or FIG6_BENCHMARKS
    panels = [
        run_figure6_panel(name, preset, optimizer=optimizer, seed=seed) for name in names
    ]
    return Figure6Result(panels=panels)


def format_figure6(result: Figure6Result) -> str:
    """Render Fig. 6 as per-panel tables plus the headline savings."""
    sections = []
    for panel in result.panels:
        rows = []
        for point in panel.points:
            rows.append(
                [
                    point.threshold,
                    point.treevqa_shots,
                    point.baseline_shots,
                    point.savings_ratio,
                ]
            )
        table = format_table(
            ["fidelity threshold", "TreeVQA shots", "baseline shots", "savings"],
            rows,
            title=(
                f"Fig. 6 [{panel.benchmark}] — max common fidelity "
                f"{panel.max_common_fidelity:.3f}, shot savings "
                f"{panel.headline_savings:.1f}x" if panel.headline_savings
                else (
                    f"Fig. 6 [{panel.benchmark}] — max common fidelity "
                    f"{panel.max_common_fidelity:.3f}"
                )
            ),
        )
        sections.append(table)
    average = result.average_savings()
    if average is not None:
        sections.append(f"average shot savings across panels: {average:.1f}x")
    return "\n\n".join(sections)
