"""Evaluation: metrics (§7.2), report formatting, and per-figure experiment runners."""

from . import experiments
from .metrics import (
    SavingsPoint,
    common_max_fidelity,
    fidelity,
    fidelity_budget_curve,
    relative_error,
    savings_at_threshold,
    savings_curve,
)
from .reporting import format_heatmap, format_series, format_table

__all__ = [
    "experiments",
    "SavingsPoint",
    "common_max_fidelity",
    "fidelity",
    "fidelity_budget_curve",
    "relative_error",
    "savings_at_threshold",
    "savings_curve",
    "format_heatmap",
    "format_series",
    "format_table",
]
