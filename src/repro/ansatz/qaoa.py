"""QAOA and multi-angle QAOA (ma-QAOA) ansatz (paper §6).

The cost Hamiltonian must be diagonal in the computational basis (I/Z Pauli
factors only), as produced by :mod:`repro.hamiltonians.maxcut`.  Standard
QAOA uses one γ per phasing layer and one β per mixing layer (2p parameters);
ma-QAOA assigns an individual angle to every cost term and every mixer qubit
((m + n)·p parameters), which is what TreeVQA uses for finer split control.
"""

from __future__ import annotations

from ..quantum.circuit import Parameter, QuantumCircuit
from ..quantum.pauli import PauliOperator, PauliString
from .base import Ansatz

__all__ = ["QAOAAnsatz", "MultiAngleQAOAAnsatz"]


def _diagonal_terms(cost: PauliOperator) -> list[tuple[PauliString, float]]:
    """Non-identity diagonal terms of the cost Hamiltonian, validated."""
    terms = []
    for pauli, coeff in cost.items():
        if any(op in ("X", "Y") for op in pauli.label):
            raise ValueError("QAOA cost Hamiltonian must be diagonal (I/Z terms only)")
        if pauli.is_identity or coeff == 0:
            continue
        terms.append((pauli, float(coeff.real)))
    return terms


class QAOAAnsatz(Ansatz):
    """Standard QAOA: alternating cost-phasing and X-mixer layers."""

    def __init__(
        self,
        cost_hamiltonian: PauliOperator,
        num_layers: int = 1,
        *,
        initial_state_plus: bool = True,
    ) -> None:
        super().__init__(cost_hamiltonian.num_qubits, name="qaoa")
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.cost_hamiltonian = cost_hamiltonian
        self.num_layers = num_layers
        self.initial_state_plus = initial_state_plus
        self._diagonal = _diagonal_terms(cost_hamiltonian)

    def build_circuit(self) -> QuantumCircuit:
        circuit = QuantumCircuit(self.num_qubits, name=self.name)
        if self.initial_state_plus:
            for qubit in range(self.num_qubits):
                circuit.h(qubit)
        for layer in range(self.num_layers):
            gamma = Parameter(f"gamma[{layer}]")
            beta = Parameter(f"beta[{layer}]")
            self._phasing_layer(circuit, gamma)
            for qubit in range(self.num_qubits):
                circuit.rx(beta * 2.0, qubit)
        return circuit

    def _phasing_layer(self, circuit: QuantumCircuit, gamma: Parameter) -> None:
        for pauli, coeff in self._diagonal:
            support = pauli.support()
            angle = gamma * (2.0 * coeff)
            self._append_phase(circuit, support, angle)

    @staticmethod
    def _append_phase(circuit: QuantumCircuit, support: tuple[int, ...], angle) -> None:
        if len(support) == 1:
            circuit.rz(angle, support[0])
        elif len(support) == 2:
            circuit.rzz(angle, support[0], support[1])
        else:
            # Z^{⊗k} phase via a CX ladder around a single RZ.
            for left, right in zip(support[:-1], support[1:]):
                circuit.cx(left, right)
            circuit.rz(angle, support[-1])
            for left, right in reversed(list(zip(support[:-1], support[1:]))):
                circuit.cx(left, right)


class MultiAngleQAOAAnsatz(QAOAAnsatz):
    """ma-QAOA: one angle per cost clause and per mixer qubit, per layer."""

    def __init__(
        self,
        cost_hamiltonian: PauliOperator,
        num_layers: int = 1,
        *,
        initial_state_plus: bool = True,
    ) -> None:
        super().__init__(
            cost_hamiltonian, num_layers, initial_state_plus=initial_state_plus
        )
        self.name = "ma-qaoa"

    def build_circuit(self) -> QuantumCircuit:
        circuit = QuantumCircuit(self.num_qubits, name=self.name)
        if self.initial_state_plus:
            for qubit in range(self.num_qubits):
                circuit.h(qubit)
        for layer in range(self.num_layers):
            for clause_index, (pauli, coeff) in enumerate(self._diagonal):
                gamma = Parameter(f"gamma[{layer}][{clause_index}]")
                self._append_phase(circuit, pauli.support(), gamma * (2.0 * coeff))
            for qubit in range(self.num_qubits):
                beta = Parameter(f"beta[{layer}][{qubit}]")
                circuit.rx(beta * 2.0, qubit)
        return circuit

    @property
    def parameters_per_layer(self) -> int:
        """m + n parameters per layer (clauses + mixer qubits)."""
        return len(self._diagonal) + self.num_qubits
