"""Hardware-efficient ansatz (EfficientSU2 analogue).

The paper's default ansatz (§7.4): per layer, RY and RZ rotations on every
qubit followed by a ring ("circular") of CX entanglers; two layers for
noiseless studies, five for the noisy studies of §8.7.  An optional initial
bitstring (e.g. the Hartree–Fock occupation) is prepared with X gates before
the variational layers.
"""

from __future__ import annotations

from ..quantum.circuit import Parameter, QuantumCircuit
from .base import Ansatz

__all__ = ["HardwareEfficientAnsatz"]

_ENTANGLEMENTS = ("circular", "linear", "full")


class HardwareEfficientAnsatz(Ansatz):
    """RY/RZ rotation layers with a configurable CX entanglement pattern."""

    def __init__(
        self,
        num_qubits: int,
        num_layers: int = 2,
        *,
        entanglement: str = "circular",
        initial_bitstring: str | None = None,
        final_rotation_layer: bool = True,
    ) -> None:
        super().__init__(num_qubits, name="hardware-efficient")
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if entanglement not in _ENTANGLEMENTS:
            raise ValueError(f"entanglement must be one of {_ENTANGLEMENTS}")
        if initial_bitstring is not None and len(initial_bitstring) != num_qubits:
            raise ValueError("initial_bitstring length must equal num_qubits")
        self.num_layers = num_layers
        self.entanglement = entanglement
        self.initial_bitstring = initial_bitstring
        self.final_rotation_layer = final_rotation_layer

    def build_circuit(self) -> QuantumCircuit:
        circuit = QuantumCircuit(self.num_qubits, name=self.name)
        if self.initial_bitstring:
            for qubit, bit in enumerate(self.initial_bitstring):
                if bit == "1":
                    circuit.x(qubit)
        index = 0
        for layer in range(self.num_layers):
            index = self._rotation_layer(circuit, layer, index)
            self._entanglement_layer(circuit)
        if self.final_rotation_layer:
            self._rotation_layer(circuit, self.num_layers, index)
        return circuit

    def _rotation_layer(self, circuit: QuantumCircuit, layer: int, index: int) -> int:
        for qubit in range(self.num_qubits):
            circuit.ry(Parameter(f"theta[{index}]"), qubit)
            index += 1
        for qubit in range(self.num_qubits):
            circuit.rz(Parameter(f"theta[{index}]"), qubit)
            index += 1
        return index

    def _entanglement_layer(self, circuit: QuantumCircuit) -> None:
        if self.num_qubits == 1:
            return
        if self.entanglement == "linear":
            pairs = [(q, q + 1) for q in range(self.num_qubits - 1)]
        elif self.entanglement == "circular":
            pairs = [(q, (q + 1) % self.num_qubits) for q in range(self.num_qubits)]
            if self.num_qubits == 2:
                pairs = [(0, 1)]
        else:  # full
            pairs = [
                (a, b)
                for a in range(self.num_qubits)
                for b in range(a + 1, self.num_qubits)
            ]
        for control, target in pairs:
            circuit.cx(control, target)
