"""Unitary coupled-cluster singles-and-doubles (UCCSD) ansatz.

Used by the paper for the small H2 benchmark (§7.1).  Excitation operators
are mapped to Pauli strings via the Jordan–Wigner convention and implemented
as Pauli-exponential rotations, with one parameter shared by all the Pauli
terms of a given excitation (the standard Trotterised UCCSD form).
"""

from __future__ import annotations

from itertools import combinations

from ..quantum.circuit import Parameter, QuantumCircuit
from ..quantum.pauli import PauliString
from .base import Ansatz
from .evolution import append_pauli_rotation

__all__ = ["UCCSDAnsatz", "single_excitation_paulis", "double_excitation_paulis"]


def _z_chain(num_qubits: int, start: int, stop: int) -> dict[int, str]:
    """Jordan–Wigner Z string on qubits strictly between ``start`` and ``stop``."""
    return {q: "Z" for q in range(start + 1, stop)}


def single_excitation_paulis(
    num_qubits: int, occupied: int, virtual: int
) -> list[tuple[str, float]]:
    """Pauli decomposition of the anti-Hermitian single excitation a†_v a_o - h.c.

    Returns ``(label, sign)`` pairs; the excitation generator is
    ``(i/2) Σ sign · P`` so each pair becomes one parameterised Pauli rotation.
    """
    if occupied == virtual:
        raise ValueError("occupied and virtual indices must differ")
    low, high = sorted((occupied, virtual))
    chain = _z_chain(num_qubits, low, high)
    yx = PauliString.from_sparse(num_qubits, {low: "Y", high: "X", **chain})
    xy = PauliString.from_sparse(num_qubits, {low: "X", high: "Y", **chain})
    return [(yx.label, 0.5), (xy.label, -0.5)]


def double_excitation_paulis(
    num_qubits: int, occupied: tuple[int, int], virtual: tuple[int, int]
) -> list[tuple[str, float]]:
    """Pauli decomposition of the double excitation a†_v1 a†_v2 a_o2 a_o1 - h.c."""
    o1, o2 = sorted(occupied)
    v1, v2 = sorted(virtual)
    indices = (o1, o2, v1, v2)
    if len(set(indices)) != 4:
        raise ValueError("double excitation requires four distinct orbitals")
    chain = {**_z_chain(num_qubits, o1, o2), **_z_chain(num_qubits, v1, v2)}
    # The eight standard JW terms of the double-excitation generator.
    patterns = [
        ("X", "X", "Y", "X", 0.125),
        ("Y", "X", "Y", "Y", 0.125),
        ("X", "Y", "Y", "Y", 0.125),
        ("X", "X", "X", "Y", 0.125),
        ("Y", "X", "X", "X", -0.125),
        ("X", "Y", "X", "X", -0.125),
        ("Y", "Y", "Y", "X", -0.125),
        ("Y", "Y", "X", "Y", -0.125),
    ]
    terms = []
    for p1, p2, p3, p4, sign in patterns:
        factors = {o1: p1, o2: p2, v1: p3, v2: p4, **chain}
        terms.append((PauliString.from_sparse(num_qubits, factors).label, sign))
    return terms


class UCCSDAnsatz(Ansatz):
    """Trotterised UCCSD on a Hartree–Fock reference state.

    ``num_particles`` spin-orbitals are considered occupied (qubits 0 .. n_p-1,
    the Jordan–Wigner occupation-number convention with the HF determinant as
    the lowest orbitals).
    """

    def __init__(
        self,
        num_qubits: int,
        num_particles: int,
        *,
        include_doubles: bool = True,
        reference_bitstring: str | None = None,
    ) -> None:
        super().__init__(num_qubits, name="uccsd")
        if not 0 < num_particles < num_qubits:
            raise ValueError("num_particles must be in (0, num_qubits)")
        self.num_particles = num_particles
        self.include_doubles = include_doubles
        self.reference_bitstring = reference_bitstring or (
            "1" * num_particles + "0" * (num_qubits - num_particles)
        )
        if len(self.reference_bitstring) != num_qubits:
            raise ValueError("reference_bitstring length must equal num_qubits")
        self._excitations = self._enumerate_excitations()

    @property
    def excitations(self) -> list[tuple[str, list[tuple[str, float]]]]:
        """The (name, pauli-terms) list, one entry per variational parameter."""
        return list(self._excitations)

    def _enumerate_excitations(self) -> list[tuple[str, list[tuple[str, float]]]]:
        occupied = list(range(self.num_particles))
        virtual = list(range(self.num_particles, self.num_qubits))
        excitations: list[tuple[str, list[tuple[str, float]]]] = []
        for o in occupied:
            for v in virtual:
                excitations.append((f"s_{o}->{v}", single_excitation_paulis(self.num_qubits, o, v)))
        if self.include_doubles:
            for o1, o2 in combinations(occupied, 2):
                for v1, v2 in combinations(virtual, 2):
                    excitations.append(
                        (
                            f"d_{o1},{o2}->{v1},{v2}",
                            double_excitation_paulis(self.num_qubits, (o1, o2), (v1, v2)),
                        )
                    )
        return excitations

    def build_circuit(self) -> QuantumCircuit:
        circuit = QuantumCircuit(self.num_qubits, name=self.name)
        for qubit, bit in enumerate(self.reference_bitstring):
            if bit == "1":
                circuit.x(qubit)
        for name, terms in self._excitations:
            parameter = Parameter(name)
            for label, sign in terms:
                # exp(-i (sign * theta) P): fold the sign into the angle expression.
                append_pauli_rotation(circuit, label, parameter * (2.0 * sign))
        return circuit
