"""Ansatz families: hardware-efficient, UCCSD, QAOA / ma-QAOA."""

from .base import Ansatz
from .evolution import append_pauli_rotation, pauli_rotation_circuit
from .hardware_efficient import HardwareEfficientAnsatz
from .qaoa import MultiAngleQAOAAnsatz, QAOAAnsatz
from .ucc import UCCSDAnsatz, double_excitation_paulis, single_excitation_paulis

__all__ = [
    "Ansatz",
    "append_pauli_rotation",
    "pauli_rotation_circuit",
    "HardwareEfficientAnsatz",
    "MultiAngleQAOAAnsatz",
    "QAOAAnsatz",
    "UCCSDAnsatz",
    "double_excitation_paulis",
    "single_excitation_paulis",
]
