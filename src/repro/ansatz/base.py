"""Common ansatz interface.

An ansatz owns a parameterised :class:`~repro.quantum.circuit.QuantumCircuit`
and knows how to bind a parameter vector and prepare the resulting state.
TreeVQA clusters treat the ansatz as a black box (paper §5.2): all they need
is the number of parameters and a way to evaluate expectation values at a
parameter point.
"""

from __future__ import annotations

import numpy as np

from ..quantum.circuit import QuantumCircuit
from ..quantum.program import CircuitProgram, compile_circuit_program
from ..quantum.statevector import Statevector

__all__ = ["Ansatz"]


class Ansatz:
    """Base class for parameterised circuits used by VQE / QAOA."""

    def __init__(self, num_qubits: int, name: str = "ansatz") -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        self.num_qubits = num_qubits
        self.name = name
        self._circuit: QuantumCircuit | None = None
        self._program: CircuitProgram | None = None

    # -- to be provided by subclasses ------------------------------------------

    def build_circuit(self) -> QuantumCircuit:
        """Construct the parameterised circuit (subclasses implement this)."""
        raise NotImplementedError

    # -- shared behaviour ----------------------------------------------------------

    @property
    def circuit(self) -> QuantumCircuit:
        """The parameterised circuit (built lazily and cached)."""
        if self._circuit is None:
            self._circuit = self.build_circuit()
        return self._circuit

    @property
    def num_parameters(self) -> int:
        """Number of free parameters."""
        return self.circuit.num_parameters

    def program(self) -> CircuitProgram:
        """Compile-once executable program for the ansatz circuit.

        Compiled through the persistent program cache (structurally identical
        ansatz instances share one program) and memoised on the instance, so
        every cluster round reuses the same instruction tape and dispatch
        plan instead of binding fresh circuits.  Parameter slots are ordered
        like :attr:`circuit.parameters` — exactly the order
        :meth:`bound_circuit` binds a vector in.
        """
        if self._program is None:
            self._program = compile_circuit_program(self.circuit)
        return self._program

    def bound_circuit(self, parameters: np.ndarray) -> QuantumCircuit:
        """Bind a parameter vector (ordered like ``circuit.parameters``)."""
        values = np.asarray(parameters, dtype=float).ravel()
        if values.size != self.num_parameters:
            raise ValueError(
                f"{self.name} expects {self.num_parameters} parameters, got {values.size}"
            )
        return self.circuit.bind(values)

    def prepare_state(
        self, parameters: np.ndarray, initial_state: Statevector | None = None
    ) -> Statevector:
        """Prepare |psi(theta)> from ``initial_state`` (default |0...0>)."""
        state = initial_state or Statevector.zero_state(self.num_qubits)
        return state.evolve(self.bound_circuit(parameters))

    def initial_parameters(
        self, rng: np.random.Generator, scale: float = 0.1
    ) -> np.ndarray:
        """Small random initial parameters (near the reference state).

        ``rng`` is required — an implicit fresh generator here would make
        starting points differ between runs, breaking trajectory parity.
        """
        if not isinstance(rng, np.random.Generator):
            raise TypeError(
                "initial_parameters requires an explicit np.random.Generator; "
                "pass np.random.default_rng(seed) so starting points are "
                "reproducible"
            )
        return rng.normal(0.0, scale, size=self.num_parameters)

    def zero_parameters(self) -> np.ndarray:
        """The all-zero parameter vector (identity circuit for most ansatz)."""
        return np.zeros(self.num_parameters)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_qubits={self.num_qubits}, "
            f"num_parameters={self.num_parameters})"
        )
