"""Pauli-exponential circuit construction.

``exp(-i θ/2 P)`` for a Pauli string P is the building block of the UCCSD
ansatz and the QAOA phasing layer: rotate every non-identity factor to the Z
basis, entangle the support with a CX ladder, apply a single RZ carrying the
parameter, then undo the ladder and the basis changes.
"""

from __future__ import annotations

from ..quantum.circuit import ParamValue, QuantumCircuit
from ..quantum.pauli import PauliString

__all__ = ["append_pauli_rotation", "pauli_rotation_circuit"]


def append_pauli_rotation(
    circuit: QuantumCircuit, pauli: PauliString | str, angle: ParamValue
) -> QuantumCircuit:
    """Append exp(-i angle/2 · P) to ``circuit`` in place; returns the circuit."""
    label = pauli.label if isinstance(pauli, PauliString) else pauli
    if len(label) != circuit.num_qubits:
        raise ValueError("Pauli length must equal the circuit qubit count")
    support = [q for q, op in enumerate(label) if op != "I"]
    if not support:
        # exp(-i angle/2 · I) is a global phase: nothing to append.
        return circuit

    # Basis change: X -> H, Y -> Sdg;H so that the factor becomes Z.
    for qubit in support:
        op = label[qubit]
        if op == "X":
            circuit.h(qubit)
        elif op == "Y":
            circuit.sdg(qubit)
            circuit.h(qubit)

    if len(support) == 1:
        circuit.rz(angle, support[0])
    else:
        for left, right in zip(support[:-1], support[1:]):
            circuit.cx(left, right)
        circuit.rz(angle, support[-1])
        for left, right in reversed(list(zip(support[:-1], support[1:]))):
            circuit.cx(left, right)

    for qubit in support:
        op = label[qubit]
        if op == "X":
            circuit.h(qubit)
        elif op == "Y":
            circuit.h(qubit)
            circuit.s(qubit)
    return circuit


def pauli_rotation_circuit(
    num_qubits: int, pauli: PauliString | str, angle: ParamValue
) -> QuantumCircuit:
    """A fresh circuit containing only exp(-i angle/2 · P)."""
    circuit = QuantumCircuit(num_qubits, name="pauli-rotation")
    return append_pauli_rotation(circuit, pauli, angle)
