"""IEEE 14-bus test system as a weighted MaxCut graph family (paper §7.1, §8.8).

The canonical 14-bus topology (20 branches) is encoded as data; branch
weights are derived from the standard branch reactances (weight ∝ 1/x, a
common proxy for line capacity).  The paper varies load conditions to produce
families of isomorphic graphs whose edge weights differ: a load-scale range
[lo, hi] yields ``num_instances`` equally spaced scale factors, and each
branch responds to load through a per-branch sensitivity, so instances within
a narrow range are highly similar and wide ranges produce diverse instances
(Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

__all__ = [
    "IEEE14_BRANCHES",
    "ieee14_graph",
    "load_scaled_graphs",
    "edge_weight_variance",
    "LoadScenario",
    "LOAD_SCENARIOS",
]

# (from_bus, to_bus, branch reactance x in per-unit) — canonical IEEE 14-bus
# branch data (buses renumbered 0-13).
IEEE14_BRANCHES: tuple[tuple[int, int, float], ...] = (
    (0, 1, 0.05917),
    (0, 4, 0.22304),
    (1, 2, 0.19797),
    (1, 3, 0.17632),
    (1, 4, 0.17388),
    (2, 3, 0.17103),
    (3, 4, 0.04211),
    (3, 6, 0.20912),
    (3, 8, 0.55618),
    (4, 5, 0.25202),
    (5, 10, 0.19890),
    (5, 11, 0.25581),
    (5, 12, 0.13027),
    (6, 7, 0.17615),
    (6, 8, 0.11001),
    (8, 9, 0.08450),
    (8, 13, 0.27038),
    (9, 10, 0.19207),
    (11, 12, 0.19988),
    (12, 13, 0.34802),
)

NUM_BUSES = 14


def ieee14_graph(load_scale: float = 1.0, *, sensitivity_seed: int = 7) -> nx.Graph:
    """The IEEE 14-bus graph with load-scaled edge weights.

    Base weight of a branch is 1/x (normalised to a mean of 1).  The load
    scale modulates each branch through a deterministic per-branch sensitivity
    so different branches respond differently to system-wide load changes.
    """
    if load_scale <= 0:
        raise ValueError("load_scale must be positive")
    rng = np.random.default_rng(sensitivity_seed)
    susceptances = np.array([1.0 / x for _, _, x in IEEE14_BRANCHES])
    base_weights = susceptances / susceptances.mean()
    sensitivities = rng.uniform(0.4, 1.6, size=len(IEEE14_BRANCHES))
    graph = nx.Graph()
    graph.add_nodes_from(range(NUM_BUSES))
    for (u, v, _x), base, sensitivity in zip(IEEE14_BRANCHES, base_weights, sensitivities):
        weight = float(base * (1.0 + sensitivity * (load_scale - 1.0)))
        graph.add_edge(u, v, weight=max(weight, 1e-3))
    return graph


def load_scaled_graphs(
    load_range: tuple[float, float], num_instances: int = 10, *, sensitivity_seed: int = 7
) -> list[tuple[float, nx.Graph]]:
    """``num_instances`` graphs at equally spaced load scales over ``load_range``."""
    lo, hi = load_range
    if lo <= 0 or hi <= 0 or hi < lo:
        raise ValueError("load_range must be positive with hi >= lo")
    if num_instances < 1:
        raise ValueError("num_instances must be >= 1")
    scales = np.linspace(lo, hi, num_instances)
    return [
        (float(scale), ieee14_graph(float(scale), sensitivity_seed=sensitivity_seed))
        for scale in scales
    ]


def edge_weight_variance(graphs: list[nx.Graph]) -> float:
    """Average squared deviation of each graph's edge weights from the mean graph.

    This is the purple-bar metric of Fig. 12.  All graphs must share the same
    edge set (they are isomorphic load-scaled instances).
    """
    if not graphs:
        raise ValueError("graphs must be non-empty")
    edges = sorted(graphs[0].edges())
    matrix = np.zeros((len(graphs), len(edges)))
    for row, graph in enumerate(graphs):
        for column, (u, v) in enumerate(edges):
            if not graph.has_edge(u, v):
                raise ValueError("all graphs must share the same edge set")
            matrix[row, column] = graph[u][v].get("weight", 1.0)
    mean_graph = matrix.mean(axis=0)
    return float(np.mean((matrix - mean_graph) ** 2))


@dataclass(frozen=True)
class LoadScenario:
    """One Fig. 12 scenario: a load-scale range and its interpretation."""

    name: str
    load_range: tuple[float, float]
    description: str


LOAD_SCENARIOS: tuple[LoadScenario, ...] = (
    LoadScenario("0.5:1.5", (0.5, 1.5), "extreme planning scenarios"),
    LoadScenario("0.8:1.2", (0.8, 1.2), "typical operational variations"),
    LoadScenario("0.9:1.1", (0.9, 1.1), "small forecasting errors"),
)
