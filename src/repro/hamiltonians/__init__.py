"""Benchmark Hamiltonian families: molecules, spin chains, MaxCut / IEEE-14."""

from .catalog import (
    VQE_SUITE_NAMES,
    BenchmarkSuite,
    build_suite,
    chemistry_suite,
    ising_large_suite,
    maxcut_ieee14_suite,
    tfim_suite,
    xxz_suite,
)
from .ieee14 import (
    IEEE14_BRANCHES,
    LOAD_SCENARIOS,
    LoadScenario,
    edge_weight_variance,
    ieee14_graph,
    load_scaled_graphs,
)
from .maxcut import (
    cut_value,
    max_cut_brute_force,
    maxcut_cost_hamiltonian,
    maxcut_minimization_hamiltonian,
    qubo_to_ising,
)
from .molecular import (
    MOLECULES,
    MolecularFamily,
    MoleculeSpec,
    get_molecule,
    hartree_fock_bitstring,
)
from .spin import (
    heisenberg_xxz_chain,
    tfim_field_scan,
    transverse_field_ising_chain,
    xxz_anisotropy_scan,
)

__all__ = [
    "BenchmarkSuite",
    "VQE_SUITE_NAMES",
    "build_suite",
    "chemistry_suite",
    "ising_large_suite",
    "maxcut_ieee14_suite",
    "tfim_suite",
    "xxz_suite",
    "IEEE14_BRANCHES",
    "LOAD_SCENARIOS",
    "LoadScenario",
    "edge_weight_variance",
    "ieee14_graph",
    "load_scaled_graphs",
    "cut_value",
    "max_cut_brute_force",
    "maxcut_cost_hamiltonian",
    "maxcut_minimization_hamiltonian",
    "qubo_to_ising",
    "MOLECULES",
    "MolecularFamily",
    "MoleculeSpec",
    "get_molecule",
    "hartree_fock_bitstring",
    "heisenberg_xxz_chain",
    "tfim_field_scan",
    "transverse_field_ising_chain",
    "xxz_anisotropy_scan",
]
