"""Spin-chain physics benchmarks (paper §7.1).

Two spin-1/2 models are evaluated in the paper:

* the Heisenberg XXZ chain
  ``H = J Σ_i (X_i X_{i+1} + Y_i Y_{i+1} + Δ Z_i Z_{i+1})``, whose anisotropy
  Δ drives a BKT transition at Δ = 1;
* the transverse-field Ising chain
  ``H = -J Σ_i Z_i Z_{i+1} - h Σ_i X_i``, with a quantum phase transition at
  ``h = J``.

Both are open chains (nearest-neighbour couplings only), matching the paper's
use of a linear spin-to-qubit mapping.
"""

from __future__ import annotations

import numpy as np

from ..quantum.pauli import PauliOperator, PauliString

__all__ = [
    "heisenberg_xxz_chain",
    "transverse_field_ising_chain",
    "xxz_anisotropy_scan",
    "tfim_field_scan",
]


def heisenberg_xxz_chain(
    num_sites: int, anisotropy: float, coupling: float = 1.0, *, periodic: bool = False
) -> PauliOperator:
    """Heisenberg XXZ chain Hamiltonian on ``num_sites`` qubits."""
    if num_sites < 2:
        raise ValueError("num_sites must be >= 2")
    terms: dict[PauliString, complex] = {}
    bonds = [(i, i + 1) for i in range(num_sites - 1)]
    if periodic and num_sites > 2:
        bonds.append((num_sites - 1, 0))
    for i, j in bonds:
        for op, factor in (("X", 1.0), ("Y", 1.0), ("Z", anisotropy)):
            pauli = PauliString.from_sparse(num_sites, {i: op, j: op})
            terms[pauli] = terms.get(pauli, 0.0) + coupling * factor
    return PauliOperator(num_sites, terms)


def transverse_field_ising_chain(
    num_sites: int, field: float, coupling: float = 1.0, *, periodic: bool = False
) -> PauliOperator:
    """Transverse-field Ising chain: -J Σ Z_i Z_{i+1} - h Σ X_i."""
    if num_sites < 2:
        raise ValueError("num_sites must be >= 2")
    terms: dict[PauliString, complex] = {}
    bonds = [(i, i + 1) for i in range(num_sites - 1)]
    if periodic and num_sites > 2:
        bonds.append((num_sites - 1, 0))
    for i, j in bonds:
        pauli = PauliString.from_sparse(num_sites, {i: "Z", j: "Z"})
        terms[pauli] = terms.get(pauli, 0.0) - coupling
    for i in range(num_sites):
        pauli = PauliString.from_sparse(num_sites, {i: "X"})
        terms[pauli] = terms.get(pauli, 0.0) - field
    return PauliOperator(num_sites, terms)


def xxz_anisotropy_scan(
    num_sites: int,
    anisotropies: list[float] | np.ndarray | None = None,
    coupling: float = 1.0,
) -> list[tuple[float, PauliOperator]]:
    """XXZ Hamiltonians across an anisotropy scan spanning the BKT point Δ = 1."""
    if anisotropies is None:
        anisotropies = np.linspace(0.55, 1.45, 10)
    return [
        (float(delta), heisenberg_xxz_chain(num_sites, float(delta), coupling))
        for delta in anisotropies
    ]


def tfim_field_scan(
    num_sites: int,
    fields: list[float] | np.ndarray | None = None,
    coupling: float = 1.0,
) -> list[tuple[float, PauliOperator]]:
    """Transverse-field Ising Hamiltonians across a field scan spanning h = J."""
    if fields is None:
        fields = np.linspace(0.55, 1.45, 10)
    return [
        (float(h), transverse_field_ising_chain(num_sites, float(h), coupling))
        for h in fields
    ]
