"""Molecular (chemistry) benchmark Hamiltonians.

The paper builds its chemistry benchmarks (Table 1) with PySCF + Qiskit
Nature: STO-3G integrals, Jordan–Wigner mapping.  Neither package is
available offline, so this module provides a *synthetic molecular Hamiltonian
family*: for a named molecule it generates a fixed set of Pauli terms with the
locality structure of real Jordan–Wigner Hamiltonians (Z/ZZ density terms,
XX+YY-style exchange terms with Z chains, and a tail of 4-local terms) and
coefficient functions that vary smoothly with the bond length.

What TreeVQA actually relies on — and what the substitution preserves — is:

* coefficients that are continuous functions of the scan parameter, so the
  adiabatic-continuity argument of §3 holds (nearby geometries → similar
  Hamiltonians → overlapping ground states);
* a potential-energy curve with a minimum near the nominal equilibrium bond
  length (the identity coefficient carries a Morse-shaped potential plus a
  nuclear-repulsion-like 1/R term);
* identical Pauli-term supports across geometries up to small terms, so the
  §5.2.1 padding step is exercised (a configurable fraction of terms is
  dropped when its coefficient falls below a threshold);
* a Hartree–Fock-like reference determinant (the lowest ``num_particles``
  qubits occupied).

The synthetic families keep the paper's relative ordering of problem sizes
(H2 < HF ≈ LiH < BeH2 < C2H2) while scaling qubit counts down far enough to
simulate on a laptop; the paper's original sizes are retained as metadata so
Table 1 can be reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..quantum.pauli import PauliOperator, PauliString

__all__ = ["MoleculeSpec", "MolecularFamily", "MOLECULES", "get_molecule", "hartree_fock_bitstring"]


@dataclass(frozen=True)
class MoleculeSpec:
    """Static description of a molecular benchmark family.

    ``paper_*`` fields record the sizes reported in Table 1 of the paper;
    ``num_qubits`` / ``num_terms`` are the scaled sizes this reproduction
    simulates.
    """

    name: str
    num_qubits: int
    num_terms: int
    num_particles: int
    bond_range: tuple[float, float]
    equilibrium_bond: float
    paper_num_qubits: int
    paper_num_terms: int
    well_depth: float
    core_energy: float
    seed: int

    @property
    def default_bond_lengths(self) -> tuple[float, ...]:
        """Ten bond lengths spaced 0.03 Å (five for H2), as in §7.1."""
        count = 5 if self.name == "H2" else 10
        start = self.bond_range[0]
        return tuple(round(start + 0.03 * i, 4) for i in range(count))


# Scaled-down analogues of Table 1.  Qubit counts are chosen so every family
# is exactly solvable for fidelity metrics; term counts keep the paper's
# relative ordering (H2 smallest, C2H2 largest).
MOLECULES: dict[str, MoleculeSpec] = {
    "H2": MoleculeSpec(
        name="H2", num_qubits=4, num_terms=15, num_particles=2,
        bond_range=(0.74, 0.83), equilibrium_bond=0.741,
        paper_num_qubits=4, paper_num_terms=15,
        well_depth=1.0, core_energy=-1.12, seed=11,
    ),
    "LiH": MoleculeSpec(
        name="LiH", num_qubits=8, num_terms=120, num_particles=4,
        bond_range=(1.4, 1.7), equilibrium_bond=1.595,
        paper_num_qubits=12, paper_num_terms=496,
        well_depth=0.9, core_energy=-7.88, seed=12,
    ),
    "BeH2": MoleculeSpec(
        name="BeH2", num_qubits=10, num_terms=160, num_particles=6,
        bond_range=(1.2, 1.47), equilibrium_bond=1.333,
        paper_num_qubits=14, paper_num_terms=810,
        well_depth=1.1, core_energy=-15.6, seed=13,
    ),
    "HF": MoleculeSpec(
        name="HF", num_qubits=8, num_terms=130, num_particles=6,
        bond_range=(0.83, 1.1), equilibrium_bond=0.917,
        paper_num_qubits=12, paper_num_terms=631,
        well_depth=1.3, core_energy=-98.6, seed=14,
    ),
    "C2H2": MoleculeSpec(
        name="C2H2", num_qubits=16, num_terms=220, num_particles=10,
        bond_range=(1.15, 1.25), equilibrium_bond=1.2,
        paper_num_qubits=28, paper_num_terms=5945,
        well_depth=1.5, core_energy=-76.8, seed=15,
    ),
}


def get_molecule(name: str) -> MoleculeSpec:
    """Look up a molecule spec by (case-insensitive) name."""
    for key, spec in MOLECULES.items():
        if key.lower() == name.lower():
            return spec
    known = ", ".join(MOLECULES)
    raise ValueError(f"unknown molecule {name!r}; known molecules: {known}")


def hartree_fock_bitstring(num_qubits: int, num_particles: int) -> str:
    """Occupation bitstring of the Hartree–Fock determinant (lowest orbitals filled)."""
    if not 0 <= num_particles <= num_qubits:
        raise ValueError("num_particles must be in [0, num_qubits]")
    return "1" * num_particles + "0" * (num_qubits - num_particles)


@dataclass
class _TermModel:
    """Coefficient model of one Pauli term: c(R) = amplitude · shape(R)."""

    pauli: PauliString
    amplitude: float
    slope: float
    curvature: float
    decay: float
    drop_threshold: float = 0.0

    def coefficient(self, bond_length: float, equilibrium: float) -> float:
        displacement = bond_length - equilibrium
        # tanh keeps the geometry dependence smooth near equilibrium but bounded
        # far from it, so the Morse-shaped identity term controls dissociation.
        bounded = math.tanh(displacement)
        shape = 1.0 + self.slope * bounded + self.curvature * bounded ** 2
        value = self.amplitude * shape * math.exp(-self.decay * max(displacement, 0.0))
        if abs(value) < self.drop_threshold:
            return 0.0
        return value


class MolecularFamily:
    """A bond-length-parameterised family of synthetic molecular Hamiltonians."""

    def __init__(self, spec: MoleculeSpec) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(spec.seed)
        self._terms = self._build_term_models()

    # -- public API ---------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_qubits(self) -> int:
        return self.spec.num_qubits

    def hartree_fock_bitstring(self) -> str:
        """The Hartree–Fock reference determinant used as the initial state."""
        return hartree_fock_bitstring(self.spec.num_qubits, self.spec.num_particles)

    def hamiltonian(self, bond_length: float) -> PauliOperator:
        """Qubit Hamiltonian at the given bond length (Å)."""
        if bond_length <= 0:
            raise ValueError("bond_length must be positive")
        spec = self.spec
        terms: dict[PauliString, complex] = {}
        identity = PauliString.identity(spec.num_qubits)
        terms[identity] = self._identity_coefficient(bond_length)
        for model in self._terms:
            value = model.coefficient(bond_length, spec.equilibrium_bond)
            if value != 0.0:
                terms[model.pauli] = terms.get(model.pauli, 0.0) + value
        return PauliOperator(spec.num_qubits, terms)

    def scan(
        self, bond_lengths: list[float] | tuple[float, ...] | None = None
    ) -> list[tuple[float, PauliOperator]]:
        """Hamiltonians over a bond-length scan (default: the §7.1 instances)."""
        lengths = bond_lengths if bond_lengths is not None else self.spec.default_bond_lengths
        return [(float(length), self.hamiltonian(float(length))) for length in lengths]

    # -- construction internals -----------------------------------------------

    def _identity_coefficient(self, bond_length: float) -> float:
        """Morse-shaped potential + 1/R nuclear repulsion + core energy."""
        spec = self.spec
        displacement = bond_length - spec.equilibrium_bond
        morse = spec.well_depth * (1.0 - math.exp(-1.8 * displacement)) ** 2 - spec.well_depth
        repulsion = 0.25 / bond_length
        return spec.core_energy + morse + repulsion

    def _build_term_models(self) -> list[_TermModel]:
        spec = self.spec
        n = spec.num_qubits
        rng = self._rng
        paulis: list[PauliString] = []

        # Density terms: every Z_i and every Z_i Z_j (they dominate real JW
        # molecular Hamiltonians).
        for i in range(n):
            paulis.append(PauliString.from_sparse(n, {i: "Z"}))
        for i, j in combinations(range(n), 2):
            paulis.append(PauliString.from_sparse(n, {i: "Z", j: "Z"}))

        # Exchange terms: XX and YY pairs with Jordan–Wigner Z chains.
        pair_pool = list(combinations(range(n), 2))
        rng.shuffle(pair_pool)
        for i, j in pair_pool:
            if len(paulis) >= spec.num_terms - 1:
                break
            chain = {q: "Z" for q in range(i + 1, j)}
            paulis.append(PauliString.from_sparse(n, {i: "X", j: "X", **chain}))
            paulis.append(PauliString.from_sparse(n, {i: "Y", j: "Y", **chain}))

        # Four-local correlation terms to reach the target term count.
        quad_pool = list(combinations(range(n), 4))
        rng.shuffle(quad_pool)
        patterns = [
            ("X", "X", "Y", "Y"),
            ("X", "Y", "Y", "X"),
            ("Y", "X", "X", "Y"),
            ("X", "X", "X", "X"),
        ]
        pattern_index = 0
        for quad in quad_pool:
            if len(paulis) >= spec.num_terms - 1:
                break
            pattern = patterns[pattern_index % len(patterns)]
            pattern_index += 1
            factors = dict(zip(quad, pattern))
            paulis.append(PauliString.from_sparse(n, factors))

        paulis = paulis[: spec.num_terms - 1]

        models: list[_TermModel] = []
        for pauli in paulis:
            weight = pauli.weight
            # Magnitudes fall off with Pauli weight, as in real Hamiltonians.
            amplitude = float(rng.normal(0.0, 0.35 / weight))
            if all(op in ("I", "Z") for op in pauli.label):
                amplitude = float(rng.normal(-0.08 * weight, 0.25))
            slope = float(rng.normal(0.0, 0.4))
            curvature = float(rng.normal(0.0, 0.25))
            decay = float(abs(rng.normal(0.0, 0.3)))
            drop_threshold = 0.004 if weight >= 4 and rng.random() < 0.3 else 0.0
            models.append(
                _TermModel(
                    pauli=pauli,
                    amplitude=amplitude,
                    slope=slope,
                    curvature=curvature,
                    decay=decay,
                    drop_threshold=drop_threshold,
                )
            )
        return models
