"""Named benchmark suites used throughout the evaluation (paper §7.1).

A :class:`BenchmarkSuite` bundles a family of :class:`~repro.core.task.VQATask`
objects (one per scan point) with the ansatz the paper pairs with it and the
Table 1 metadata.  The figure runners in :mod:`repro.evaluation.experiments`
consume these suites directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ansatz import Ansatz, HardwareEfficientAnsatz, MultiAngleQAOAAnsatz, UCCSDAnsatz
from ..core.task import VQATask
from .ieee14 import LOAD_SCENARIOS, LoadScenario, edge_weight_variance, load_scaled_graphs
from .maxcut import maxcut_minimization_hamiltonian
from .molecular import MOLECULES, MolecularFamily, get_molecule
from .spin import tfim_field_scan, transverse_field_ising_chain, xxz_anisotropy_scan

__all__ = [
    "BenchmarkSuite",
    "chemistry_suite",
    "xxz_suite",
    "tfim_suite",
    "ising_large_suite",
    "maxcut_ieee14_suite",
    "VQE_SUITE_NAMES",
    "build_suite",
]


@dataclass
class BenchmarkSuite:
    """A family of related VQA tasks plus the ansatz used to solve them."""

    name: str
    tasks: list[VQATask]
    ansatz: Ansatz
    kind: str  # "chemistry" | "physics" | "qaoa"
    metadata: dict = field(default_factory=dict)

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_qubits(self) -> int:
        return self.tasks[0].num_qubits

    def hamiltonians(self) -> list:
        return [task.hamiltonian for task in self.tasks]


def chemistry_suite(
    molecule: str,
    *,
    bond_lengths: list[float] | None = None,
    num_ansatz_layers: int = 2,
    use_uccsd: bool | None = None,
) -> BenchmarkSuite:
    """Chemistry benchmark: a molecule scanned over bond lengths (Table 1).

    H2 defaults to the UCCSD ansatz with 5 instances, everything else to the
    two-layer hardware-efficient ansatz with 10 instances, matching §7.1.
    """
    spec = get_molecule(molecule)
    family = MolecularFamily(spec)
    scan = family.scan(bond_lengths)
    bitstring = family.hartree_fock_bitstring()
    tasks = [
        VQATask(
            name=f"{spec.name}@{length:.3f}",
            hamiltonian=hamiltonian,
            scan_parameter=length,
            initial_bitstring=bitstring,
            metadata={"molecule": spec.name, "bond_length": length},
        )
        for length, hamiltonian in scan
    ]
    if use_uccsd is None:
        use_uccsd = spec.name == "H2"
    if use_uccsd:
        ansatz: Ansatz = UCCSDAnsatz(
            spec.num_qubits, spec.num_particles, reference_bitstring=bitstring
        )
    else:
        ansatz = HardwareEfficientAnsatz(
            spec.num_qubits, num_layers=num_ansatz_layers, initial_bitstring=bitstring
        )
    return BenchmarkSuite(
        name=spec.name,
        tasks=tasks,
        ansatz=ansatz,
        kind="chemistry",
        metadata={
            "paper_num_qubits": spec.paper_num_qubits,
            "paper_num_terms": spec.paper_num_terms,
            "bond_range": spec.bond_range,
            "equilibrium_bond": spec.equilibrium_bond,
            "ansatz": "UCCSD" if use_uccsd else "hardware-efficient",
        },
    )


def xxz_suite(
    num_sites: int = 6,
    anisotropies: list[float] | None = None,
    *,
    num_ansatz_layers: int = 2,
) -> BenchmarkSuite:
    """Heisenberg XXZ chain scanned across the anisotropy (BKT transition at Δ=1)."""
    scan = xxz_anisotropy_scan(num_sites, anisotropies)
    tasks = [
        VQATask(
            name=f"XXZ@{delta:.3f}",
            hamiltonian=hamiltonian,
            scan_parameter=delta,
            metadata={"model": "xxz", "anisotropy": delta, "num_sites": num_sites},
        )
        for delta, hamiltonian in scan
    ]
    ansatz = HardwareEfficientAnsatz(num_sites, num_layers=num_ansatz_layers)
    return BenchmarkSuite(
        name="XXZ", tasks=tasks, ansatz=ansatz, kind="physics",
        metadata={"num_sites": num_sites, "transition": "BKT at anisotropy 1.0"},
    )


def tfim_suite(
    num_sites: int = 6,
    fields: list[float] | None = None,
    *,
    num_ansatz_layers: int = 2,
) -> BenchmarkSuite:
    """Transverse-field Ising chain scanned across the field (transition at h=J)."""
    scan = tfim_field_scan(num_sites, fields)
    tasks = [
        VQATask(
            name=f"TFIM@{h:.3f}",
            hamiltonian=hamiltonian,
            scan_parameter=h,
            metadata={"model": "tfim", "field": h, "num_sites": num_sites},
        )
        for h, hamiltonian in scan
    ]
    ansatz = HardwareEfficientAnsatz(num_sites, num_layers=num_ansatz_layers)
    return BenchmarkSuite(
        name="TransverseFieldIsing", tasks=tasks, ansatz=ansatz, kind="physics",
        metadata={"num_sites": num_sites, "transition": "quantum critical point at h=J"},
    )


def ising_large_suite(
    num_sites: int = 25,
    fields: list[float] | None = None,
    *,
    num_ansatz_layers: int = 1,
) -> BenchmarkSuite:
    """The Fig. 9 large-scale Ising benchmark (solved via Pauli propagation)."""
    if fields is None:
        fields = list(np.linspace(0.6, 1.4, 10))
    tasks = [
        VQATask(
            name=f"Ising{num_sites}@{h:.3f}",
            hamiltonian=transverse_field_ising_chain(num_sites, float(h)),
            scan_parameter=float(h),
            metadata={"model": "ising", "field": float(h), "num_sites": num_sites},
        )
        for h in fields
    ]
    ansatz = HardwareEfficientAnsatz(num_sites, num_layers=num_ansatz_layers, entanglement="linear")
    return BenchmarkSuite(
        name=f"Ising{num_sites}", tasks=tasks, ansatz=ansatz, kind="physics",
        metadata={"num_sites": num_sites, "simulator": "pauli-propagation"},
    )


def maxcut_ieee14_suite(
    scenario: LoadScenario | str = "0.8:1.2",
    num_instances: int = 10,
    *,
    qaoa_layers: int = 1,
) -> BenchmarkSuite:
    """MaxCut on the IEEE 14-bus system under a load-scale scenario (Fig. 12)."""
    if isinstance(scenario, str):
        matches = [s for s in LOAD_SCENARIOS if s.name == scenario]
        if not matches:
            known = ", ".join(s.name for s in LOAD_SCENARIOS)
            raise ValueError(f"unknown load scenario {scenario!r}; known: {known}")
        scenario = matches[0]
    graphs = load_scaled_graphs(scenario.load_range, num_instances)
    tasks = []
    for scale, graph in graphs:
        tasks.append(
            VQATask(
                name=f"MaxCut@load{scale:.3f}",
                hamiltonian=maxcut_minimization_hamiltonian(graph),
                scan_parameter=scale,
                metadata={"graph": graph, "load_scale": scale, "scenario": scenario.name},
            )
        )
    variance = edge_weight_variance([graph for _, graph in graphs])
    # ma-QAOA over the first instance's clause structure; all instances share it
    # because the graphs are isomorphic with identical edge sets (§8.8).
    ansatz = MultiAngleQAOAAnsatz(tasks[0].hamiltonian, num_layers=qaoa_layers)
    return BenchmarkSuite(
        name=f"IEEE14-MaxCut[{scenario.name}]",
        tasks=tasks,
        ansatz=ansatz,
        kind="qaoa",
        metadata={
            "scenario": scenario.name,
            "load_range": scenario.load_range,
            "edge_weight_variance": variance,
            "description": scenario.description,
        },
    )


VQE_SUITE_NAMES = ("HF", "LiH", "BeH2", "XXZ", "TFIM", "H2")


def build_suite(name: str, **kwargs) -> BenchmarkSuite:
    """Build a named suite: a molecule name, 'XXZ', 'TFIM', 'Ising25' or 'MaxCut'."""
    key = name.lower()
    if key in (m.lower() for m in MOLECULES):
        return chemistry_suite(name, **kwargs)
    if key == "xxz":
        return xxz_suite(**kwargs)
    if key in ("tfim", "transversefieldising", "ising"):
        return tfim_suite(**kwargs)
    if key in ("ising25", "ising_large"):
        return ising_large_suite(**kwargs)
    if key in ("maxcut", "ieee14"):
        return maxcut_ieee14_suite(**kwargs)
    raise ValueError(f"unknown benchmark suite {name!r}")
