"""MaxCut / QUBO cost Hamiltonians for QAOA (paper §7.1, §8.8).

For a weighted graph G = (V, E) the MaxCut cost Hamiltonian is

    H_C = Σ_{(i,j) ∈ E} (w_ij / 2) (I − Z_i Z_j),

whose maximal eigenvalue equals the maximum cut weight.  QAOA in this
repository *minimises* expectation values (matching VQE), so helper functions
also provide the negated operator and exact brute-force cut values for the
small graphs used in the evaluation.
"""

from __future__ import annotations

from itertools import product

import networkx as nx
import numpy as np

from ..quantum.pauli import PauliOperator, PauliString

__all__ = [
    "maxcut_cost_hamiltonian",
    "maxcut_minimization_hamiltonian",
    "cut_value",
    "max_cut_brute_force",
    "qubo_to_ising",
]


def _edge_weights(graph: nx.Graph) -> list[tuple[int, int, float]]:
    edges = []
    for u, v, data in graph.edges(data=True):
        weight = float(data.get("weight", 1.0))
        edges.append((int(u), int(v), weight))
    return edges


def maxcut_cost_hamiltonian(graph: nx.Graph) -> PauliOperator:
    """The (maximisation) MaxCut Hamiltonian Σ w/2 (I − Z_i Z_j)."""
    num_qubits = graph.number_of_nodes()
    if num_qubits < 2:
        raise ValueError("graph must have at least two nodes")
    nodes = sorted(graph.nodes())
    index = {node: position for position, node in enumerate(nodes)}
    terms: dict[PauliString, complex] = {}
    identity = PauliString.identity(num_qubits)
    for u, v, weight in _edge_weights(graph):
        terms[identity] = terms.get(identity, 0.0) + weight / 2.0
        pauli = PauliString.from_sparse(num_qubits, {index[u]: "Z", index[v]: "Z"})
        terms[pauli] = terms.get(pauli, 0.0) - weight / 2.0
    return PauliOperator(num_qubits, terms)


def maxcut_minimization_hamiltonian(graph: nx.Graph) -> PauliOperator:
    """The negated cost Hamiltonian, whose ground state is the maximum cut."""
    return -maxcut_cost_hamiltonian(graph)


def cut_value(graph: nx.Graph, assignment: dict[int, int] | str) -> float:
    """Total weight of edges crossing the cut described by ``assignment``.

    ``assignment`` maps node → {0, 1}, or is a bitstring ordered by sorted
    node id.
    """
    nodes = sorted(graph.nodes())
    if isinstance(assignment, str):
        if len(assignment) != len(nodes):
            raise ValueError("bitstring length must equal the number of nodes")
        assignment = {node: int(bit) for node, bit in zip(nodes, assignment)}
    total = 0.0
    for u, v, weight in _edge_weights(graph):
        if assignment[u] != assignment[v]:
            total += weight
    return total


def max_cut_brute_force(graph: nx.Graph) -> tuple[float, str]:
    """Exact maximum cut by enumeration (graphs up to ~20 nodes)."""
    nodes = sorted(graph.nodes())
    if len(nodes) > 22:
        raise ValueError("brute force limited to 22 nodes")
    best_value = -np.inf
    best_bits = "0" * len(nodes)
    edges = _edge_weights(graph)
    for bits in product("01", repeat=len(nodes)):
        assignment = {node: int(bit) for node, bit in zip(nodes, bits)}
        value = sum(w for u, v, w in edges if assignment[u] != assignment[v])
        if value > best_value:
            best_value = value
            best_bits = "".join(bits)
    return float(best_value), best_bits


def qubo_to_ising(q_matrix: np.ndarray) -> PauliOperator:
    """Convert a QUBO matrix (minimise x^T Q x, x ∈ {0,1}^n) to an Ising Pauli operator.

    Uses the standard substitution x_i = (1 − Z_i)/2.
    """
    q = np.asarray(q_matrix, dtype=float)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise ValueError("QUBO matrix must be square")
    n = q.shape[0]
    symmetric = 0.5 * (q + q.T)
    terms: dict[PauliString, complex] = {}
    identity = PauliString.identity(n)

    def add(pauli: PauliString, value: float) -> None:
        if value != 0.0:
            terms[pauli] = terms.get(pauli, 0.0) + value

    for i in range(n):
        for j in range(n):
            coeff = symmetric[i, j]
            if coeff == 0.0:
                continue
            if i == j:
                # x_i^2 = x_i = (1 - Z_i)/2
                add(identity, coeff / 2.0)
                add(PauliString.from_sparse(n, {i: "Z"}), -coeff / 2.0)
            else:
                # x_i x_j = (1 - Z_i - Z_j + Z_i Z_j)/4 ; i != j counted once per (i, j)
                add(identity, coeff / 4.0)
                add(PauliString.from_sparse(n, {i: "Z"}), -coeff / 4.0)
                add(PauliString.from_sparse(n, {j: "Z"}), -coeff / 4.0)
                add(PauliString.from_sparse(n, {i: "Z", j: "Z"}), coeff / 4.0)
    return PauliOperator(n, terms)
