"""REPRO003 ``worker-safety``: dispatch payloads must survive the pool.

``ParallelBackend`` pickles backend factories and execution requests into
worker processes.  Under the ``spawn`` start method (the portable one, and
the one ``backend_factory`` is documented against) only *module-level*
callables pickle — lambdas, closures, and locally defined classes/functions
raise ``PicklingError`` the first time a pool is actually used, typically in
production rather than in the in-process test run.  Two checks:

* Factory hygiene — inside any factory-shaped function (``make_backend``,
  ``*_factory``, ``make_*``) and for any ``*_factory=`` keyword argument, no
  lambdas or locally defined functions/classes.  ``functools.partial`` over
  a module-level callable is the sanctioned spelling.
* CPU accounting — ``multiprocessing.cpu_count()`` / ``os.cpu_count()``
  report the whole machine and oversubscribe cgroup-limited containers; the
  pool sizing rule is ``len(os.sched_getaffinity(0))``.
* Lock-across-recv (transport modules) — worker-transport implementations
  must never hold a lock across a blocking ``recv``: a hung worker would
  then deadlock ``close()`` / health checks from every other thread, turning
  one degraded shard into a stuck process.  Deadlines poll *outside* any
  lock; serializing whole dispatches is the caller's job
  (``ParallelBackend``'s lifecycle lock), never the endpoint's.
"""

from __future__ import annotations

import ast
import re

from .astutil import dotted_name, terminal_name
from .framework import Checker, register

__all__ = ["WorkerSafetyChecker"]

#: Function names treated as picklable-factory scopes.
_FACTORY_NAME_RE = re.compile(r"(^make_|_factory$|factory)")
#: Keyword arguments whose values ship to worker processes.
_FACTORY_KEYWORD_RE = re.compile(r"(_factory$|^factory$|^target$)")
#: dataclasses.field(default_factory=...) stores the callable on the class,
#: never inside pickled instances — exempt.
_EXEMPT_CALLEES = frozenset({"field"})
#: Modules holding worker-transport implementations, where the
#: lock-across-recv invariant applies (fnmatch; ``*`` crosses ``/``).
_TRANSPORT_MODULES = ("repro/*transport*.py",)


@register
class WorkerSafetyChecker(Checker):
    rule = "REPRO003"
    name = "worker-safety"
    description = (
        "no lambdas/closures in factory scopes or *_factory arguments; "
        "sched_getaffinity instead of cpu_count; no lock held across a "
        "blocking recv in transport modules"
    )

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if chain in ("multiprocessing.cpu_count", "os.cpu_count", "cpu_count"):
            self.report(
                node,
                f"{chain}() reports the whole machine and oversubscribes "
                "cgroup/affinity-limited containers; size pools with "
                "len(os.sched_getaffinity(0))",
            )
        callee = terminal_name(node.func)
        if callee not in _EXEMPT_CALLEES:
            for keyword in node.keywords:
                if (
                    keyword.arg
                    and _FACTORY_KEYWORD_RE.search(keyword.arg)
                    and isinstance(keyword.value, ast.Lambda)
                ):
                    self.report(
                        keyword.value,
                        f"lambda passed as {keyword.arg!r} cannot be pickled "
                        "into worker processes under spawn; use a module-"
                        "level callable or functools.partial",
                    )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if _FACTORY_NAME_RE.search(node.name):
            self._check_factory_scope(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_With(self, node: ast.With) -> None:
        self._check_lock_across_recv(node)
        self.generic_visit(node)

    visit_AsyncWith = visit_With

    def _check_lock_across_recv(self, node: ast.With) -> None:
        """Transport modules: no ``with <lock>:`` body may call ``recv``.

        A blocking recv under a lifecycle lock turns a hung worker into a
        deadlocked pool — ``close()`` and health checks from other threads
        queue behind a wait that never ends.  The sanctioned shape polls
        with a deadline outside any lock (see
        ``transport.LocalProcessEndpoint.recv``).
        """
        if not self.context.matches(_TRANSPORT_MODULES):
            return
        if not any(
            "lock" in (dotted_name(item.context_expr) or "").lower()
            for item in node.items
        ):
            return
        for child in ast.walk(node):
            if isinstance(child, ast.Call) and terminal_name(child.func) == "recv":
                self.report(
                    child,
                    "recv() under a lock: a hung worker would deadlock "
                    "close()/health checks from other threads; poll with a "
                    "deadline outside the lock and let the caller serialize "
                    "dispatches",
                )

    def _check_factory_scope(self, factory: ast.FunctionDef) -> None:
        for node in ast.walk(factory):
            if node is factory:
                continue
            if isinstance(node, ast.Lambda):
                self.report(
                    node,
                    f"lambda inside factory {factory.name!r} is not picklable "
                    "under spawn; return functools.partial over a module-"
                    "level callable",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.report(
                    node,
                    f"locally defined function {node.name!r} inside factory "
                    f"{factory.name!r} is a closure workers cannot unpickle; "
                    "hoist it to module level",
                )
            elif isinstance(node, ast.ClassDef):
                self.report(
                    node,
                    f"locally defined class {node.name!r} inside factory "
                    f"{factory.name!r} cannot be pickled into workers; hoist "
                    "it to module level",
                )
