"""Command-line entry point: ``python -m repro.analysis [paths ...]``.

Exit status: 0 when the tree is clean, 1 when findings were reported, 2 on
usage errors (unknown rule ids, missing paths).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from .framework import REGISTRY, check_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: statically enforce the repo's reproducibility "
            "invariants (RNG discipline, backend contracts, worker safety, "
            "wide-path allocation, config contracts)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_id in sorted(REGISTRY):
            checker = REGISTRY[rule_id]
            print(f"{rule_id}  {checker.name:<24} {checker.description}")
        return 0

    rules = None
    if options.rules:
        rules = tuple(rule.strip() for rule in options.rules.split(",") if rule.strip())
        unknown = [rule for rule in rules if rule not in REGISTRY]
        if unknown:
            parser.error(
                f"unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(REGISTRY))})"
            )

    try:
        report = check_paths(options.paths, rules=rules)
    except FileNotFoundError as error:
        parser.error(str(error))

    if options.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (
            f"{len(report.findings)} finding(s) in {report.files_checked} "
            f"file(s), {report.suppressed} suppressed"
        )
        print(("FAIL: " if report.findings else "OK: ") + summary)
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
