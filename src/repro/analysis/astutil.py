"""Small shared AST helpers for the reprolint checkers."""

from __future__ import annotations

import ast
import re

__all__ = [
    "dotted_name",
    "terminal_name",
    "is_width_name",
    "mentions_width_name",
    "contains_exponential_dim",
    "compares_width",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None.

    Call nodes resolve through their ``func`` so ``np.random.default_rng()``
    and ``np.random.default_rng`` both yield ``"np.random.default_rng"``.
    """
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a Name/Attribute/Call chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Call):
        return terminal_name(node.func)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


#: Identifier fragments that mark a value as a qubit count / system width.
_WIDTH_NAME_RE = re.compile(r"qubit|width", re.IGNORECASE)


def is_width_name(name: str | None) -> bool:
    return bool(name and _WIDTH_NAME_RE.search(name))


def mentions_width_name(node: ast.AST) -> bool:
    """Whether any identifier inside ``node`` looks like a qubit count."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and is_width_name(child.id):
            return True
        if isinstance(child, ast.Attribute) and is_width_name(child.attr):
            return True
    return False


def contains_exponential_dim(node: ast.AST) -> bool:
    """Whether ``node`` contains a ``2 ** <width>`` / ``1 << <width>`` term."""
    for child in ast.walk(node):
        if not isinstance(child, ast.BinOp):
            continue
        base_is_two = (
            isinstance(child.left, ast.Constant) and child.left.value == 2
        )
        base_is_one = (
            isinstance(child.left, ast.Constant) and child.left.value == 1
        )
        if isinstance(child.op, ast.Pow) and base_is_two:
            if mentions_width_name(child.right):
                return True
        if isinstance(child.op, ast.LShift) and base_is_one:
            if mentions_width_name(child.right):
                return True
    return False


def compares_width(test: ast.AST) -> bool:
    """Whether an ``if`` test compares a qubit-count-ish value (a width guard)."""
    for child in ast.walk(test):
        if isinstance(child, ast.Compare) and mentions_width_name(child):
            return True
    return False
