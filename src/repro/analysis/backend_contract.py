"""REPRO002 ``backend-contract``: execution backends honour the protocol.

``ExecutionBackend.run_batch`` documents the contract every implementation
must uphold (ordering, composition-independence, determinism, all-or-nothing
errors).  Two parts of it are checkable syntactically:

* **Declarations** — every concrete ``ExecutionBackend`` subclass must
  override ``run_batch`` and *explicitly* declare its ``name`` and its
  ``provides_states`` capability flag (inheriting the base default silently
  is how a term-vector backend ends up paired with a states-consuming
  estimator).  Estimator subclasses must likewise declare at least one of
  their capability flags (``consumes_term_vectors`` / ``consumes_states`` /
  ``requires_backend``) — the scheduler's batching decisions key off them.
* **Request immutability** — ``run_batch`` must never mutate its request
  objects: requests are frozen, shared with the caller, and (under
  ``execution_workers``) pickled across process boundaries, so in-place
  mutation either raises at runtime or silently diverges worker state.
"""

from __future__ import annotations

import ast

from .astutil import terminal_name
from .framework import Checker, register

__all__ = ["BackendContractChecker"]

_BACKEND_BASE = "ExecutionBackend"
_ESTIMATOR_BASE = "BaseEstimator"
_ESTIMATOR_FLAGS = ("consumes_term_vectors", "consumes_states", "requires_backend")
#: Names run_batch conventionally binds request objects to.
_REQUEST_NAMES = frozenset({"request", "req"})
_REQUEST_SEQUENCES = frozenset({"requests", "reqs"})


def _declared_attributes(cls: ast.ClassDef) -> set[str]:
    """Class-body attribute names: assignments, annotations, and methods
    (a ``@property`` def counts as declaring the attribute)."""
    declared: set[str] = set()
    for statement in cls.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    declared.add(target.id)
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name):
                declared.add(statement.target.id)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            declared.add(statement.name)
    return declared


def _subclasses_of(tree: ast.Module, root: str) -> list[ast.ClassDef]:
    """Classes deriving (transitively, within this module) from ``root``."""
    classes = [node for node in ast.walk(tree) if isinstance(node, ast.ClassDef)]
    known = {root}
    # Fixed-point pass so B(A) with A(ExecutionBackend) is found in any order.
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in known:
                continue
            bases = {terminal_name(base) for base in cls.bases}
            if bases & known:
                known.add(cls.name)
                changed = True
    return [cls for cls in classes if cls.name in known and cls.name != root]


@register
class BackendContractChecker(Checker):
    rule = "REPRO002"
    name = "backend-contract"
    description = (
        "backends override run_batch, declare name/provides_states, never "
        "mutate requests; estimators declare their capability flags"
    )

    def run(self) -> list:
        for cls in _subclasses_of(self.context.tree, _BACKEND_BASE):
            self._check_backend(cls)
        for cls in _subclasses_of(self.context.tree, _ESTIMATOR_BASE):
            self._check_estimator(cls)
        return self.findings

    def _check_backend(self, cls: ast.ClassDef) -> None:
        declared = _declared_attributes(cls)
        if "run_batch" not in declared:
            self.report(
                cls,
                f"{cls.name} subclasses {_BACKEND_BASE} but does not override "
                "run_batch; every backend must implement the batch contract",
            )
        for attribute in ("name", "provides_states"):
            if attribute not in declared:
                self.report(
                    cls,
                    f"{cls.name} must declare {attribute!r} explicitly "
                    "(inheriting the base default hides the capability from "
                    "reviewers and the scheduler's pairing logic)",
                )
        for statement in cls.body:
            if (
                isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
                and statement.name == "run_batch"
            ):
                self._check_no_request_mutation(cls, statement)

    def _check_estimator(self, cls: ast.ClassDef) -> None:
        declared = _declared_attributes(cls)
        if not any(flag in declared for flag in _ESTIMATOR_FLAGS):
            self.report(
                cls,
                f"{cls.name} must declare at least one capability flag "
                f"({', '.join(_ESTIMATOR_FLAGS)}) so the scheduler knows "
                "which backend payload to request",
            )

    def _check_no_request_mutation(
        self, cls: ast.ClassDef, method: ast.FunctionDef
    ) -> None:
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if self._is_request_attribute(target):
                        self.report(
                            node,
                            f"{cls.name}.run_batch mutates a request object; "
                            "requests are frozen shared payloads — build a "
                            "new request (dataclasses.replace) instead",
                        )
            elif isinstance(node, ast.Call):
                chain = terminal_name(node.func)
                if chain == "__setattr__" and node.args:
                    if self._is_request_name(node.args[0]):
                        self.report(
                            node,
                            f"{cls.name}.run_batch sidesteps request "
                            "immutability via object.__setattr__; requests "
                            "must not be mutated after construction",
                        )

    @staticmethod
    def _is_request_name(node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id in _REQUEST_NAMES:
            return True
        return (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in _REQUEST_SEQUENCES
        )

    @classmethod
    def _is_request_attribute(cls, target: ast.AST) -> bool:
        return isinstance(target, ast.Attribute) and cls._is_request_name(target.value)
