"""REPRO005 ``config-contract``: every TreeVQAConfig knob is a real contract.

``TreeVQAConfig`` is the single configuration surface of the framework, and
its class docstring is the documented contract for each knob.  Three things
rot independently when a field is added casually:

* the **docstring** silently omits the new knob (users discover it by
  reading source);
* **validation** never runs — a bad value sails through construction and
  fails deep inside a round (or worse, silently changes behaviour, e.g. a
  NaN threshold that disables divergence splits because ``x > nan`` is
  always False);
* **worker forwarding** — knobs that shape backend construction must flow
  through ``_inner_backend_factory``'s closure, because that factory (not a
  backend instance) is what gets pickled into every worker process; a knob
  read anywhere else produces workers that quietly ignore it.

The checker fires on any module defining ``class TreeVQAConfig`` and walks
the transitive ``self.*`` closure of ``__post_init__`` (for validation
reachability) and ``_inner_backend_factory`` (for worker forwarding).
"""

from __future__ import annotations

import ast
import re

from .framework import Checker, register

__all__ = ["ConfigContractChecker"]

_CONFIG_CLASS = "TreeVQAConfig"
#: Annotation identifiers marking a field as numeric (validation required).
_NUMERIC_ANNOTATIONS = frozenset({"int", "float"})
#: Fields that shape backend construction and therefore must be read inside
#: the ``_inner_backend_factory`` closure to reach worker processes.
_WORKER_FIELD_RE = re.compile(r"^(propagation_|noise_)|^backend(_factory)?$")
_VALIDATION_ROOT = "__post_init__"
_FORWARDING_ROOT = "_inner_backend_factory"


def _annotation_names(annotation: ast.AST) -> set[str]:
    return {
        node.id for node in ast.walk(annotation) if isinstance(node, ast.Name)
    }


def _self_attribute_closure(cls: ast.ClassDef, root: str) -> set[str]:
    """All ``self.<attr>`` names referenced transitively from method ``root``
    (following ``self.method()`` calls into other methods of ``cls``)."""
    methods = {
        statement.name: statement
        for statement in cls.body
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    referenced: set[str] = set()
    pending = [root]
    visited: set[str] = set()
    while pending:
        name = pending.pop()
        if name in visited or name not in methods:
            continue
        visited.add(name)
        for node in ast.walk(methods[name]):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                referenced.add(node.attr)
                if node.attr in methods:
                    pending.append(node.attr)
    return referenced


@register
class ConfigContractChecker(Checker):
    rule = "REPRO005"
    name = "config-contract"
    description = (
        "TreeVQAConfig fields need a docstring entry, reachable validation "
        "for numeric knobs, and worker forwarding for backend-shaping knobs"
    )

    def run(self) -> list:
        for node in ast.walk(self.context.tree):
            if isinstance(node, ast.ClassDef) and node.name == _CONFIG_CLASS:
                self._check_config_class(node)
        return self.findings

    def _check_config_class(self, cls: ast.ClassDef) -> None:
        fields = [
            statement
            for statement in cls.body
            if isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and not statement.target.id.startswith("_")
        ]
        if not fields:
            return
        docstring = ast.get_docstring(cls) or ""
        if not docstring:
            self.report(
                cls,
                f"{cls.name} has no class docstring; each field needs a "
                "documented contract",
            )
        has_post_init = any(
            isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
            and statement.name == _VALIDATION_ROOT
            for statement in cls.body
        )
        if not has_post_init:
            self.report(
                cls,
                f"{cls.name} defines fields but no {_VALIDATION_ROOT}; "
                "numeric knobs need a reachable validation branch",
            )
        validated = (
            _self_attribute_closure(cls, _VALIDATION_ROOT) if has_post_init else set()
        )
        forwarded = _self_attribute_closure(cls, _FORWARDING_ROOT)
        for field_assignment in fields:
            assert isinstance(field_assignment.target, ast.Name)
            field_name = field_assignment.target.id
            if docstring and not re.search(
                rf"\b{re.escape(field_name)}\b", docstring
            ):
                self.report(
                    field_assignment,
                    f"field {field_name!r} is undocumented in the "
                    f"{cls.name} docstring; every knob needs a contract "
                    "entry (default, range, interactions)",
                )
            is_numeric = bool(
                _annotation_names(field_assignment.annotation) & _NUMERIC_ANNOTATIONS
            )
            if is_numeric and has_post_init and field_name not in validated:
                self.report(
                    field_assignment,
                    f"numeric field {field_name!r} has no validation branch "
                    f"reachable from {_VALIDATION_ROOT}; reject out-of-range "
                    "(and non-finite) values at construction time",
                )
            if _WORKER_FIELD_RE.search(field_name) and field_name not in forwarded:
                self.report(
                    field_assignment,
                    f"backend-shaping field {field_name!r} is not read inside "
                    f"the {_FORWARDING_ROOT} closure, so worker processes "
                    "rebuild backends without it; forward it through the "
                    "pickled factory",
                )
