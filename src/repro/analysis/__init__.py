"""reprolint: AST-based enforcement of the repo's reproducibility invariants.

The test suite checks that the invariants hold *today*; this package checks
that the code keeps promising them.  Five rules, each guarding a contract
documented in ``docs/ARCHITECTURE.md``:

========= ======================== ========================================
Rule      Name                     Protects
========= ======================== ========================================
REPRO001  rng-discipline           seeded, stream-stable randomness
REPRO002  backend-contract         ExecutionBackend/estimator protocol
REPRO003  worker-safety            picklable dispatch payloads, pool sizing
REPRO004  exponential-allocation   the 50–100 qubit wide-circuit band
REPRO005  config-contract          documented/validated/forwarded knobs
REPRO000  suppression-contract     the suppression mechanism itself
========= ======================== ========================================

Run it with ``python -m repro.analysis [paths] [--format=text|json]``;
suppress an intentional violation in place with a justified comment::

    risky_line()  # reprolint: disable=REPRO003 -- why this is safe here

The justification text after ``--`` is mandatory, unused suppressions are
themselves findings (REPRO000), and REPRO000 cannot be suppressed.
"""

from __future__ import annotations

# Importing the checker modules is what populates REGISTRY.
from . import (  # noqa: F401  (imported for registration side effects)
    allocation,
    backend_contract,
    config_contract,
    rng,
    worker_safety,
)
from .framework import (
    META_RULE,
    REGISTRY,
    Checker,
    Finding,
    LintReport,
    Suppression,
    check_paths,
    check_source,
    iter_python_files,
    register,
)

__all__ = [
    "META_RULE",
    "REGISTRY",
    "Checker",
    "Finding",
    "LintReport",
    "Suppression",
    "check_paths",
    "check_source",
    "iter_python_files",
    "register",
]
