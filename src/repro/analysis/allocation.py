"""REPRO004 ``exponential-allocation``: no unguarded 2^n arrays on the wide path.

The Pauli-propagation backend opened the 50–100 qubit band precisely by
never materialising a dense state; a single stray ``np.zeros(2 **
num_qubits)`` (or ``Statevector.zero_state(n)``) on the controller/scheduler
path turns a sub-second wide round into a multi-petabyte allocation attempt.
This rule flags exponential-dimension constructions in the modules that sit
on the wide-circuit path unless they are *syntactically guarded* by a width
check — either an enclosing ``if`` that compares a qubit-count-ish value, or
a preceding width-guard statement in the same function (an ``if ... qubits
... : raise/return`` gate, or a ``validate_*qubits(...)`` call).

Dense backends (statevector, density-matrix, program execution) allocate
2^n arrays by design and are only reachable below the width router's cap,
so they are simply not in the scoped module list.
"""

from __future__ import annotations

import ast
import re

from .astutil import compares_width, contains_exponential_dim, terminal_name
from .framework import Checker, register

__all__ = ["ExponentialAllocationChecker", "WIDE_PATH_MODULES"]

#: Modules on the wide-circuit path: everything a 50–100 qubit propagation
#: round flows through.  Dense backend modules are deliberately absent.
WIDE_PATH_MODULES = (
    "repro/core/*.py",
    "repro/quantum/pauli_propagation.py",
)

#: numpy allocators whose dimension arguments we inspect.
_NP_ALLOCATORS = frozenset({"zeros", "empty", "ones", "full", "eye", "identity"})
#: Constructors that allocate 2^num_qubits amplitudes by definition.
_STATE_CONSTRUCTORS = frozenset({"zero_state", "computational_basis", "from_statevector"})
_STATE_OWNERS = frozenset({"Statevector", "DensityMatrix"})
#: A call to one of these earlier in the function counts as a width guard.
_VALIDATOR_RE = re.compile(r"validate_.*qubits|_validate_width")


@register
class ExponentialAllocationChecker(Checker):
    rule = "REPRO004"
    name = "exponential-allocation"
    description = (
        "2^n-sized constructions on the wide-circuit path need a syntactic "
        "width guard"
    )
    modules = WIDE_PATH_MODULES

    def visit_Call(self, node: ast.Call) -> None:
        hazard = self._allocation_hazard(node)
        if hazard is not None and not self._is_guarded(node):
            self.report(
                node,
                f"{hazard} on the wide-circuit path without a width guard; "
                "gate it behind an explicit qubit-count check (raise an "
                "actionable error beyond the dense limit) or route through "
                "term vectors",
            )
        self.generic_visit(node)

    def _allocation_hazard(self, node: ast.Call) -> str | None:
        callee = terminal_name(node.func)
        if callee in _NP_ALLOCATORS:
            arguments = list(node.args) + [keyword.value for keyword in node.keywords]
            if any(contains_exponential_dim(argument) for argument in arguments):
                return f"{callee}() allocates a 2^n-sized array"
            return None
        if callee in _STATE_CONSTRUCTORS and isinstance(node.func, ast.Attribute):
            owner = terminal_name(node.func.value)
            if owner in _STATE_OWNERS:
                return f"{owner}.{callee}() materialises a dense 2^n state"
        return None

    def _is_guarded(self, node: ast.Call) -> bool:
        enclosing_function: ast.AST | None = None
        for ancestor in self.context.ancestors(node):
            if isinstance(ancestor, ast.If) and compares_width(ancestor.test):
                return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                enclosing_function = ancestor
                break
        if enclosing_function is None:
            return False
        return self._has_preceding_guard(enclosing_function, node.lineno)

    @staticmethod
    def _has_preceding_guard(function: ast.AST, lineno: int) -> bool:
        """A width-comparing ``if`` that raises/returns, or a
        ``validate_*qubits`` call, before ``lineno`` in the same function."""
        for node in ast.walk(function):
            if getattr(node, "lineno", lineno) >= lineno:
                continue
            if isinstance(node, ast.If) and compares_width(node.test):
                if any(
                    isinstance(child, (ast.Raise, ast.Return))
                    for statement in node.body
                    for child in ast.walk(statement)
                ):
                    return True
            if isinstance(node, ast.Call):
                callee = terminal_name(node.func)
                if callee is not None and _VALIDATOR_RE.search(callee):
                    return True
        return False
