"""REPRO001 ``rng-discipline``: every random draw must be deterministic.

The reproducibility story (``docs/ARCHITECTURE.md``) hangs on one rule: all
randomness is derived from explicit seeds, and *request-keyed* randomness —
the sampling estimator's per-evaluation child generators — is derived by the
documented ``SeedSequence(entropy, spawn_key=(k,))`` rule, which lives in
the estimator layer and nowhere else.  Three syntactic hazards break it:

* ``np.random.default_rng()`` **with no seed** draws fresh OS entropy, so
  results silently differ between runs (and between batched/sequential
  execution).  The classic shape is the fallback ``rng = rng or
  np.random.default_rng()``, which hides nondeterminism behind an optional
  parameter — exactly the bug this rule's flagship finding caught in
  ``Statevector.sample_counts``.
* ``np.random.seed(...)`` and the legacy ``np.random.<sampler>()`` module
  functions mutate *global* interpreter-wide state, which no amount of
  seeding makes batching/worker-count independent.
* ``np.random.SeedSequence`` construction outside the estimator layer: a
  second spawn-key derivation could collide with the estimator's stream,
  de-correlating nothing while appearing seeded.

Seeded ``default_rng(seed)`` construction is allowed anywhere — determinism
then flows from the config's seed plumbing.
"""

from __future__ import annotations

import ast

from .astutil import dotted_name
from .framework import Checker, register

__all__ = ["RngDisciplineChecker", "ESTIMATOR_LAYER_MODULES"]

#: Modules allowed to construct SeedSequences: the estimator layer owns the
#: documented per-request derivation rule.
ESTIMATOR_LAYER_MODULES = ("repro/quantum/sampling.py",)

#: ``np.random`` attributes that are *not* legacy global-state samplers.
_NON_LEGACY = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@register
class RngDisciplineChecker(Checker):
    rule = "REPRO001"
    name = "rng-discipline"
    description = (
        "no unseeded default_rng(), no global np.random state, SeedSequence "
        "derivation only in the estimator layer"
    )

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if chain is not None:
            self._check_chain(node, chain)
        self.generic_visit(node)

    def _check_chain(self, node: ast.Call, chain: str) -> None:
        parts = chain.split(".")
        # Normalise ``numpy.random.X`` / ``np.random.X`` to the tail.
        if len(parts) >= 3 and parts[-3] in ("np", "numpy") and parts[-2] == "random":
            tail = parts[-1]
        elif len(parts) == 2 and parts[-2] in ("np", "numpy") and parts[-1] == "random":
            # A bare ``np.random(...)`` call is not a thing; ignore.
            return
        elif parts[-1] in ("default_rng", "SeedSequence") and (
            len(parts) == 1 or parts[-2] == "random"
        ):
            # ``from numpy.random import default_rng`` style.
            tail = parts[-1]
        else:
            return
        if tail == "seed":
            self.report(
                node,
                "np.random.seed mutates global RNG state; construct an "
                "explicit np.random.default_rng(seed) and thread it through",
            )
        elif tail == "RandomState":
            self.report(
                node,
                "np.random.RandomState is the legacy global-state API; use "
                "np.random.default_rng(seed)",
            )
        elif tail == "default_rng":
            if not node.args and not node.keywords:
                self.report(
                    node,
                    "unseeded np.random.default_rng() draws fresh OS entropy "
                    "and makes results irreproducible; require an explicit "
                    "Generator (or derive one via the estimator layer's "
                    "SeedSequence(entropy, spawn_key=(k,)) rule)",
                )
        elif tail == "SeedSequence":
            if not self.context.matches(ESTIMATOR_LAYER_MODULES):
                self.report(
                    node,
                    "SeedSequence derivation outside the estimator layer "
                    f"({', '.join(ESTIMATOR_LAYER_MODULES)}) risks colliding "
                    "with the documented spawn_key streams; plumb a seeded "
                    "default_rng(seed) instead",
                )
        elif tail not in _NON_LEGACY and tail.islower():
            self.report(
                node,
                f"np.random.{tail} consumes global RNG state; draw from an "
                "explicit np.random.Generator instead",
            )
