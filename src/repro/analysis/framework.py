"""reprolint core: file walker, checker registry, suppressions, reporting.

The repo's correctness story rests on a handful of *cross-cutting contracts*
that no single unit test owns: the bit-identical batching invariant, the
sampling estimator's RNG derivation rule, the multi-process picklability
rules, and the "no dense 2^n allocation on wide systems" discipline
(``docs/ARCHITECTURE.md``).  Violations of any of them are cheap to write
and expensive to catch — the parity suites only fail one full CI cycle
later, and some hazards (an unseeded RNG fallback) pass every parity test
while still breaking reproducibility for users.

This module provides the machinery to enforce those contracts *statically*,
in seconds, from nothing but the stdlib ``ast``/``tokenize`` modules:

* :class:`Checker` — an ``ast.NodeVisitor`` with a rule id, a human name,
  and an optional module scope; concrete rules live in the sibling modules
  and register themselves via :func:`register`.
* :func:`check_source` / :func:`check_paths` — parse a file once, run every
  registered checker over the tree, and apply suppression comments.
* Suppressions — ``# reprolint: disable=RULE -- justification`` on (or one
  line above) the offending line, or ``# reprolint: disable-file=RULE --
  justification`` anywhere for a module-wide exemption.  A justification is
  **required**: a bare ``disable`` is itself reported (REPRO000), as is a
  suppression that matches no finding (so stale exemptions cannot
  accumulate).

Findings carry ``path:line:col`` locations and are rendered as text or JSON
by :mod:`repro.analysis.__main__`.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import re
import tokenize
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Checker",
    "Finding",
    "LintReport",
    "ModuleContext",
    "REGISTRY",
    "META_RULE",
    "check_paths",
    "check_source",
    "canonical_module_path",
    "iter_python_files",
    "register",
]

#: Rule id used for framework-level findings: malformed or unused
#: suppression comments and files that fail to parse.  Unsuppressable by
#: design — it reports problems with the suppression machinery itself.
META_RULE = "REPRO000"
META_RULE_NAME = "suppression-contract"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    name: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location()}: {self.rule}[{self.name}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "name": self.name,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One parsed ``# reprolint: disable[-file]=...`` comment."""

    line: int
    rules: tuple[str, ...]
    justification: str
    file_level: bool
    used: bool = False


_SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s+--\s*(?P<why>\S.*?))?\s*$"
)


class ModuleContext:
    """Everything the checkers need about one module: tree, source, scope.

    ``relpath`` is the *canonical* module path (``repro/quantum/backend.py``)
    that rule scoping patterns match against — derived from the filesystem
    path for real files, or passed verbatim by tests exercising fixture
    snippets.
    """

    def __init__(self, path: str, relpath: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def matches(self, patterns: Sequence[str]) -> bool:
        """Whether this module's canonical path matches any fnmatch pattern."""
        return any(fnmatch.fnmatch(self.relpath, pattern) for pattern in patterns)


class Checker(ast.NodeVisitor):
    """Base class for one lint rule.

    Subclasses set ``rule`` (``"REPRO001"``), ``name`` (a short slug shown in
    reports), ``description`` (one line for ``--list-rules``), and optionally
    ``modules`` — fnmatch patterns of canonical module paths the rule is
    scoped to (``None`` runs everywhere).  The framework instantiates one
    checker per (rule, module) pair and calls :meth:`run`.
    """

    rule = "REPRO999"
    name = "abstract"
    description = ""
    #: fnmatch patterns of canonical module paths; None = every module.
    modules: tuple[str, ...] | None = None

    def __init__(self, context: ModuleContext) -> None:
        self.context = context
        self.findings: list[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.context.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=self.rule,
                name=self.name,
                message=message,
            )
        )

    def run(self) -> list[Finding]:
        self.visit(self.context.tree)
        return self.findings


#: rule id -> checker class, in registration (= rule) order.
REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if cls.rule in REGISTRY:
        raise ValueError(f"duplicate checker rule {cls.rule!r}")
    REGISTRY[cls.rule] = cls
    return cls


def canonical_module_path(path: str | Path) -> str:
    """Module path rooted at the ``repro`` package, for rule scoping.

    ``src/repro/quantum/backend.py`` → ``repro/quantum/backend.py``; paths
    outside a ``repro`` package tree are returned relative as given (module-
    scoped rules then simply never match them).
    """
    parts = Path(path).as_posix().split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return Path(path).as_posix().lstrip("./")


def _parse_suppressions(source: str) -> tuple[list[Suppression], list[tuple[int, str]]]:
    """All suppression comments in ``source``, plus malformed-comment errors.

    Returns ``(suppressions, errors)`` where each error is ``(line,
    message)``.  A suppression without the required ``-- justification``
    trailer is an error and does **not** suppress anything.
    """
    suppressions: list[Suppression] = []
    errors: list[tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [], []  # the ast parse reports the real error
    for line, comment in comments:
        if "reprolint" not in comment:
            continue
        match = _SUPPRESSION_RE.search(comment)
        if match is None:
            errors.append(
                (line, "malformed reprolint comment; expected "
                       "'# reprolint: disable=RULE -- justification'")
            )
            continue
        rules = tuple(
            rule.strip() for rule in match.group("rules").split(",") if rule.strip()
        )
        why = (match.group("why") or "").strip()
        if not why:
            errors.append(
                (line, f"suppression of {', '.join(rules)} needs a justification: "
                       "'# reprolint: disable=RULE -- why this is safe'")
            )
            continue
        if any(rule == META_RULE for rule in rules):
            errors.append((line, f"{META_RULE} cannot be suppressed"))
            continue
        unknown = [rule for rule in rules if rule not in REGISTRY]
        if unknown:
            errors.append(
                (line, f"suppression names unknown rule(s) {', '.join(unknown)}; "
                       f"known rules: {', '.join(sorted(REGISTRY))}")
            )
            continue
        suppressions.append(
            Suppression(
                line=line,
                rules=rules,
                justification=why,
                file_level=match.group("kind") == "disable-file",
            )
        )
    return suppressions, errors


def _apply_suppressions(
    findings: list[Finding],
    suppressions: list[Suppression],
    path: str,
) -> tuple[list[Finding], int, list[Finding]]:
    """Filter findings through suppressions; report unused suppressions.

    A line-level suppression covers findings of its rules on the same line
    or the line directly below (so a standalone comment can precede the
    offending statement).  Returns ``(kept, suppressed_count, meta)`` where
    ``meta`` are REPRO000 findings for suppressions that matched nothing.
    """
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        covered = False
        for suppression in suppressions:
            if finding.rule not in suppression.rules:
                continue
            if suppression.file_level or finding.line in (
                suppression.line,
                suppression.line + 1,
            ):
                suppression.used = True
                covered = True
        if covered:
            suppressed += 1
        else:
            kept.append(finding)
    meta = [
        Finding(
            path=path,
            line=suppression.line,
            col=0,
            rule=META_RULE,
            name=META_RULE_NAME,
            message=(
                f"unused suppression of {', '.join(suppression.rules)} "
                "(no matching finding; remove the stale comment)"
            ),
        )
        for suppression in suppressions
        if not suppression.used
    ]
    return kept, suppressed, meta


def check_source(
    source: str,
    relpath: str,
    *,
    path: str | None = None,
    rules: Sequence[str] | None = None,
) -> tuple[list[Finding], int]:
    """Lint one module's source; returns ``(findings, suppressed_count)``.

    ``relpath`` is the canonical module path used for rule scoping; ``path``
    (default: ``relpath``) is what findings display.  ``rules`` restricts the
    run to a subset of rule ids (the meta rule always runs).
    """
    display = path if path is not None else relpath
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Finding(
                path=display,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                rule=META_RULE,
                name="parse-error",
                message=f"file does not parse: {error.msg}",
            )
        ], 0
    context = ModuleContext(path=display, relpath=relpath, source=source, tree=tree)
    findings: list[Finding] = []
    for rule_id, checker_cls in REGISTRY.items():
        if rules is not None and rule_id not in rules:
            continue
        if checker_cls.modules is not None and not context.matches(checker_cls.modules):
            continue
        findings.extend(checker_cls(context).run())
    suppressions, comment_errors = _parse_suppressions(source)
    kept, suppressed, unused_meta = _apply_suppressions(findings, suppressions, display)
    kept.extend(unused_meta)
    kept.extend(
        Finding(
            path=display, line=line, col=0,
            rule=META_RULE, name=META_RULE_NAME, message=message,
        )
        for line, message in comment_errors
    )
    kept.sort(key=lambda finding: (finding.path, finding.line, finding.col, finding.rule))
    return kept, suppressed


#: Directory names never descended into by the walker.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates = [root]
        elif root.is_dir():
            candidates = sorted(
                candidate
                for candidate in root.rglob("*.py")
                if not (_SKIP_DIRS & set(candidate.parts))
            )
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


@dataclass
class LintReport:
    """The outcome of one lint run over a set of paths."""

    findings: list[Finding]
    files_checked: int
    suppressed: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "findings": [finding.as_dict() for finding in self.findings],
        }


def check_paths(
    paths: Sequence[str | Path], *, rules: Sequence[str] | None = None
) -> LintReport:
    """Lint every Python file under ``paths`` and aggregate the findings."""
    findings: list[Finding] = []
    suppressed = 0
    files = iter_python_files(paths)
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        file_findings, file_suppressed = check_source(
            source,
            canonical_module_path(file_path),
            path=file_path.as_posix(),
            rules=rules,
        )
        findings.extend(file_findings)
        suppressed += file_suppressed
    return LintReport(findings=findings, files_checked=len(files), suppressed=suppressed)
