"""Classical initialisation strategies: Hartree–Fock, CAFQA, Red-QAOA."""

from .cafqa import CAFQAResult, cafqa_search, clifford_energy
from .hartree_fock import (
    assign_hartree_fock,
    hartree_fock_bitstring,
    hartree_fock_energy,
    hartree_fock_state,
)
from .red_qaoa import RedQAOAResult, pool_graph, red_qaoa_initialization

__all__ = [
    "CAFQAResult",
    "cafqa_search",
    "clifford_energy",
    "assign_hartree_fock",
    "hartree_fock_bitstring",
    "hartree_fock_energy",
    "hartree_fock_state",
    "RedQAOAResult",
    "pool_graph",
    "red_qaoa_initialization",
]
