"""Hartree–Fock-style reference-state initialisation (paper §5.1, §7.1).

The chemistry benchmarks start every task from the Hartree–Fock determinant:
the lowest ``num_particles`` spin orbitals occupied.  In the qubit picture
this is a computational-basis bitstring, prepared with X gates in front of
the ansatz and shared by all tasks of a molecule's scan — which is why the
paper starts them in a single root cluster.
"""

from __future__ import annotations

from ..core.task import VQATask
from ..hamiltonians.molecular import hartree_fock_bitstring
from ..quantum.statevector import Statevector

__all__ = [
    "hartree_fock_bitstring",
    "hartree_fock_state",
    "hartree_fock_energy",
    "assign_hartree_fock",
]


def hartree_fock_state(num_qubits: int, num_particles: int) -> Statevector:
    """The Hartree–Fock determinant as a statevector."""
    return Statevector.computational_basis(
        num_qubits, hartree_fock_bitstring(num_qubits, num_particles)
    )


def hartree_fock_energy(task: VQATask, num_particles: int) -> float:
    """Energy of the Hartree–Fock determinant under the task Hamiltonian."""
    state = hartree_fock_state(task.num_qubits, num_particles)
    return state.expectation(task.hamiltonian)


def assign_hartree_fock(tasks: list[VQATask], num_particles: int) -> list[VQATask]:
    """Set every task's initial bitstring to the HF determinant (in place); returns tasks."""
    bitstring = hartree_fock_bitstring(tasks[0].num_qubits, num_particles)
    for task in tasks:
        task.initial_bitstring = bitstring
    return tasks
