"""CAFQA-style Clifford initialisation (paper §8.5).

CAFQA searches for good initial ansatz parameters by restricting every angle
to a multiple of π/2: the ansatz then becomes a Clifford circuit that can be
evaluated classically with the stabilizer simulator.  This module implements
that bootstrap as a coordinate-descent search over the discrete angle grid
{0, π/2, π, 3π/2}, evaluating the target Hamiltonian (or a cluster's mixed
Hamiltonian) exactly with :class:`~repro.quantum.clifford.CliffordSimulator`.

The returned parameters warm-start both baseline VQE and TreeVQA (Fig. 10).
The search requires an ansatz whose gate angles are the raw parameters (the
hardware-efficient ansatz qualifies; parameter-scaled ansatz such as UCCSD do
not stay Clifford on the grid and are rejected).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..ansatz.base import Ansatz
from ..quantum.circuit import Parameter
from ..quantum.clifford import CliffordSimulator
from ..quantum.pauli import PauliOperator

__all__ = ["CAFQAResult", "cafqa_search", "clifford_energy"]

_CLIFFORD_ANGLES = (0.0, math.pi / 2, math.pi, 3 * math.pi / 2)


@dataclass(frozen=True)
class CAFQAResult:
    """Outcome of a CAFQA search."""

    parameters: np.ndarray
    energy: float
    num_evaluations: int
    history: tuple[float, ...]

    def initialization_fidelity(self, ground_energy: float) -> float:
        """Paper-style initialisation accuracy: 1 − |E_gs − E| / |E_gs|."""
        if ground_energy == 0:
            return 1.0 - abs(self.energy - ground_energy)
        return 1.0 - abs(ground_energy - self.energy) / abs(ground_energy)


def _require_raw_parameters(ansatz: Ansatz) -> None:
    for instruction in ansatz.circuit.instructions:
        for value in instruction.params:
            if not isinstance(value, (int, float, Parameter)):
                raise ValueError(
                    "CAFQA requires an ansatz whose gate angles are raw parameters "
                    "(no scaled parameter expressions)"
                )


def clifford_energy(
    ansatz: Ansatz, parameters: np.ndarray, hamiltonian: PauliOperator
) -> float:
    """Exact energy of the Clifford ansatz state at grid parameters."""
    circuit = ansatz.bound_circuit(parameters)
    simulator = CliffordSimulator(ansatz.num_qubits)
    simulator.apply_circuit(circuit)
    return simulator.expectation(hamiltonian)


def cafqa_search(
    hamiltonian: PauliOperator,
    ansatz: Ansatz,
    *,
    num_sweeps: int = 2,
    num_restarts: int = 1,
    seed: int | None = 0,
) -> CAFQAResult:
    """Coordinate-descent search over Clifford angles for the lowest energy.

    ``num_restarts`` > 1 adds random grid restarts; the best point over all
    restarts is returned.  The number of stabilizer-simulator evaluations is
    ``restarts × sweeps × num_parameters × 4`` — entirely classical, so no
    shots are charged.
    """
    _require_raw_parameters(ansatz)
    if hamiltonian.num_qubits != ansatz.num_qubits:
        raise ValueError("Hamiltonian and ansatz qubit counts differ")
    rng = np.random.default_rng(seed)
    num_parameters = ansatz.num_parameters
    evaluations = 0
    best_parameters = np.zeros(num_parameters)
    best_energy = np.inf
    history: list[float] = []

    for restart in range(max(num_restarts, 1)):
        if restart == 0:
            parameters = np.zeros(num_parameters)
        else:
            parameters = rng.choice(_CLIFFORD_ANGLES, size=num_parameters)
        energy = clifford_energy(ansatz, parameters, hamiltonian)
        evaluations += 1
        for _ in range(num_sweeps):
            improved = False
            for index in range(num_parameters):
                current_angle = parameters[index]
                for candidate in _CLIFFORD_ANGLES:
                    if candidate == current_angle:
                        continue
                    trial = parameters.copy()
                    trial[index] = candidate
                    trial_energy = clifford_energy(ansatz, trial, hamiltonian)
                    evaluations += 1
                    if trial_energy < energy - 1e-12:
                        parameters = trial
                        energy = trial_energy
                        improved = True
                history.append(energy)
            if not improved:
                break
        if energy < best_energy:
            best_energy = energy
            best_parameters = parameters.copy()

    return CAFQAResult(
        parameters=best_parameters,
        energy=float(best_energy),
        num_evaluations=evaluations,
        history=tuple(history),
    )
