"""Red-QAOA-style initialisation for MaxCut families (paper §8.8).

Red-QAOA finds good initial QAOA angles on a *reduced* graph obtained by
graph pooling and transfers them to the full problem.  This module implements
that idea with:

1. edge-contraction pooling: repeatedly contract the lowest-weight edge until
   the graph has at most ``target_nodes`` nodes (merged edge weights add up);
2. a coarse grid search of the standard (γ, β) angles on the pooled graph
   using exact statevector simulation (classically cheap at the pooled size);
3. broadcast of the optimal (γ, β) to the full ansatz — for ma-QAOA every
   clause angle of a layer receives γ_layer and every mixer angle β_layer.

All instances of a Fig. 12 load scenario are isomorphic and differ only in
edge weights, so a single initialisation is shared by every task, and all
tasks start in one TreeVQA root cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..ansatz.qaoa import MultiAngleQAOAAnsatz, QAOAAnsatz
from ..hamiltonians.maxcut import maxcut_minimization_hamiltonian
from ..quantum.statevector import StatevectorSimulator

__all__ = ["RedQAOAResult", "pool_graph", "red_qaoa_initialization"]


@dataclass(frozen=True)
class RedQAOAResult:
    """Outcome of the Red-QAOA-style initialisation."""

    gammas: np.ndarray
    betas: np.ndarray
    pooled_num_nodes: int
    pooled_energy: float

    def broadcast(self, ansatz: QAOAAnsatz) -> np.ndarray:
        """Initial parameter vector for a (ma-)QAOA ansatz of the same depth."""
        if ansatz.num_layers != len(self.gammas):
            raise ValueError("ansatz depth does not match the initialisation depth")
        if isinstance(ansatz, MultiAngleQAOAAnsatz):
            values: list[float] = []
            num_clauses = ansatz.parameters_per_layer - ansatz.num_qubits
            for layer in range(ansatz.num_layers):
                values.extend([float(self.gammas[layer])] * num_clauses)
                values.extend([float(self.betas[layer])] * ansatz.num_qubits)
            return np.array(values)
        values = []
        for layer in range(ansatz.num_layers):
            values.append(float(self.gammas[layer]))
            values.append(float(self.betas[layer]))
        return np.array(values)


def pool_graph(graph: nx.Graph, target_nodes: int = 8) -> nx.Graph:
    """Contract lowest-weight edges until at most ``target_nodes`` nodes remain."""
    if target_nodes < 2:
        raise ValueError("target_nodes must be >= 2")
    pooled = nx.Graph()
    pooled.add_nodes_from(graph.nodes())
    for u, v, data in graph.edges(data=True):
        pooled.add_edge(u, v, weight=float(data.get("weight", 1.0)))
    while pooled.number_of_nodes() > target_nodes and pooled.number_of_edges() > 0:
        u, v, _w = min(pooled.edges(data="weight"), key=lambda edge: edge[2])
        pooled = nx.contracted_nodes(pooled, u, v, self_loops=False)
        # contracted_nodes keeps the first edge's weight; merge parallel weights by re-adding.
    mapping = {node: index for index, node in enumerate(sorted(pooled.nodes()))}
    return nx.relabel_nodes(pooled, mapping)


def red_qaoa_initialization(
    graph: nx.Graph,
    num_layers: int = 1,
    *,
    target_nodes: int = 8,
    grid_points: int = 9,
) -> RedQAOAResult:
    """Grid-search standard QAOA angles on the pooled graph and return them."""
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    pooled = pool_graph(graph, target_nodes)
    hamiltonian = maxcut_minimization_hamiltonian(pooled)
    ansatz = QAOAAnsatz(hamiltonian, num_layers=num_layers)
    simulator = StatevectorSimulator()

    gamma_grid = np.linspace(0.05, np.pi / 2, grid_points)
    # The cost operator here is the *minimisation* Hamiltonian (-C), so the
    # productive region of the (γ, β) landscape sits at negative β; sweep both signs.
    beta_grid = np.linspace(-np.pi / 4, np.pi / 4, grid_points)
    best_energy = np.inf
    best_gamma, best_beta = gamma_grid[0], beta_grid[0]
    for gamma in gamma_grid:
        for beta in beta_grid:
            parameters = np.array([gamma, beta] * num_layers)
            energy = simulator.expectation(ansatz.bound_circuit(parameters), hamiltonian)
            if energy < best_energy:
                best_energy = energy
                best_gamma, best_beta = float(gamma), float(beta)
    return RedQAOAResult(
        gammas=np.full(num_layers, best_gamma),
        betas=np.full(num_layers, best_beta),
        pooled_num_nodes=pooled.number_of_nodes(),
        pooled_energy=float(best_energy),
    )
