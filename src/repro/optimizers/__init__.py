"""Classical optimizers: SPSA (paper default) and COBYLA (alternate, §8.6)."""

from .base import IterativeOptimizer, Objective, OptimizerResult, OptimizerStep
from .cobyla import COBYLA
from .spsa import SPSA

__all__ = [
    "IterativeOptimizer",
    "Objective",
    "OptimizerResult",
    "OptimizerStep",
    "COBYLA",
    "SPSA",
]
