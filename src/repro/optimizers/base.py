"""Optimizer interfaces shared by TreeVQA and the baseline.

TreeVQA drives its optimizer one *iteration* at a time so that the sliding-
window slope monitor can inspect the loss after every iteration and trigger a
cluster split (paper §5.2.2–5.2.3).  Since the batched round scheduler needs
to gather every cluster's pending evaluations *before* executing them, the
interface is ask/tell:

* :meth:`IterativeOptimizer.ask` returns the parameter points the optimizer
  wants evaluated next (SPSA returns its ± perturbation pair at once);
* :meth:`IterativeOptimizer.tell` receives the objective values and returns
  the completed :class:`OptimizerStep` — or ``None`` when the optimizer needs
  more evaluations to finish the iteration (COBYLA probes one point at a
  time and therefore degrades gracefully to batches of one).

Optimizers implemented against the legacy callback style only need to
provide :meth:`IterativeOptimizer._step_impl`; the base class converts it to
ask/tell with a worker-thread trampoline that suspends the callback at every
objective evaluation.  The callback-only entry point
:meth:`IterativeOptimizer.step` is deprecated — use :meth:`run_step` (the
supported objective-driven wrapper) or ask/tell directly.
"""

from __future__ import annotations

import queue
import threading
import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Objective", "OptimizerStep", "OptimizerResult", "IterativeOptimizer"]

Objective = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class OptimizerStep:
    """Outcome of a single optimizer iteration."""

    parameters: np.ndarray
    loss: float
    num_evaluations: int
    iteration: int


@dataclass
class OptimizerResult:
    """Outcome of a full optimisation run."""

    parameters: np.ndarray
    loss: float
    num_iterations: int
    num_evaluations: int
    loss_history: list[float] = field(default_factory=list)

    @property
    def best_loss(self) -> float:
        """Lowest loss seen along the trajectory (falls back to final loss)."""
        return min(self.loss_history) if self.loss_history else self.loss


class _StepCancelled(BaseException):
    """Raised inside a trampolined step body to unwind a cancelled step."""


class _StepTrampoline:
    """Convert a callback-driven step body into an ask/tell exchange.

    The body runs in a worker thread; each objective call posts the probe
    point to the main thread and blocks until the value is told back.  The
    exchange is strictly alternating (the main thread blocks while the worker
    runs and vice versa), so there is no concurrency in the optimizer state —
    just inverted control flow.
    """

    def __init__(self, body: Callable[[Objective], OptimizerStep]) -> None:
        self._requests: queue.SimpleQueue = queue.SimpleQueue()
        self._responses: queue.SimpleQueue = queue.SimpleQueue()
        self._thread = threading.Thread(target=self._run, args=(body,), daemon=True)
        self._message: tuple[str, object] | None = None

    def _run(self, body: Callable[[Objective], OptimizerStep]) -> None:
        try:
            self._requests.put(("done", body(self._objective)))
        except _StepCancelled:
            self._requests.put(("cancelled", None))
        except BaseException as error:  # noqa: BLE001 - re-raised on the caller side
            self._requests.put(("error", error))

    def _objective(self, point: np.ndarray) -> float:
        self._requests.put(("point", np.asarray(point, dtype=float).copy()))
        kind, value = self._responses.get()
        if kind == "cancel":
            raise _StepCancelled
        return float(value)  # type: ignore[arg-type]

    def _advance(self) -> tuple[str, object]:
        message = self._requests.get()
        if message[0] == "error":
            raise message[1]  # type: ignore[misc]
        return message

    def current_point(self) -> np.ndarray | None:
        """The probe the body is waiting on (None if it finished without one)."""
        if self._message is None:
            self._thread.start()
            self._message = self._advance()
        kind, payload = self._message
        return payload if kind == "point" else None  # type: ignore[return-value]

    def send_value(self, value: float) -> OptimizerStep | None:
        """Resume the body with an objective value; return its step when done."""
        self._responses.put(("value", value))
        self._message = self._advance()
        kind, payload = self._message
        if kind == "done":
            self._thread.join()
            return payload  # type: ignore[return-value]
        return None

    def finish(self) -> OptimizerStep:
        """Collect the step of a body that finished without pending probes."""
        assert self._message is not None and self._message[0] == "done"
        self._thread.join()
        return self._message[1]  # type: ignore[return-value]

    def cancel(self) -> None:
        """Unwind a body blocked on an objective value."""
        if self._message is not None and self._message[0] == "point":
            self._responses.put(("cancel", None))
            self._thread.join(timeout=5.0)


class IterativeOptimizer:
    """Base class: stateful, steppable optimizer with an ask/tell interface."""

    #: number of objective evaluations consumed per step (the paper's
    #: N_evals-per-iter; 2 for SPSA's ± perturbation pair).
    evaluations_per_step: int = 1

    def __init__(self) -> None:
        self._parameters: np.ndarray | None = None
        self._iteration = 0
        self._pending: list[np.ndarray] | None = None
        self._trampoline: _StepTrampoline | None = None

    # -- lifecycle ------------------------------------------------------------

    def reset(self, initial_parameters: np.ndarray) -> None:
        """Start a new optimisation from ``initial_parameters``."""
        self.cancel()
        self._parameters = np.asarray(initial_parameters, dtype=float).copy()
        self._iteration = 0

    @property
    def parameters(self) -> np.ndarray:
        """Current parameter vector."""
        if self._parameters is None:
            raise RuntimeError("optimizer has not been reset with initial parameters")
        return self._parameters.copy()

    @property
    def iteration(self) -> int:
        """Number of completed iterations since the last reset."""
        return self._iteration

    # -- ask/tell -------------------------------------------------------------

    def ask(self) -> list[np.ndarray]:
        """Parameter points the optimizer wants evaluated next.

        May return fewer points than a full iteration needs (COBYLA probes
        one at a time): keep alternating ``ask``/``tell`` until ``tell``
        returns a completed step.
        """
        if self._parameters is None:
            raise RuntimeError("optimizer has not been reset with initial parameters")
        if self._pending is not None:
            raise RuntimeError("ask() called again before tell()")
        points = [np.asarray(point, dtype=float).copy() for point in self._ask()]
        self._pending = points
        return [point.copy() for point in points]

    def tell(self, values: Sequence[float]) -> OptimizerStep | None:
        """Report objective values for the last ask; returns the step when done."""
        if self._pending is None:
            raise RuntimeError("tell() called without a preceding ask()")
        values = [float(value) for value in values]
        if len(values) != len(self._pending):
            raise ValueError(
                f"tell() expected {len(self._pending)} values, got {len(values)}"
            )
        pending, self._pending = self._pending, None
        return self._tell(pending, values)

    def cancel(self) -> None:
        """Abandon an in-progress step (pending asks are discarded)."""
        self._pending = None
        if self._trampoline is not None:
            self._trampoline.cancel()
            self._trampoline = None
        self._cancel()

    # -- to be provided by subclasses ------------------------------------------

    def _ask(self) -> list[np.ndarray]:
        """Produce the next probe points.  Default: trampoline ``_step_impl``."""
        if self._trampoline is None:
            self._trampoline = _StepTrampoline(self._step_impl)
        point = self._trampoline.current_point()
        return [] if point is None else [point]

    def _tell(self, points: list[np.ndarray], values: list[float]) -> OptimizerStep | None:
        """Consume probe values.  Default: resume the trampolined step body."""
        trampoline = self._trampoline
        if trampoline is None:  # pragma: no cover - guarded by tell()
            raise RuntimeError("no step in progress")
        step = trampoline.send_value(values[0]) if points else trampoline.finish()
        if step is not None:
            self._trampoline = None
        return step

    def _step_impl(self, objective: Objective) -> OptimizerStep:
        """Legacy callback-driven step body (COBYLA-style optimizers)."""
        raise NotImplementedError(
            "subclasses must implement _step_impl or override _ask/_tell"
        )

    def _cancel(self) -> None:
        """Hook for subclasses to drop native per-step state on cancel."""

    # -- objective-driven drivers ---------------------------------------------

    def run_step(self, objective: Objective) -> OptimizerStep:
        """Perform one iteration by evaluating ``objective`` as asked."""
        while True:
            points = self.ask()
            step = self.tell([float(objective(point)) for point in points])
            if step is not None:
                return step

    def step(self, objective: Objective) -> OptimizerStep:
        """Deprecated callback-only entry point; use ask/tell or :meth:`run_step`."""
        warnings.warn(
            "IterativeOptimizer.step(objective) is deprecated; use ask()/tell() "
            "(batched execution) or run_step(objective)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run_step(objective)

    def minimize(
        self,
        objective: Objective,
        initial_parameters: np.ndarray,
        num_iterations: int,
        callback: Callable[[OptimizerStep], None] | None = None,
    ) -> OptimizerResult:
        """Run ``num_iterations`` steps from ``initial_parameters``."""
        if num_iterations < 1:
            raise ValueError("num_iterations must be >= 1")
        self.reset(initial_parameters)
        history: list[float] = []
        evaluations = 0
        last: OptimizerStep | None = None
        for _ in range(num_iterations):
            last = self.run_step(objective)
            history.append(last.loss)
            evaluations += last.num_evaluations
            if callback is not None:
                callback(last)
        assert last is not None
        return OptimizerResult(
            parameters=last.parameters,
            loss=last.loss,
            num_iterations=num_iterations,
            num_evaluations=evaluations,
            loss_history=history,
        )
