"""Optimizer interfaces shared by TreeVQA and the baseline.

TreeVQA drives its optimizer one *iteration* at a time so that the sliding-
window slope monitor can inspect the loss after every iteration and trigger a
cluster split (paper §5.2.2–5.2.3).  The interface therefore exposes
:meth:`IterativeOptimizer.step` in addition to a conventional
:meth:`IterativeOptimizer.minimize` loop.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Objective", "OptimizerStep", "OptimizerResult", "IterativeOptimizer"]

Objective = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class OptimizerStep:
    """Outcome of a single optimizer iteration."""

    parameters: np.ndarray
    loss: float
    num_evaluations: int
    iteration: int


@dataclass
class OptimizerResult:
    """Outcome of a full optimisation run."""

    parameters: np.ndarray
    loss: float
    num_iterations: int
    num_evaluations: int
    loss_history: list[float] = field(default_factory=list)

    @property
    def best_loss(self) -> float:
        """Lowest loss seen along the trajectory (falls back to final loss)."""
        return min(self.loss_history) if self.loss_history else self.loss


class IterativeOptimizer:
    """Base class: stateful, steppable optimizer."""

    #: number of objective evaluations consumed per step (the paper's
    #: N_evals-per-iter; 2 for SPSA's ± perturbation pair).
    evaluations_per_step: int = 1

    def __init__(self) -> None:
        self._parameters: np.ndarray | None = None
        self._iteration = 0

    # -- lifecycle ------------------------------------------------------------

    def reset(self, initial_parameters: np.ndarray) -> None:
        """Start a new optimisation from ``initial_parameters``."""
        self._parameters = np.asarray(initial_parameters, dtype=float).copy()
        self._iteration = 0

    @property
    def parameters(self) -> np.ndarray:
        """Current parameter vector."""
        if self._parameters is None:
            raise RuntimeError("optimizer has not been reset with initial parameters")
        return self._parameters.copy()

    @property
    def iteration(self) -> int:
        """Number of completed iterations since the last reset."""
        return self._iteration

    # -- to be provided by subclasses -------------------------------------------

    def step(self, objective: Objective) -> OptimizerStep:
        """Perform one iteration and return the new parameters and loss estimate."""
        raise NotImplementedError

    # -- convenience ---------------------------------------------------------------

    def minimize(
        self,
        objective: Objective,
        initial_parameters: np.ndarray,
        num_iterations: int,
        callback: Callable[[OptimizerStep], None] | None = None,
    ) -> OptimizerResult:
        """Run ``num_iterations`` steps from ``initial_parameters``."""
        if num_iterations < 1:
            raise ValueError("num_iterations must be >= 1")
        self.reset(initial_parameters)
        history: list[float] = []
        evaluations = 0
        last: OptimizerStep | None = None
        for _ in range(num_iterations):
            last = self.step(objective)
            history.append(last.loss)
            evaluations += last.num_evaluations
            if callback is not None:
                callback(last)
        assert last is not None
        return OptimizerResult(
            parameters=last.parameters,
            loss=last.loss,
            num_iterations=num_iterations,
            num_evaluations=evaluations,
            loss_history=history,
        )
