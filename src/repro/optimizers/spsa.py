"""Simultaneous Perturbation Stochastic Approximation (SPSA).

The paper's default optimizer (§5.2.2, §7.3): each iteration evaluates the
objective at two symmetric random perturbations (a mini-batch of 2
evaluations) and updates

    theta_{t+1} = theta_t - eta_t * (L(theta+Δ) - L(theta-Δ)) / (2 Δ),

with the standard gain schedules ``eta_k = a / (A + k + 1)^alpha`` and
``c_k = c / (k + 1)^gamma`` (Spall 2001).  §8.1 notes that TreeVQA's mixed
Hamiltonians steepen the landscape, which the ``calibrate`` helper captures by
scaling ``a`` to the observed objective variation.
"""

from __future__ import annotations

import numpy as np

from .base import IterativeOptimizer, Objective, OptimizerStep

__all__ = ["SPSA"]


class SPSA(IterativeOptimizer):
    """Steppable SPSA with power-law gain schedules."""

    evaluations_per_step = 2

    def __init__(
        self,
        learning_rate: float = 0.2,
        perturbation: float = 0.1,
        *,
        stability_constant: float | None = None,
        alpha: float = 0.602,
        gamma: float = 0.101,
        expected_iterations: int = 200,
        seed: int | None = None,
    ) -> None:
        super().__init__()
        if learning_rate <= 0 or perturbation <= 0:
            raise ValueError("learning_rate and perturbation must be positive")
        self.learning_rate = learning_rate
        self.perturbation = perturbation
        self.alpha = alpha
        self.gamma = gamma
        self.stability_constant = (
            stability_constant if stability_constant is not None else 0.1 * expected_iterations
        )
        self.rng = np.random.default_rng(seed)
        self._delta: np.ndarray | None = None
        self._c_k = perturbation

    # -- schedules ------------------------------------------------------------

    def learning_rate_at(self, iteration: int) -> float:
        """eta_k = a / (A + k + 1)^alpha."""
        return self.learning_rate / ((self.stability_constant + iteration + 1) ** self.alpha)

    def perturbation_at(self, iteration: int) -> float:
        """c_k = c / (k + 1)^gamma."""
        return self.perturbation / ((iteration + 1) ** self.gamma)

    # -- optimisation ------------------------------------------------------------

    def _ask(self) -> list[np.ndarray]:
        """The ± perturbation pair for the current iterate, asked at once."""
        parameters = self.parameters
        c_k = self.perturbation_at(self._iteration)
        delta = self.rng.choice([-1.0, 1.0], size=parameters.size)
        self._delta = delta
        self._c_k = c_k
        return [parameters + c_k * delta, parameters - c_k * delta]

    def _tell(self, points: list[np.ndarray], values: list[float]) -> OptimizerStep:
        loss_plus, loss_minus = values
        eta_k = self.learning_rate_at(self._iteration)
        gradient = (loss_plus - loss_minus) / (2.0 * self._c_k) * self._delta
        new_parameters = self._parameters - eta_k * gradient
        self._parameters = new_parameters
        self._iteration += 1
        self._delta = None
        return OptimizerStep(
            parameters=new_parameters.copy(),
            loss=0.5 * (loss_plus + loss_minus),
            num_evaluations=2,
            iteration=self._iteration,
        )

    def _cancel(self) -> None:
        self._delta = None

    def calibrate(
        self,
        objective: Objective,
        parameters: np.ndarray,
        target_step: float = 0.1,
        samples: int = 5,
    ) -> float:
        """Set ``learning_rate`` so the first update magnitude is roughly ``target_step``.

        Mirrors the learning-rate discussion of §8.1: steeper (mixed-Hamiltonian)
        landscapes produce larger gradient estimates and therefore a larger
        calibrated ``a``.  Returns the chosen learning rate.
        """
        parameters = np.asarray(parameters, dtype=float)
        magnitudes = []
        c = self.perturbation
        for _ in range(max(samples, 1)):
            delta = self.rng.choice([-1.0, 1.0], size=parameters.size)
            plus = float(objective(parameters + c * delta))
            minus = float(objective(parameters - c * delta))
            diff = plus - minus
            magnitudes.append(abs(diff) / (2.0 * c))
        typical = float(np.mean(magnitudes))
        if typical > 0:
            scaled = (self.stability_constant + 1) ** self.alpha
            self.learning_rate = target_step * scaled / typical
        return self.learning_rate
