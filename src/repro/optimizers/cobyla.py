"""COBYLA optimizer adapter (paper §8.6, §8.7).

COBYLA (Constrained Optimization BY Linear Approximations) is inherently a
run-to-completion algorithm, but TreeVQA needs per-iteration control so it
can monitor slopes and split clusters.  The adapter exposes the common
:class:`~repro.optimizers.base.IterativeOptimizer` interface by running
scipy's COBYLA in short warm-restarted blocks: each ``step`` continues from
the current best point with a trust-region radius that decays across blocks.
This keeps the optimizer's qualitative behaviour (gradient-free local linear
approximations) while fitting the steppable interface; the shot ledger counts
the true number of objective evaluations.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from .base import IterativeOptimizer, Objective, OptimizerStep

__all__ = ["COBYLA"]


class COBYLA(IterativeOptimizer):
    """Warm-restarted COBYLA blocks behind the steppable optimizer interface."""

    def __init__(
        self,
        *,
        initial_trust_radius: float = 0.3,
        final_trust_radius: float = 1e-3,
        trust_decay: float = 0.97,
        evaluations_per_step: int = 4,
    ) -> None:
        super().__init__()
        if initial_trust_radius <= 0 or final_trust_radius <= 0:
            raise ValueError("trust radii must be positive")
        if evaluations_per_step < 2:
            raise ValueError("evaluations_per_step must be >= 2")
        self.initial_trust_radius = initial_trust_radius
        self.final_trust_radius = final_trust_radius
        self.trust_decay = trust_decay
        self.evaluations_per_step = evaluations_per_step
        self._trust_radius = initial_trust_radius
        self._best_loss = np.inf

    def reset(self, initial_parameters: np.ndarray) -> None:
        super().reset(initial_parameters)
        self._trust_radius = self.initial_trust_radius
        self._best_loss = np.inf

    def _step_impl(self, objective: Objective) -> OptimizerStep:
        # Runs through the base class's ask/tell trampoline: scipy's COBYLA is
        # inherently callback-driven, so each objective call surfaces as an
        # ask() of a single probe point — batches of one, by design.
        parameters = self.parameters
        evaluations = 0
        best_loss = np.inf
        best_parameters = parameters

        def counted(x: np.ndarray) -> float:
            nonlocal evaluations, best_loss, best_parameters
            evaluations += 1
            value = float(objective(np.asarray(x, dtype=float)))
            if value < best_loss:
                best_loss = value
                best_parameters = np.asarray(x, dtype=float).copy()
            return value

        optimize.minimize(
            counted,
            parameters,
            method="COBYLA",
            options={
                "maxiter": self.evaluations_per_step,
                "rhobeg": self._trust_radius,
                "tol": self.final_trust_radius,
            },
        )

        # Keep the best point seen in this block (COBYLA may end on a worse probe).
        if best_loss <= self._best_loss:
            self._best_loss = best_loss
            self._parameters = best_parameters
        self._trust_radius = max(
            self.final_trust_radius, self._trust_radius * self.trust_decay
        )
        self._iteration += 1
        return OptimizerStep(
            parameters=self.parameters,
            loss=float(best_loss),
            num_evaluations=evaluations,
            iteration=self._iteration,
        )
