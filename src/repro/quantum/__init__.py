"""Quantum simulation substrate: Pauli algebra, circuits, and simulators."""

from .backend import (
    BackendResult,
    CliffordBackend,
    ExecutionBackend,
    ExecutionRequest,
    StatevectorBackend,
    make_execution_backend,
)
from .circuit import Instruction, Parameter, ParameterExpression, QuantumCircuit
from .clifford import CliffordSimulator, clifford_angle_index, is_clifford_angle
from .density_matrix import (
    DensityMatrix,
    DensityMatrixBackend,
    DensityMatrixSimulator,
    validate_density_matrix_qubits,
)
from .engine import CompiledPauliOperator, compiled_pauli_operator
from .exact import GroundStateResult, ground_state, ground_state_energy, pauli_to_sparse
from .gates import GATE_REGISTRY, gate_matrix
from .noise import (
    BACKEND_PROFILES,
    BackendNoiseProfile,
    KrausChannel,
    NoiseModel,
    amplitude_damping_channel,
    bit_flip_channel,
    dephasing_channel,
    depolarizing_channel,
    get_backend_profile,
    global_depolarizing_expectation,
    two_qubit_depolarizing_channel,
)
from .parallel import ParallelBackend, ParallelExecutionError, default_worker_count
from .pauli import PauliOperator, PauliString, pauli_matrix
from .pauli_propagation import PauliPropagationConfig, PauliPropagationSimulator
from .program import (
    CircuitProgram,
    clear_program_cache,
    compile_circuit_program,
    program_cache_stats,
    program_for_bound_circuit,
    set_program_cache_limit,
)
from .sampling import (
    BaseEstimator,
    DensityMatrixEstimator,
    EstimatorResult,
    ExactEstimator,
    SamplingEstimator,
    ShotNoiseEstimator,
)
from .statevector import Statevector, StatevectorSimulator

__all__ = [
    "BackendResult",
    "CliffordBackend",
    "ExecutionBackend",
    "ExecutionRequest",
    "StatevectorBackend",
    "make_execution_backend",
    "Instruction",
    "Parameter",
    "ParameterExpression",
    "QuantumCircuit",
    "CliffordSimulator",
    "clifford_angle_index",
    "is_clifford_angle",
    "CompiledPauliOperator",
    "compiled_pauli_operator",
    "DensityMatrix",
    "DensityMatrixBackend",
    "DensityMatrixSimulator",
    "validate_density_matrix_qubits",
    "GroundStateResult",
    "ground_state",
    "ground_state_energy",
    "pauli_to_sparse",
    "GATE_REGISTRY",
    "gate_matrix",
    "BACKEND_PROFILES",
    "BackendNoiseProfile",
    "KrausChannel",
    "NoiseModel",
    "amplitude_damping_channel",
    "bit_flip_channel",
    "dephasing_channel",
    "depolarizing_channel",
    "get_backend_profile",
    "global_depolarizing_expectation",
    "two_qubit_depolarizing_channel",
    "ParallelBackend",
    "ParallelExecutionError",
    "default_worker_count",
    "PauliOperator",
    "PauliString",
    "pauli_matrix",
    "PauliPropagationConfig",
    "PauliPropagationSimulator",
    "CircuitProgram",
    "clear_program_cache",
    "compile_circuit_program",
    "program_cache_stats",
    "program_for_bound_circuit",
    "set_program_cache_limit",
    "BaseEstimator",
    "DensityMatrixEstimator",
    "EstimatorResult",
    "ExactEstimator",
    "SamplingEstimator",
    "ShotNoiseEstimator",
    "Statevector",
    "StatevectorSimulator",
]
