"""Gate matrix library for the circuit IR and simulators.

Every gate used by the ansatz families in the paper is defined here:
single-qubit rotations (rx, ry, rz), fixed single-qubit gates (h, x, y, z, s,
sdg, t), and two-qubit entanglers (cx, cz, swap, rzz, rxx, ryy).  Matrices are
returned as NumPy arrays in the computational basis with qubit 0 as the most
significant bit of the index (matching :mod:`repro.quantum.statevector`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "GateDefinition",
    "GATE_REGISTRY",
    "gate_matrix",
    "batched_rotation_matrices",
    "is_parametric",
    "gate_num_qubits",
    "rx_matrix",
    "ry_matrix",
    "rz_matrix",
    "rzz_matrix",
    "rxx_matrix",
    "ryy_matrix",
]

_SQRT2 = math.sqrt(2.0)

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_H = np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_SDG = np.array([[1, 0], [0, -1j]], dtype=complex)
_T = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)

_CX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
_CZ = np.diag([1, 1, 1, -1]).astype(complex)
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def rx_matrix(theta: float) -> np.ndarray:
    """Rotation about X by angle theta."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry_matrix(theta: float) -> np.ndarray:
    """Rotation about Y by angle theta."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz_matrix(theta: float) -> np.ndarray:
    """Rotation about Z by angle theta."""
    phase = np.exp(-0.5j * theta)
    return np.array([[phase, 0], [0, np.conj(phase)]], dtype=complex)


def phase_matrix(theta: float) -> np.ndarray:
    """Phase gate diag(1, e^{i theta})."""
    return np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=complex)


def u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic single-qubit rotation U3(theta, phi, lambda)."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def rzz_matrix(theta: float) -> np.ndarray:
    """Two-qubit ZZ rotation exp(-i theta/2 Z⊗Z)."""
    phase = np.exp(-0.5j * theta)
    return np.diag([phase, np.conj(phase), np.conj(phase), phase]).astype(complex)


def rxx_matrix(theta: float) -> np.ndarray:
    """Two-qubit XX rotation exp(-i theta/2 X⊗X)."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    matrix = np.eye(4, dtype=complex) * c
    off = -1j * s
    matrix[0, 3] = off
    matrix[1, 2] = off
    matrix[2, 1] = off
    matrix[3, 0] = off
    return matrix


def ryy_matrix(theta: float) -> np.ndarray:
    """Two-qubit YY rotation exp(-i theta/2 Y⊗Y)."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    matrix = np.eye(4, dtype=complex) * c
    matrix[0, 3] = 1j * s
    matrix[1, 2] = -1j * s
    matrix[2, 1] = -1j * s
    matrix[3, 0] = 1j * s
    return matrix


def batched_rotation_matrices(name: str, thetas: np.ndarray) -> np.ndarray | None:
    """Stacked ``(batch, dim, dim)`` matrices for a single-angle rotation gate.

    Vectorized construction for the batched execution backend: one
    ``np.cos``/``np.sin``/``np.exp`` call over all angles instead of one
    scalar gate-matrix build per request.  The elementwise trig ufuncs agree
    bit-for-bit with the scalar builders, so the stacked matrices are
    interchangeable with ``gate_matrix`` per angle.  Returns ``None`` for
    gates without a vectorized builder (callers fall back to per-angle
    construction).
    """
    thetas = np.asarray(thetas, dtype=float).ravel()
    batch = thetas.size
    if name in ("rx", "ry", "rxx", "ryy"):
        c = np.cos(thetas / 2)
        s = np.sin(thetas / 2)
    if name == "rx":
        matrices = np.zeros((batch, 2, 2), dtype=complex)
        matrices[:, 0, 0] = matrices[:, 1, 1] = c
        matrices[:, 0, 1] = matrices[:, 1, 0] = -1j * s
        return matrices
    if name == "ry":
        matrices = np.zeros((batch, 2, 2), dtype=complex)
        matrices[:, 0, 0] = matrices[:, 1, 1] = c
        matrices[:, 0, 1] = -s
        matrices[:, 1, 0] = s
        return matrices
    if name == "rz":
        phase = np.exp(-0.5j * thetas)
        matrices = np.zeros((batch, 2, 2), dtype=complex)
        matrices[:, 0, 0] = phase
        matrices[:, 1, 1] = np.conj(phase)
        return matrices
    if name == "p":
        matrices = np.zeros((batch, 2, 2), dtype=complex)
        matrices[:, 0, 0] = 1.0
        matrices[:, 1, 1] = np.exp(1j * thetas)
        return matrices
    if name == "rzz":
        phase = np.exp(-0.5j * thetas)
        matrices = np.zeros((batch, 4, 4), dtype=complex)
        matrices[:, 0, 0] = matrices[:, 3, 3] = phase
        matrices[:, 1, 1] = matrices[:, 2, 2] = np.conj(phase)
        return matrices
    if name == "rxx":
        matrices = np.zeros((batch, 4, 4), dtype=complex)
        for diag in range(4):
            matrices[:, diag, diag] = c
        off = -1j * s
        matrices[:, 0, 3] = matrices[:, 1, 2] = off
        matrices[:, 2, 1] = matrices[:, 3, 0] = off
        return matrices
    if name == "ryy":
        matrices = np.zeros((batch, 4, 4), dtype=complex)
        for diag in range(4):
            matrices[:, diag, diag] = c
        matrices[:, 0, 3] = matrices[:, 3, 0] = 1j * s
        matrices[:, 1, 2] = matrices[:, 2, 1] = -1j * s
        return matrices
    return None


def crx_matrix(theta: float) -> np.ndarray:
    """Controlled-RX."""
    matrix = np.eye(4, dtype=complex)
    matrix[2:, 2:] = rx_matrix(theta)
    return matrix


@dataclass(frozen=True)
class GateDefinition:
    """Static description of a gate type."""

    name: str
    num_qubits: int
    num_params: int
    builder: object  # callable (*params) -> np.ndarray

    def matrix(self, *params: float) -> np.ndarray:
        if len(params) != self.num_params:
            raise ValueError(
                f"gate {self.name!r} expects {self.num_params} parameters, got {len(params)}"
            )
        if self.num_params == 0:
            return self.builder()  # type: ignore[operator]
        return self.builder(*params)  # type: ignore[operator]


GATE_REGISTRY: dict[str, GateDefinition] = {
    "i": GateDefinition("i", 1, 0, lambda: _I.copy()),
    "x": GateDefinition("x", 1, 0, lambda: _X.copy()),
    "y": GateDefinition("y", 1, 0, lambda: _Y.copy()),
    "z": GateDefinition("z", 1, 0, lambda: _Z.copy()),
    "h": GateDefinition("h", 1, 0, lambda: _H.copy()),
    "s": GateDefinition("s", 1, 0, lambda: _S.copy()),
    "sdg": GateDefinition("sdg", 1, 0, lambda: _SDG.copy()),
    "t": GateDefinition("t", 1, 0, lambda: _T.copy()),
    "sx": GateDefinition("sx", 1, 0, lambda: _SX.copy()),
    "rx": GateDefinition("rx", 1, 1, rx_matrix),
    "ry": GateDefinition("ry", 1, 1, ry_matrix),
    "rz": GateDefinition("rz", 1, 1, rz_matrix),
    "p": GateDefinition("p", 1, 1, phase_matrix),
    "u3": GateDefinition("u3", 1, 3, u3_matrix),
    "cx": GateDefinition("cx", 2, 0, lambda: _CX.copy()),
    "cz": GateDefinition("cz", 2, 0, lambda: _CZ.copy()),
    "swap": GateDefinition("swap", 2, 0, lambda: _SWAP.copy()),
    "rzz": GateDefinition("rzz", 2, 1, rzz_matrix),
    "rxx": GateDefinition("rxx", 2, 1, rxx_matrix),
    "ryy": GateDefinition("ryy", 2, 1, ryy_matrix),
    "crx": GateDefinition("crx", 2, 1, crx_matrix),
}


def gate_matrix(name: str, *params: float) -> np.ndarray:
    """Matrix for the named gate with the given parameter values."""
    try:
        definition = GATE_REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown gate {name!r}") from None
    return definition.matrix(*params)


def is_parametric(name: str) -> bool:
    """True if the named gate takes at least one parameter."""
    try:
        return GATE_REGISTRY[name].num_params > 0
    except KeyError:
        raise ValueError(f"unknown gate {name!r}") from None


def gate_num_qubits(name: str) -> int:
    """Number of qubits the named gate acts on."""
    try:
        return GATE_REGISTRY[name].num_qubits
    except KeyError:
        raise ValueError(f"unknown gate {name!r}") from None
