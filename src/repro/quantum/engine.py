"""Compile-once, vectorized Pauli expectation engine.

Every optimizer step of every TreeVQA cluster bottoms out in evaluating all
Pauli terms of a (mixed) Hamiltonian against a statevector.  Doing that one
term at a time with :meth:`Statevector.pauli_expectation` costs dozens of
small NumPy calls per term; this module instead compiles an operator **once**
into flat index/sign tables and evaluates **all terms in one vectorized
pass** over the 2^n amplitudes.

The compilation exploits the fact that every Pauli string acts on a
computational basis state |b> as

    P |b> = i^{n_Y} * (-1)^{popcount(b & phase_mask)} * |b XOR flip_mask>,

where ``flip_mask`` has a bit for every X/Y factor, ``phase_mask`` has a bit
for every Y/Z factor, and ``n_Y`` counts the Y factors.  The expectation value
of term ``t`` is therefore

    <psi|P_t|psi> = i^{n_Y_t} * sum_b conj(psi[b ^ f_t]) * s_t[b] * psi[b],

which, with the permutation table ``perm[t, b] = b ^ f_t`` and the sign table
``s_t[b]`` precomputed, is a gather, an elementwise product, and one BLAS
matrix-vector product for the whole operator.

Contract used throughout the code base:

* :meth:`CompiledPauliOperator.expectation_values` returns one value per term
  in the engine's term order (:attr:`CompiledPauliOperator.paulis`), which for
  an engine compiled from a :class:`~repro.quantum.pauli.PauliOperator` is the
  operator's insertion order — the same order
  :class:`~repro.quantum.sampling.EstimatorResult` uses for its term vector
  and :class:`~repro.core.mixed_hamiltonian.MixedHamiltonian` uses for its
  padded basis and coefficient matrix.
* Zero-coefficient terms are compiled and evaluated too: clusters reuse the
  measured term vector to recombine *individual* task energies whose
  coefficients need not vanish where the mixed coefficient does.

Use :func:`compiled_pauli_operator` to get a cached engine for an operator;
the cache lives on the operator instance and is invalidated when its terms
change (e.g. via :meth:`~repro.quantum.pauli.PauliOperator.chop`).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from .pauli import PauliOperator, PauliString

__all__ = ["CompiledPauliOperator", "compiled_pauli_operator", "pauli_evaluator"]

#: Compiling allocates O(num_terms * 2^n) tables; past this qubit count
#: :func:`pauli_evaluator` falls back to a per-term evaluator with the same
#: interface instead.
_MAX_COMPILED_QUBITS = 16

#: Table-size budget for the factory: beyond ``num_terms * 2^n`` elements the
#: compiled tables (and the per-call gather) stop paying for themselves in
#: memory, so :func:`pauli_evaluator` falls back to the per-term evaluator.
_MAX_COMPILED_ELEMENTS = 1 << 23


def _coerce_terms(
    paulis: Iterable[PauliString | str],
    coefficients: Sequence[complex] | np.ndarray | None,
    num_qubits: int | None,
) -> tuple[tuple[PauliString, ...], int, np.ndarray]:
    """Shared term/coefficient validation for both evaluator types."""
    terms = tuple(p if isinstance(p, PauliString) else PauliString(p) for p in paulis)
    if terms:
        num_qubits = terms[0].num_qubits
        for pauli in terms:
            if pauli.num_qubits != num_qubits:
                raise ValueError("all terms must share the qubit count")
    elif num_qubits is None:
        raise ValueError("num_qubits required for an empty term list")
    if coefficients is None:
        real_coefficients = np.zeros(len(terms))
    else:
        real_coefficients = np.asarray(coefficients, dtype=complex).real.astype(float)
        if real_coefficients.shape != (len(terms),):
            raise ValueError("coefficients must align with the term list")
    return terms, int(num_qubits), real_coefficients


def _as_amplitudes(state) -> np.ndarray:
    """Flat complex amplitude array from a Statevector or array-like."""
    data = getattr(state, "data", state)
    return np.asarray(data, dtype=complex).ravel()


def _popcount(values: np.ndarray) -> np.ndarray:
    """Per-element population count (NumPy >= 2 fast path, else bit folding)."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(values)
    counts = np.zeros_like(values)
    remaining = values.copy()
    while np.any(remaining):
        counts += remaining & 1
        remaining >>= 1
    return counts


class CompiledPauliOperator:
    """Precompiled bit-flip/sign tables for vectorized Pauli evaluation.

    Parameters
    ----------
    paulis:
        The Pauli terms, as :class:`PauliString` instances or labels.  Their
        order defines the term order of every returned vector.
    coefficients:
        Optional real coefficients aligned with ``paulis`` (imaginary parts
        are dropped, matching the Hermitian-observable convention used by the
        estimators).  Defaults to zeros when omitted; only
        :meth:`expectation` needs them.
    num_qubits:
        Required only when ``paulis`` is empty.
    """

    def __init__(
        self,
        paulis: Iterable[PauliString | str],
        coefficients: Sequence[complex] | np.ndarray | None = None,
        *,
        num_qubits: int | None = None,
    ) -> None:
        terms, num_qubits, real_coefficients = _coerce_terms(
            paulis, coefficients, num_qubits
        )
        if not 1 <= num_qubits <= _MAX_COMPILED_QUBITS:
            raise ValueError(
                f"num_qubits must be in [1, {_MAX_COMPILED_QUBITS}], got {num_qubits}"
            )
        self._paulis = terms
        self._num_qubits = num_qubits
        self._coefficients = real_coefficients

        dim = 1 << self._num_qubits
        num_terms = len(terms)
        flip_masks = np.zeros(num_terms, dtype=np.int64)
        phase_masks = np.zeros(num_terms, dtype=np.int64)
        y_counts = np.zeros(num_terms, dtype=np.int64)
        weights = np.zeros(num_terms, dtype=np.int64)
        for t, pauli in enumerate(terms):
            for qubit, op in enumerate(pauli.label):
                if op == "I":
                    continue
                bit = 1 << (self._num_qubits - 1 - qubit)  # qubit 0 is the MSB
                weights[t] += 1
                if op in ("X", "Y"):
                    flip_masks[t] |= bit
                if op in ("Y", "Z"):
                    phase_masks[t] |= bit
                if op == "Y":
                    y_counts[t] += 1

        indices = np.arange(dim, dtype=np.int64)
        self._indices = indices
        # perm[t, b] = b XOR flip_mask_t : where amplitude b is sent by term t.
        self._perm = indices[None, :] ^ flip_masks[:, None]
        # signs[t, b] = (-1)^popcount(b & phase_mask_t).
        parity = _popcount(indices[None, :] & phase_masks[:, None]) & 1
        self._signs = 1.0 - 2.0 * parity.astype(float)
        self._prefactors = np.power(1j, y_counts)
        self._weights = weights
        self._identity_mask = weights == 0
        self._num_measured_terms = int(
            np.count_nonzero(~self._identity_mask & (self._coefficients != 0))
        )

    # -- properties -----------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def num_terms(self) -> int:
        return len(self._paulis)

    @property
    def paulis(self) -> tuple[PauliString, ...]:
        """The compiled terms; every returned vector follows this order."""
        return self._paulis

    @property
    def coefficients(self) -> np.ndarray:
        """Real coefficients aligned with :attr:`paulis` (copy)."""
        return self._coefficients.copy()

    @property
    def weights(self) -> np.ndarray:
        """Number of non-identity factors per term (copy)."""
        return self._weights.copy()

    @property
    def identity_mask(self) -> np.ndarray:
        """Boolean mask of all-identity terms (copy)."""
        return self._identity_mask.copy()

    @property
    def num_measured_terms(self) -> int:
        """Terms that cost shots: non-identity with nonzero coefficient."""
        return self._num_measured_terms

    @classmethod
    def from_operator(cls, operator: PauliOperator) -> "CompiledPauliOperator":
        """Compile every term of ``operator`` (insertion order, zeros kept)."""
        paulis = operator.paulis()
        coefficients = [operator.coefficient(p) for p in paulis]
        return cls(paulis, coefficients, num_qubits=operator.num_qubits)

    # -- evaluation -----------------------------------------------------------

    def expectation_values(self, state) -> np.ndarray:
        """``<psi|P_t|psi>`` for every term, in one vectorized pass.

        ``state`` may be a :class:`~repro.quantum.statevector.Statevector` or
        any array-like of 2^n amplitudes.  Returns a float vector aligned with
        :attr:`paulis`.
        """
        psi = _as_amplitudes(state)
        if psi.size != self._indices.size:
            raise ValueError(
                f"state has {psi.size} amplitudes, engine expects {self._indices.size}"
            )
        if not self._paulis:
            return np.zeros(0)
        gathered = np.conj(psi)[self._perm] * self._signs
        return np.real(self._prefactors * (gathered @ psi))

    def expectation_values_batch(self, states) -> np.ndarray:
        """Term values for several states: shape ``(num_states, num_terms)``.

        ``states`` is an iterable of statevectors / amplitude arrays (or a 2-D
        array with one state per row).
        """
        rows = [_as_amplitudes(state) for state in states]
        out = np.zeros((len(rows), self.num_terms))
        for s, psi in enumerate(rows):
            out[s] = self.expectation_values(psi)
        return out

    def expectation(self, state) -> float:
        """``<psi|H|psi>`` using the compiled coefficients."""
        return float(self._coefficients @ self.expectation_values(state))

    def expectation_values_density(self, rho: np.ndarray) -> np.ndarray:
        """``tr(rho P_t)`` for every term, from a dense density matrix.

        Uses ``tr(rho P_t) = i^{n_Y} sum_b s_t[b] rho[b, b ^ f_t]`` — a single
        fancy-indexed gather per call instead of dense matrix products.
        """
        rho = np.asarray(rho, dtype=complex)
        dim = self._indices.size
        if rho.shape != (dim, dim):
            raise ValueError(f"density matrix must have shape ({dim}, {dim})")
        if not self._paulis:
            return np.zeros(0)
        gathered = rho[self._indices[None, :], self._perm] * self._signs
        return np.real(self._prefactors * gathered.sum(axis=1))


class _PerTermPauliEvaluator:
    """Per-term fallback with the :class:`CompiledPauliOperator` interface.

    Used above :data:`_MAX_COMPILED_QUBITS`, where the compiled O(terms × 2^n)
    tables would dwarf the statevector itself.  Evaluation loops over terms
    (each term is still a vectorized NumPy pass over the amplitudes).
    """

    def __init__(
        self,
        paulis: Iterable[PauliString | str],
        coefficients: Sequence[complex] | np.ndarray | None = None,
        *,
        num_qubits: int | None = None,
    ) -> None:
        terms, num_qubits, real_coefficients = _coerce_terms(
            paulis, coefficients, num_qubits
        )
        self._paulis = terms
        self._num_qubits = num_qubits
        self._coefficients = real_coefficients
        weights = np.array([p.weight for p in terms], dtype=np.int64)
        self._weights = weights
        self._identity_mask = weights == 0
        self._num_measured_terms = int(
            np.count_nonzero(~self._identity_mask & (self._coefficients != 0))
        )

    num_qubits = property(lambda self: self._num_qubits)
    num_terms = property(lambda self: len(self._paulis))
    paulis = property(lambda self: self._paulis)
    coefficients = property(lambda self: self._coefficients.copy())
    weights = property(lambda self: self._weights.copy())
    identity_mask = property(lambda self: self._identity_mask.copy())
    num_measured_terms = property(lambda self: self._num_measured_terms)

    def expectation_values(self, state) -> np.ndarray:
        from .statevector import apply_pauli_string  # deferred: cycle-free at call time

        psi = _as_amplitudes(state)
        if psi.size != 1 << self._num_qubits:
            raise ValueError(
                f"state has {psi.size} amplitudes, evaluator expects {1 << self._num_qubits}"
            )
        tensor = psi.reshape((2,) * self._num_qubits)
        return np.array(
            [
                np.vdot(tensor, apply_pauli_string(tensor, pauli.label)).real
                for pauli in self._paulis
            ]
        )

    def expectation_values_batch(self, states) -> np.ndarray:
        rows = [_as_amplitudes(state) for state in states]
        out = np.zeros((len(rows), self.num_terms))
        for s, psi in enumerate(rows):
            out[s] = self.expectation_values(psi)
        return out

    def expectation(self, state) -> float:
        return float(self._coefficients @ self.expectation_values(state))

    def expectation_values_density(self, rho: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=complex)
        return np.array(
            [np.trace(rho @ pauli.to_matrix()).real for pauli in self._paulis]
        )


def pauli_evaluator(
    paulis: Iterable[PauliString | str],
    coefficients: Sequence[complex] | np.ndarray | None = None,
    *,
    num_qubits: int | None = None,
) -> CompiledPauliOperator | _PerTermPauliEvaluator:
    """Best evaluator for a term list: compiled when feasible, per-term beyond.

    Falls back to the per-term evaluator past the qubit cap or when the
    compiled tables (``num_terms * 2^n`` elements) would exceed the memory
    budget.  Both returned types share the evaluation interface
    (``expectation_values`` / ``expectation_values_batch`` / ``expectation`` /
    ``expectation_values_density`` plus the term-order properties), so callers
    need not care which they got.
    """
    terms = tuple(p if isinstance(p, PauliString) else PauliString(p) for p in paulis)
    width = terms[0].num_qubits if terms else num_qubits
    if width is not None and (
        width > _MAX_COMPILED_QUBITS or len(terms) << width > _MAX_COMPILED_ELEMENTS
    ):
        return _PerTermPauliEvaluator(terms, coefficients, num_qubits=num_qubits)
    return CompiledPauliOperator(terms, coefficients, num_qubits=num_qubits)


def compiled_pauli_operator(
    operator: PauliOperator,
) -> CompiledPauliOperator | _PerTermPauliEvaluator:
    """Cached expectation evaluator for a :class:`PauliOperator`.

    Returns a :class:`CompiledPauliOperator` (or the per-term fallback above
    the compile cap — same interface).  The evaluator is memoised on the
    operator instance, keyed by a fingerprint of its terms, so repeated
    evaluations (every objective call of every cluster step) pay the
    compilation cost only once.  In-place mutation (``chop``) changes the
    fingerprint and triggers a transparent recompile.
    """
    key = (operator.num_qubits, tuple((p.label, c) for p, c in operator.items()))
    cached = operator.__dict__.get("_compiled_engine_cache")
    if cached is not None and cached[0] == key:
        return cached[1]
    coefficients = [operator.coefficient(p) for p in operator.paulis()]
    engine = pauli_evaluator(
        operator.paulis(), coefficients, num_qubits=operator.num_qubits
    )
    operator.__dict__["_compiled_engine_cache"] = (key, engine)
    return engine
