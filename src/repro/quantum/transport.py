"""Worker transport: the wire protocol of multi-process execution, behind an
interface.

:class:`~repro.quantum.parallel.ParallelBackend` used to own its pipes and
processes directly, which welded three separable concerns together: *how* a
worker is reached (spawn a local process over a duplex pipe), *what* travels
over the wire (the encoded-request / reply protocol), and *what happens when
the wire fails* (retry, reroute, fall back).  This module extracts the first
two behind two small interfaces so the third can be reasoned about — and
tested — independently of any real process:

* :class:`WorkerEndpoint` — one spawned worker: ``send`` a protocol message,
  ``recv`` a reply with an optional deadline, ``alive`` health check,
  ``kill`` for immediate reaping, ``close`` for graceful shutdown (with
  SIGKILL escalation, so no zombie outlives the pool).
* :class:`WorkerTransport` — an endpoint factory: ``spawn(index,
  inner_factory)``.  :class:`LocalProcessTransport` is the default and
  preserves the pre-extraction behavior bit-for-bit; a TCP/RPC transport to
  remote machines would implement the same five methods.
* :class:`FaultInjectingTransport` — a wrapper transport that injects faults
  *deterministically by schedule* (crash before/after a send, hang on a
  recv, garbled reply, slow reply, spawn failure), so the dispatch loop's
  failure handling is exercised by exhaustive fault matrices instead of
  hand-timed ``kill()`` races.

Failure taxonomy
----------------
Endpoints translate every wire-level failure into :class:`TransportError`
(with :class:`DeadlineExceeded` as the reaped-a-hung-worker subclass), which
is the *retryable* category: the dispatcher may respawn the endpoint and
reroute the shard, because the failure says nothing about the requests
themselves.  Everything else — a pickling error from an unserializable
payload, a worker-side ``("error", ...)`` reply — propagates untranslated:
those are deterministic properties of the payload, and retrying them on a
fresh worker would fail identically.

Locking contract (enforced by reprolint REPRO003)
-------------------------------------------------
Transport implementations must never hold a lifecycle lock across a blocking
``recv``: a hung worker would then deadlock ``close()`` / health checks from
other threads, turning a degraded shard into a stuck process.  Deadlines are
implemented with ``poll(timeout)`` *outside* any lock; serialization of
whole dispatches belongs to the caller (:class:`ParallelBackend`'s lock),
never to the endpoint.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from .backend import ExecutionBackend, ExecutionRequest
from .statevector import Statevector

__all__ = [
    "DeadlineExceeded",
    "Fault",
    "FaultInjectingTransport",
    "LocalProcessTransport",
    "TransportError",
    "WorkerEndpoint",
    "WorkerTransport",
]


class TransportError(RuntimeError):
    """A worker endpoint failed at the wire level (died, unreachable,
    protocol violation).  Retryable: says nothing about the requests
    themselves, so the dispatcher may respawn the endpoint and reroute."""


class DeadlineExceeded(TransportError):
    """No reply arrived within the configured deadline — the worker is hung
    (or too slow to trust) and should be reaped and replaced."""


# -- wire protocol ----------------------------------------------------------------
#
# Parent -> worker:  ("run", job_id, [encoded request, ...], need_states)
#                    ("close",)
# Worker -> parent:  ("ok", job_id, [BackendResult, ...])
#                    ("error", job_id, formatted_traceback)
#
# Requests are encoded rather than pickled verbatim so the expensive,
# reusable parts — the compiled CircuitProgram and the measured PauliOperator
# (hundreds of terms for molecular workloads, identical across a cluster's
# requests and rounds) — cross the boundary once per worker (later dispatches
# carry only a small integer id), and so per-request extras that need not
# cross (tags, memoised resolved circuits) stay behind.  The parent-side
# encoder (and its per-worker shipped-id bookkeeping) lives in
# :mod:`repro.quantum.parallel`; the decode side below runs in the worker.

#: Encoded-request kind markers.
PROGRAM_KIND = "p"
CIRCUIT_KIND = "c"


def decode_request(
    encoded: tuple, programs: dict[int, object], operators: dict[int, object]
) -> ExecutionRequest:
    """Rebuild an :class:`ExecutionRequest` on the worker side, caching newly
    shipped programs/operators (the worker's warm caches)."""
    kind, payload, operator_ref, initial, bitstring = encoded
    operator_id, operator = operator_ref
    if operator is not None:
        operators[operator_id] = operator
    initial_state = None if initial is None else Statevector(initial)
    if kind == PROGRAM_KIND:
        program_id, program, parameters = payload
        if program is not None:
            programs[program_id] = program
        return ExecutionRequest(
            circuit=None,
            operator=operators[operator_id],
            initial_state=initial_state,
            initial_bitstring=bitstring,
            program=programs[program_id],
            parameters=parameters,
        )
    return ExecutionRequest(
        circuit=payload,
        operator=operators[operator_id],
        initial_state=initial_state,
        initial_bitstring=bitstring,
    )


def worker_main(connection, inner_factory: Callable[[], ExecutionBackend]) -> None:
    """Worker process loop: build the inner backend once, serve shards.

    The backend instance and the decoded-program cache persist for the life
    of the worker, so every dispatch after the first reuses the warm program
    tapes, compiled Pauli engines, and any backend-internal caches (e.g. the
    density-matrix backend's superoperator cache).
    """
    # Deferred: BackendResult/replace are only needed to strip replies, and
    # importing here keeps the module import graph identical for both sides.
    from dataclasses import replace

    backend = inner_factory()
    programs: dict[int, object] = {}
    operators: dict[int, object] = {}
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if message[0] == "close":
            break
        _, job_id, encoded_requests, need_states = message
        try:
            requests = [
                decode_request(item, programs, operators)
                for item in encoded_requests
            ]
            results = backend.run_batch(requests, need_states=need_states)
            # term_basis is derivable parent-side from each request's
            # operator (the contract pins it to the operator's term order),
            # so strip it from the reply — for a 100+-term operator it would
            # otherwise re-pickle every PauliString per request per round,
            # defeating the once-per-worker shipping of the request leg.
            reply = ("ok", job_id, [replace(r, term_basis=()) for r in results])
        except Exception:
            reply = ("error", job_id, traceback.format_exc())
        try:
            connection.send(reply)
        except (BrokenPipeError, OSError):  # parent went away; nothing to do
            break
    connection.close()


# -- the interface ----------------------------------------------------------------


class WorkerEndpoint:
    """One spawned worker, reachable over some wire.

    Implementations translate wire-level failures into
    :class:`TransportError` / :class:`DeadlineExceeded` and let payload-level
    exceptions (pickling errors) propagate untranslated — the dispatcher
    keys retry-vs-fallback decisions off that distinction.
    """

    def send(self, message: tuple) -> None:
        """Ship one protocol message; raises :class:`TransportError` when the
        worker is unreachable."""
        raise NotImplementedError

    def recv(self, timeout_s: float | None = None) -> tuple:
        """Receive the next reply, waiting at most ``timeout_s`` seconds
        (``None`` blocks indefinitely — the pre-deadline behavior).  Raises
        :class:`DeadlineExceeded` on timeout, :class:`TransportError` when
        the worker died mid-reply."""
        raise NotImplementedError

    def alive(self) -> bool:
        """Health check: can this endpoint still be dispatched to?"""
        raise NotImplementedError

    def kill(self) -> None:
        """Immediately reap the worker (no graceful close message); used when
        the wire state is no longer trusted — a hung, garbled, or crashed
        endpoint may hold a stale reply that must never be read."""
        raise NotImplementedError

    def close(self) -> None:
        """Graceful shutdown: ask the worker to exit, then escalate until the
        process is provably gone (no zombie may outlive the pool)."""
        raise NotImplementedError

    @property
    def exitcode(self) -> int | None:
        """The worker's exit code once dead (``None`` while alive); used for
        crash diagnostics only."""
        return None


class WorkerTransport:
    """Endpoint factory: everything the dispatcher needs to (re)build a pool."""

    #: Human-readable transport name for diagnostics.
    name = "abstract"

    def spawn(
        self, index: int, inner_factory: Callable[[], ExecutionBackend]
    ) -> WorkerEndpoint:
        """Spawn worker ``index`` and return its endpoint.  Raises
        :class:`TransportError` when the worker cannot be brought up (the
        dispatcher treats that like any other retryable wire failure)."""
        raise NotImplementedError


# -- the default implementation: local processes over pipes ------------------------


class LocalProcessEndpoint(WorkerEndpoint):
    """A daemonic local process served over a duplex pipe (the PR 5 wire)."""

    #: Grace periods of the close() escalation ladder (close message →
    #: SIGTERM → SIGKILL); class attributes so tests can shorten them.
    _GRACEFUL_JOIN_S = 5.0
    _TERMINATE_JOIN_S = 1.0

    def __init__(self, process, connection) -> None:
        self._process = process
        self._connection = connection
        self._closed = False

    def send(self, message: tuple) -> None:
        try:
            self._connection.send(message)
        except (BrokenPipeError, EOFError, ConnectionError, OSError) as error:
            raise TransportError(self._diagnose(error)) from error
        # Anything else (a pickling TypeError from an unserializable payload)
        # propagates untranslated: Connection.send pickles the whole message
        # before writing a single byte, so the pipe is still clean and the
        # worker still healthy — a deterministic payload problem, not a wire
        # failure.

    def recv(self, timeout_s: float | None = None) -> tuple:
        try:
            if not self._connection.poll(timeout_s):
                raise DeadlineExceeded(
                    f"worker pid {self._process.pid} sent no reply within "
                    f"{timeout_s:.3g}s (hung or overloaded); reaping it and "
                    "rerouting its shard"
                )
            return self._connection.recv()
        except DeadlineExceeded:
            raise
        except (EOFError, BrokenPipeError, ConnectionError, OSError) as error:
            raise TransportError(self._diagnose(error)) from error

    def alive(self) -> bool:
        return not self._closed and self._process.is_alive()

    def kill(self) -> None:
        self._closed = True
        try:
            self._connection.close()
        except OSError:
            pass
        if self._process.is_alive():
            self._process.kill()
        self._process.join()

    def close(self) -> None:
        if self._closed:
            self.kill()  # idempotent: join() again is a no-op on a dead process
            return
        self._closed = True
        try:
            self._connection.send(("close",))
        except (BrokenPipeError, OSError):
            pass
        try:
            self._connection.close()
        except OSError:
            pass
        self._process.join(timeout=self._GRACEFUL_JOIN_S)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=self._TERMINATE_JOIN_S)
        if self._process.is_alive():
            # SIGTERM ignored or blocked (native code, a masked handler):
            # escalate to SIGKILL and join unconditionally — a zombie that
            # outlives the pool would leak a process per close/respawn cycle.
            self._process.kill()
        self._process.join()

    @property
    def exitcode(self) -> int | None:
        return self._process.exitcode

    def _diagnose(self, error: Exception) -> str:
        if not self._process.is_alive():
            return (
                f"worker pid {self._process.pid} died "
                f"(exit code {self._process.exitcode}); common causes are "
                "out-of-memory kills (lower execution_workers or "
                "max_batch_size) and crashed native code"
            )
        return f"worker pipe failed ({error!r})"


class LocalProcessTransport(WorkerTransport):
    """The default transport: one daemonic process per worker, duplex pipes.

    Parameters:
        start_method: ``multiprocessing`` start method (default: ``"fork"``
            where available, else ``"spawn"``).
    """

    name = "local-process"

    def __init__(self, start_method: str | None = None) -> None:
        self._start_method = start_method

    def spawn(
        self, index: int, inner_factory: Callable[[], ExecutionBackend]
    ) -> WorkerEndpoint:
        method = self._start_method
        if method is None:
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        try:
            context = multiprocessing.get_context(method)
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=worker_main,
                args=(child_end, inner_factory),
                name=f"repro-exec-worker-{index}",
                daemon=True,
            )
            process.start()
            child_end.close()
        except Exception as error:
            raise TransportError(f"worker {index} failed to spawn ({error!r})") from error
        return LocalProcessEndpoint(process, parent_end)


# -- deterministic fault injection -------------------------------------------------


@dataclass(frozen=True)
class Fault:
    """One scheduled fault on one worker slot.

    ``nth`` is the 1-based occurrence of ``op`` on that slot, counted across
    endpoint generations (a respawned worker continues its slot's count), so
    "crash worker 0's second send" is a stable coordinate no matter how the
    dispatcher reacts.  ``every`` repeats the fault periodically from ``nth``
    onward (``nth=1, every=2`` fires on occurrences 1, 3, 5, ...).

    Kinds by op:

    * ``op="spawn"`` — ``"crash"``: the spawn itself fails.
    * ``op="send"`` — ``"crash_before_send"``: the worker dies before the
      message lands (send raises); ``"crash_after_send"``: the worker
      receives the shard but dies before replying (send succeeds, the next
      recv fails).
    * ``op="recv"`` — ``"hang"``: no reply ever arrives (recv blocks the
      full deadline, then raises :class:`DeadlineExceeded`); ``"crash"``:
      the worker dies mid-reply; ``"garbled"``: a structurally invalid reply
      with a mismatched job id is delivered; ``"slow"``: the real reply
      arrives after ``delay_s`` extra seconds.
    """

    worker: int
    op: str
    kind: str
    nth: int = 1
    every: int | None = None
    delay_s: float = 0.0

    _KINDS = {
        "spawn": ("crash",),
        "send": ("crash_before_send", "crash_after_send"),
        "recv": ("hang", "crash", "garbled", "slow"),
    }

    def __post_init__(self) -> None:
        if self.op not in self._KINDS:
            raise ValueError(f"unknown fault op {self.op!r}; choose from {sorted(self._KINDS)}")
        if self.kind not in self._KINDS[self.op]:
            raise ValueError(
                f"fault kind {self.kind!r} is invalid for op {self.op!r}; "
                f"choose from {self._KINDS[self.op]}"
            )
        if self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if self.every is not None and self.every < 1:
            raise ValueError("every must be >= 1 when set")

    def fires_at(self, count: int) -> bool:
        """Whether this fault fires on the ``count``-th occurrence of its op."""
        if count == self.nth:
            return True
        if self.every is None:
            return False
        return count > self.nth and (count - self.nth) % self.every == 0


class FaultInjectingTransport(WorkerTransport):
    """Wrap a real transport and inject faults deterministically by schedule.

    The wrapped transport does all real work — spawned workers are real and
    healthy paths are bit-identical to the inner transport — while scheduled
    operations are sabotaged at the exact (worker, op, occurrence)
    coordinates of the :class:`Fault` list.  ``injected`` logs every fired
    fault as ``(worker, op, kind, occurrence)`` so tests can assert the
    schedule actually executed.
    """

    def __init__(self, inner: WorkerTransport, faults: Sequence[Fault]) -> None:
        self._inner = inner
        self._faults = list(faults)
        self._counts: dict[tuple[int, str], int] = {}
        self.injected: list[tuple[int, str, str, int]] = []
        self.name = f"fault-injecting({inner.name})"

    def _next(self, worker: int, op: str) -> Fault | None:
        """Advance the (worker, op) occurrence counter; the firing fault, if any."""
        count = self._counts.get((worker, op), 0) + 1
        self._counts[(worker, op)] = count
        for fault in self._faults:
            if fault.worker == worker and fault.op == op and fault.fires_at(count):
                self.injected.append((worker, op, fault.kind, count))
                return fault
        return None

    def spawn(
        self, index: int, inner_factory: Callable[[], ExecutionBackend]
    ) -> WorkerEndpoint:
        fault = self._next(index, "spawn")
        if fault is not None:
            raise TransportError(f"injected fault: worker {index} crashed during spawn")
        return _FaultEndpoint(self, index, self._inner.spawn(index, inner_factory))


class _FaultEndpoint(WorkerEndpoint):
    """Endpoint wrapper applying the transport's send/recv fault schedule."""

    def __init__(
        self, transport: FaultInjectingTransport, index: int, inner: WorkerEndpoint
    ) -> None:
        self._transport = transport
        self._index = index
        self._inner = inner

    def send(self, message: tuple) -> None:
        fault = self._transport._next(self._index, "send")
        if fault is not None and fault.kind == "crash_before_send":
            # The worker dies with the message still unsent: the parent sees
            # the send fail and nothing ever reaches the inner backend.
            self._inner.kill()
            raise TransportError(
                f"injected fault: worker {self._index} crashed before send"
            )
        if fault is not None and fault.kind == "crash_after_send":
            # The shard is swallowed: the worker dies after accepting the
            # message but before executing anything, so the parent's send
            # succeeds and its next recv finds a dead endpoint.  Killing the
            # real process before forwarding keeps this deterministic — no
            # race against a worker fast enough to reply first.
            self._inner.kill()
            return
        self._inner.send(message)

    def recv(self, timeout_s: float | None = None) -> tuple:
        fault = self._transport._next(self._index, "recv")
        if fault is None:
            return self._inner.recv(timeout_s)
        if fault.kind == "hang":
            if timeout_s is None:
                # Surface the would-be deadlock loudly instead of hanging the
                # test process forever: a hang fault is only meaningful when
                # a recv deadline (worker_timeout_s) is configured.
                raise TransportError(
                    f"injected fault: worker {self._index} hung on recv with no "
                    "deadline configured — this dispatch would deadlock; set "
                    "worker_timeout_s"
                )
            time.sleep(timeout_s)
            raise DeadlineExceeded(
                f"injected fault: worker {self._index} sent no reply within "
                f"{timeout_s:.3g}s (hung)"
            )
        if fault.kind == "crash":
            self._inner.kill()
            raise TransportError(
                f"injected fault: worker {self._index} crashed during recv"
            )
        if fault.kind == "garbled":
            # A structurally valid tuple with an impossible job id: the
            # dispatcher's reply validation must catch it and distrust the
            # endpoint (its real reply, if any, is stale in the pipe).
            return ("ok", -1, [])
        time.sleep(fault.delay_s)  # "slow"
        return self._inner.recv(timeout_s)

    def alive(self) -> bool:
        return self._inner.alive()

    def kill(self) -> None:
        self._inner.kill()

    def close(self) -> None:
        self._inner.close()

    @property
    def exitcode(self) -> int | None:
        return self._inner.exitcode
