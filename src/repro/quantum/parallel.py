"""Multi-process execution sharding: a worker-pool wrapper around any backend.

Every :class:`~repro.quantum.backend.ExecutionBackend` dispatch so far ran on
a single core.  A TreeVQA round, however, is a bag of *independent* circuit
executions, and the compiled :class:`~repro.quantum.program.CircuitProgram`
tape is exactly the kind of array program that shards cleanly: requests
sharing a program fingerprint can be stacked on any worker, and the merged
results depend only on each request's own (program, parameter-row, initial
state) triple — never on which worker ran it or in what order shards
completed.

:class:`ParallelBackend` composes rather than replaces: it wraps a factory
for any inner backend (statevector, Clifford-routed, density-matrix, or a
custom one), shards each ``run_batch`` across a persistent pool of worker
endpoints spawned through a :class:`~repro.quantum.transport.WorkerTransport`
(local processes by default), executes every shard through the inner
backend's own ``run_batch``, and merges the
:class:`~repro.quantum.backend.BackendResult` payloads back in the original
request order.

Bit-identity contract (extends the batching invariant)
------------------------------------------------------
Results are **bit-identical** to in-process dispatch for any worker count —
``workers=1`` is the exact degenerate case — because

* the backend layer is deterministic: every shipped backend computes exact
  expectation values (the density-matrix backend's noisy physics is applied
  through deterministic superoperators and analytic readout folding — no
  RNG lives below the estimator layer);
* per-request execution is independent of batch composition (the PR 2
  invariant), so re-grouping requests into per-worker shards cannot change
  any request's amplitudes;
* results are merged by original request index, never by completion order.

The same three facts extend the contract to *partial failure*: a rerouted
shard re-executes the same (program, parameter-row, initial state) triples
on a fresh worker — or, as the last resort, in-process — so any
interleaving of crashes, hangs, and retries merges to the same payloads.

Shot-noise and sampling randomness belong to the *estimator* layer, which
never crosses a process boundary: the round scheduler converts backend
payloads through the shared estimator in strict consumption order in the
parent process, so per-request noise streams are derived per request, not
per worker, and noisy trajectories are also worker-count independent.  A
sampling round (``need_states=True``) ships each request's prepared
amplitudes back parent-ward (counted as ``states_shipped``); the
measurement plans, uniform draws, and term-value evaluation all stay in the
parent, which is what extends the bit-identity guarantee to sampled term
vectors at every worker count.

Sharding and the warm per-worker program cache
----------------------------------------------
Requests are ordered program-group-major (fingerprint groups in first-seen
order, then bound-circuit requests) and split into near-equal contiguous
shards, so same-structure requests land together and each worker's program
cache stays warm; bound-circuit requests are balanced round-robin style onto
the least-loaded workers.  A program is pickled to a given worker only once
— later dispatches send a small integer reference — and the shipping
counters are surfaced as :meth:`ParallelBackend.worker_cache_stats` (the
controller folds them into ``metadata["program_cache"]["workers"]``).

Failure semantics (shard-granular)
----------------------------------
The failure domain is one worker's *shard*, never the batch:

* An exception raised *inside* a worker (an invalid request, an oversized
  density matrix, ...) is re-raised in the parent as
  :class:`ParallelExecutionError` carrying the remote traceback — the same
  control flow in-process execution would have produced.  Deterministic, so
  never retried; the pool survives intact.
* A worker endpoint *failing* (process died, pipe broke, reply garbled, or
  — with ``worker_timeout_s`` set — no reply within the deadline) degrades
  only its own shard: every healthy worker's completed replies are kept,
  the failed endpoint is reaped and respawned, and the failed shard is
  re-dispatched to the fresh worker with exponential backoff, up to
  ``max_shard_retries`` attempts.  Each respawn warns actionably.
* Only when a shard exhausts its retry budget do *those requests* (and only
  those) execute in-process through the wrapper's own inner backend —
  ``fallback_batches`` counts batches where that last resort fired.
* An unpicklable payload is deterministic, not a wire failure: its shard
  goes straight to in-process execution (pickling happens before any bytes
  hit the pipe, so the pool stays healthy for every other shard).

A hung-but-alive worker is indistinguishable from a slow one without a
deadline, so ``recv`` blocks indefinitely by default (the pre-deadline
behavior); set ``worker_timeout_s`` to bound every reply wait and convert
hangs into reap-respawn-reroute events.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from .backend import BackendResult, ExecutionBackend, ExecutionRequest
from .engine import compiled_pauli_operator
from .transport import (
    CIRCUIT_KIND,
    PROGRAM_KIND,
    DeadlineExceeded,
    LocalProcessTransport,
    TransportError,
    WorkerEndpoint,
    WorkerTransport,
)

__all__ = [
    "ParallelBackend",
    "ParallelExecutionError",
    "default_worker_count",
]


class ParallelExecutionError(RuntimeError):
    """An execution request failed inside a worker process.

    The message carries the worker-side traceback; the failure semantics
    match raising from an in-process ``run_batch`` call.
    """


def default_worker_count() -> int:
    """Worker count used when none is given: one per *available* CPU.

    Prefers the scheduling affinity mask (which cgroup limits and
    ``taskset`` restrict) over ``os.cpu_count()`` (which reports the whole
    machine), so the default pool never oversubscribes a CPU-limited
    container.
    """
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        # reprolint: disable=REPRO003 -- non-Linux fallback; sched_getaffinity is unavailable
        return max(os.cpu_count() or 1, 1)


def _operator_fingerprint(operator) -> tuple:
    """Value key for operator interning (same shape the engine cache uses)."""
    return (operator.num_qubits, tuple((p.label, c) for p, c in operator.items()))


@dataclass
class _Worker:
    """Parent-side handle of one pool slot (endpoint generations come and go)."""

    index: int
    endpoint: WorkerEndpoint | None = None
    #: Program ids already pickled to the *current* endpoint (its cache
    #: mirror; reset on respawn — a fresh worker has cold caches).
    shipped: set[int] = field(default_factory=set)
    #: Operator ids already pickled to the current endpoint.
    shipped_operators: set[int] = field(default_factory=set)
    #: Endpoints spawned for this slot so far (respawns = generation - 1).
    generation: int = 0
    #: Shard dispatches sent to this slot.
    dispatches: int = 0
    #: Cumulative seconds spent waiting on this slot's replies.
    latency_s: float = 0.0

    @property
    def respawns(self) -> int:
        return max(self.generation - 1, 0)


@dataclass
class _Shard:
    """One worker slot's share of a batch, with its retry state."""

    worker: int
    indices: list[int]
    attempts: int = 0


class ParallelBackend(ExecutionBackend):
    """Shard batches of execution requests across a pool of worker processes.

    Parameters:
        inner_factory: Zero-argument picklable callable building the backend
            each worker (and the in-process fallback) executes through.  Use
            e.g. ``functools.partial(make_execution_backend, "statevector")``;
            under the default ``fork`` start method any callable works.
        workers: Pool size (≥ 1; default: one per CPU).  ``workers=1`` is the
            exact degenerate case — same results, one worker process.
        start_method: ``multiprocessing`` start method for the default
            :class:`~repro.quantum.transport.LocalProcessTransport` (default:
            ``"fork"`` where available, else ``"spawn"``).  Ignored when an
            explicit ``transport`` is given.
        transport: The :class:`~repro.quantum.transport.WorkerTransport`
            endpoints spawn through (default: local processes).  Tests inject
            deterministic faults by wrapping it in a
            :class:`~repro.quantum.transport.FaultInjectingTransport`.
        worker_timeout_s: Deadline for each shard reply (> 0 when set).
            ``None`` (default) blocks indefinitely — bit-for-bit the
            pre-deadline behavior; a value converts a hung worker into a
            reap-respawn-reroute event within that many seconds per wait.
        max_shard_retries: How many times a failed shard is re-dispatched to
            a respawned worker before its requests fall back to in-process
            execution (default 2; 0 disables rerouting).
        retry_backoff_s: Base of the exponential backoff between retry
            attempts (default 0.05; attempt ``k`` sleeps ``base * 2**(k-1)``
            seconds).  Keep 0 in deterministic-schedule tests.

    The pool spawns lazily on the first ``run_batch`` and must be released
    with :meth:`close` (or by using the backend as a context manager); the
    controller closes its backend at the end of ``run()``.  Workers are
    daemonic, so leaked pools die with the interpreter.
    """

    def __init__(
        self,
        inner_factory: Callable[[], ExecutionBackend],
        *,
        workers: int | None = None,
        start_method: str | None = None,
        transport: WorkerTransport | None = None,
        worker_timeout_s: float | None = None,
        max_shard_retries: int = 2,
        retry_backoff_s: float = 0.05,
    ) -> None:
        resolved = default_worker_count() if workers is None else int(workers)
        if resolved < 1:
            raise ValueError("workers must be >= 1")
        if worker_timeout_s is not None and not worker_timeout_s > 0:
            raise ValueError("worker_timeout_s must be > 0 when set")
        if max_shard_retries < 0:
            raise ValueError("max_shard_retries must be >= 0")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        self._inner_factory = inner_factory
        #: Local template instance: serves the scheduler's capability probing
        #: (name, provides_states, noise_model) and in-process fallback.
        self._inner = inner_factory()
        #: Serializes pool lifecycle and dispatch across threads: a shared
        #: pool (the job service multiplexes many controllers onto one
        #: ParallelBackend) may be dispatched from an executor thread while
        #: another thread calls close() — without the lock, a close landing
        #: mid-dispatch would orphan in-flight shard replies in the pipes
        #: and desynchronise every later dispatch.  Reentrant for historical
        #: callers; endpoint recv itself never blocks under any *other* lock
        #: (the transport contract), so close() always gets its turn at the
        #: next dispatch boundary.  Dispatches serialize; that cannot change
        #: results (per-request execution is deterministic and
        #: order-independent).
        self._lock = threading.RLock()
        self.workers = resolved
        self.transport = (
            transport if transport is not None else LocalProcessTransport(start_method)
        )
        self.worker_timeout_s = worker_timeout_s
        self.max_shard_retries = max_shard_retries
        self.retry_backoff_s = retry_backoff_s
        self._pool: list[_Worker] | None = None
        self._job_counter = 0
        #: fingerprint -> small pool-wide integer id (fingerprints are large
        #: structural tuples; only the id crosses the process boundary after
        #: the first shipment).
        self._program_ids: dict[tuple, int] = {}
        #: operator value-fingerprint -> wire id (same interning scheme).
        self._operator_ids: dict[tuple, int] = {}
        self.batches_run = 0
        self.requests_run = 0
        #: Per-worker shard dispatches performed.
        self.shards_dispatched = 0
        #: Batches in which at least one shard exhausted its retry budget and
        #: executed in-process (the last resort).
        self.fallback_batches = 0
        #: Shards that exhausted the retry budget (or were unpicklable) and
        #: executed in-process.
        self.fallback_shards = 0
        #: Failed-shard re-dispatches to a respawned worker.
        self.shard_retries = 0
        #: Worker endpoints reaped and replaced after a wire failure.
        self.worker_respawns = 0
        #: Reply waits that exceeded ``worker_timeout_s`` (hung workers reaped).
        self.deadline_timeouts = 0
        #: Times a program was pickled to some worker.
        self.programs_shipped = 0
        #: Program-path requests served from a worker's warm program cache.
        self.program_reuses = 0
        #: Prepared states shipped back from workers (``need_states``
        #: dispatches, i.e. sampling rounds): one 2^n amplitude array per
        #: request crosses the boundary parent-ward.  Measurement *plans*
        #: never ship — sampling randomness and plan evaluation live
        #: entirely in the parent's estimator layer.
        self.states_shipped = 0

    # -- scheduler-facing metadata (delegated to the inner template) ------------

    @property
    def name(self) -> str:  # type: ignore[override]
        """The *inner* backend's name: estimator/backend pairing (e.g. the
        density-matrix estimator's ``requires_backend`` pin) must see through
        the wrapper."""
        return self._inner.name

    @property
    def provides_states(self) -> bool:  # type: ignore[override]
        return getattr(self._inner, "provides_states", True)

    @property
    def accepts_propagation_config(self) -> bool:
        """Whether the wrapped backend is propagation-capable — the
        controller's §5.3 selection keys off this to stay state-free."""
        return getattr(self._inner, "accepts_propagation_config", False)

    @property
    def noise_model(self):
        """The inner backend's noise model (None for unitary backends) — the
        scheduler's exactness/pairing checks apply to the wrapped physics."""
        return getattr(self._inner, "noise_model", None)

    @property
    def inner(self) -> ExecutionBackend:
        """The local inner template instance (also the fallback executor)."""
        return self._inner

    # -- lifecycle --------------------------------------------------------------

    def _ensure_pool(self) -> list[_Worker]:
        """The slot table (endpoints spawn lazily, per slot, at dispatch)."""
        if self._pool is None:
            self._pool = [_Worker(index=index) for index in range(self.workers)]
        return self._pool

    def _ensure_endpoint(self, worker: _Worker) -> WorkerEndpoint:
        """The slot's live endpoint, (re)spawning through the transport.

        Raises :class:`~repro.quantum.transport.TransportError` when the
        spawn itself fails — the caller treats that like any other wire
        failure of the shard headed for this slot.
        """
        if worker.endpoint is not None and worker.endpoint.alive():
            return worker.endpoint
        if worker.endpoint is not None:
            # The health check caught a worker that died *between* dispatches
            # (no shard was in flight, so nothing needs rerouting) — respawn
            # it here, but say so: silent worker churn would hide e.g. an
            # OOM-killer picking workers off one by one.
            warnings.warn(
                f"worker {worker.index} died between dispatches "
                f"(exit code {worker.endpoint.exitcode}); respawning it "
                "(results are unaffected — the pool had no shard in flight)",
                RuntimeWarning,
                stacklevel=2,
            )
            self._retire_endpoint(worker)
        endpoint = self.transport.spawn(worker.index, self._inner_factory)
        worker.endpoint = endpoint
        worker.generation += 1
        if worker.generation > 1:
            self.worker_respawns += 1
        return endpoint

    def _retire_endpoint(self, worker: _Worker) -> None:
        """Reap a distrusted endpoint and forget its warm-cache mirror.

        Any stale reply in its pipe dies with it — the one way a rerouted
        dispatch could ever desynchronise is reading a previous generation's
        reply, so a failed endpoint is never read again.
        """
        if worker.endpoint is not None:
            worker.endpoint.kill()
            worker.endpoint = None
        worker.shipped.clear()
        worker.shipped_operators.clear()

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        A later ``run_batch`` lazily respawns a fresh pool, so a closed
        backend remains usable.  Thread-safe: a close racing an in-flight
        dispatch waits for the dispatch to finish rather than reaping the
        pool under it.  Endpoint close escalates SIGTERM → SIGKILL, so no
        worker — not even one ignoring signals — outlives the pool.
        """
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        pool, self._pool = self._pool, None
        if not pool:
            return
        for worker in pool:
            if worker.endpoint is not None:
                worker.endpoint.close()
                worker.endpoint = None

    def __enter__(self) -> "ParallelBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    # -- sharding ---------------------------------------------------------------

    def _shards(self, requests: list[ExecutionRequest]) -> list[list[int]]:
        """Deterministic request-index shards, one per worker.

        Program requests are laid out group-major (fingerprint groups in
        first-seen order) and cut into near-equal contiguous spans, so a
        structure group touches as few workers as possible — each keeps its
        own program cache warm — while the load stays balanced to within one
        request.  Bound-circuit requests (no fingerprint without compiling,
        which belongs to the workers) are then dealt round-robin onto the
        least-loaded workers.  The assignment depends only on the request
        list, never on worker timing, and results are merged by original
        index — so sharding can never affect the merged payloads.
        """
        groups: dict[tuple, list[int]] = {}
        loose: list[int] = []
        for index, request in enumerate(requests):
            if request.program is not None:
                groups.setdefault(request.program.fingerprint, []).append(index)
            else:
                loose.append(index)
        grouped = [index for indices in groups.values() for index in indices]
        shards: list[list[int]] = [[] for _ in range(self.workers)]
        if grouped:
            spans = np.array_split(np.array(grouped), min(self.workers, len(grouped)))
            for worker_index, span in enumerate(spans):
                shards[worker_index] = [int(i) for i in span]
        for index in loose:
            target = min(range(self.workers), key=lambda w: (len(shards[w]), w))
            shards[target].append(index)
        return shards

    # -- execution --------------------------------------------------------------

    def run_batch(
        self, requests: Sequence[ExecutionRequest], *, need_states: bool = False
    ) -> list[BackendResult]:
        """Execute ``requests`` across the pool; results in request order.

        See :meth:`ExecutionBackend.run_batch` for the contract.  Worker-side
        request failures raise :class:`ParallelExecutionError`; endpoint
        failures degrade only their own shard (respawn + reroute, in-process
        as the last resort) per the module-level failure semantics.
        Dispatches from different threads serialize under the lifecycle lock
        (the wire protocol is strictly request/reply per worker), so a shared
        pool can serve multiple driver threads safely.
        """
        requests = list(requests)
        with self._lock:
            return self._run_batch_locked(requests, need_states)

    def _run_batch_locked(
        self, requests: list[ExecutionRequest], need_states: bool
    ) -> list[BackendResult]:
        self.batches_run += 1
        self.requests_run += len(requests)
        if not requests:
            return []
        pool = self._ensure_pool()
        results: list[BackendResult | None] = [None] * len(requests)
        operator_keys: dict[int, tuple] = {}
        #: First worker-side request error (deterministic; raised after every
        #: in-flight reply is settled so no pipe holds an unread reply).
        failure: str | None = None
        #: Request indices whose shard exhausted the retry budget (or was
        #: unpicklable) — the in-process last resort, executed at the end.
        fallback_indices: list[int] = []
        pending = [
            _Shard(worker=worker_index, indices=indices)
            for worker_index, indices in enumerate(self._shards(requests))
            if indices
        ]
        while pending:
            dispatched: list[tuple[_Shard, _Worker, int]] = []
            failed: list[tuple[_Shard, str]] = []
            for shard in pending:
                worker = pool[shard.worker]
                try:
                    endpoint = self._ensure_endpoint(worker)
                except TransportError as error:
                    failed.append((shard, str(error)))
                    continue
                # Snapshot the shipped-id mirrors *after* any respawn:
                # encoding mutates them optimistically, and a send that never
                # lands must not leave the parent believing the worker holds
                # programs it was never given.
                shipped_before = set(worker.shipped)
                operators_before = set(worker.shipped_operators)
                try:
                    encoded = [
                        self._encode(requests[i], worker, operator_keys)
                        for i in shard.indices
                    ]
                    job_id = self._job_counter
                    self._job_counter += 1
                    endpoint.send(("run", job_id, encoded, need_states))
                except TransportError as error:
                    # The endpoint is retired below, which clears the mirrors
                    # wholesale — no rollback needed here.
                    failed.append((shard, str(error)))
                    continue
                except Exception as error:
                    # Deterministic payload problem (an unpicklable request):
                    # pickling fails before any bytes hit the pipe, so the
                    # worker stays healthy — but a fresh worker would fail
                    # identically, so this shard skips retries entirely.
                    worker.shipped = shipped_before
                    worker.shipped_operators = operators_before
                    self._warn_shard_fallback(
                        shard, f"shard dispatch failed ({error!r})"
                    )
                    fallback_indices.extend(shard.indices)
                    continue
                worker.dispatches += 1
                self.shards_dispatched += 1
                dispatched.append((shard, worker, job_id))
            for shard, worker, job_id in dispatched:
                started = time.perf_counter()
                payload: list[BackendResult] = []
                try:
                    reply = worker.endpoint.recv(timeout_s=self.worker_timeout_s)
                    kind = reply[0] if isinstance(reply, tuple) and reply else None
                    if kind == "ok":
                        _, reply_job, payload = reply
                        if reply_job != job_id or len(payload) != len(shard.indices):
                            raise TransportError(
                                f"worker {shard.worker} replied to job "
                                f"{reply_job!r} with {len(payload)} result(s), "
                                f"expected job {job_id} with "
                                f"{len(shard.indices)} — garbled or stale reply"
                            )
                    elif kind == "error":
                        if reply[1] != job_id:
                            raise TransportError(
                                f"worker {shard.worker} replied to job "
                                f"{reply[1]!r}, expected {job_id} — garbled or "
                                "stale reply"
                            )
                    else:
                        raise TransportError(
                            f"worker {shard.worker} sent an unintelligible "
                            f"reply of kind {kind!r}"
                        )
                except DeadlineExceeded as error:
                    worker.latency_s += time.perf_counter() - started
                    self.deadline_timeouts += 1
                    failed.append((shard, str(error)))
                    continue
                except TransportError as error:
                    worker.latency_s += time.perf_counter() - started
                    failed.append((shard, str(error)))
                    continue
                worker.latency_s += time.perf_counter() - started
                if kind == "error":
                    if failure is None:
                        failure = reply[2]
                    continue
                for index, result in zip(shard.indices, payload):
                    if result.state is not None:
                        self.states_shipped += 1
                    # Tags and term bases never cross the boundary back:
                    # re-attach the original tag and rebuild the basis from
                    # the request operator — the same memoised engine call
                    # the worker's backend used, and one the parent-side
                    # estimator layer performs anyway, so the restored tuple
                    # is value-identical at no extra compile cost.
                    request = requests[index]
                    results[index] = replace(
                        result,
                        tag=request.tag,
                        term_basis=compiled_pauli_operator(request.operator).paulis,
                    )
            pending = []
            for shard, reason in failed:
                # The endpoint is no longer trusted (dead, hung, or holding a
                # stale reply): reap it now so the slot respawns fresh on the
                # next attempt — this batch's or a later one's.  Healthy
                # workers' completed replies above are unaffected.
                self._retire_endpoint(pool[shard.worker])
                shard.attempts += 1
                if shard.attempts > self.max_shard_retries:
                    self._warn_shard_fallback(
                        shard,
                        f"retry budget exhausted after {shard.attempts} "
                        f"attempt(s) ({reason})",
                    )
                    fallback_indices.extend(shard.indices)
                    continue
                self.shard_retries += 1
                warnings.warn(
                    f"{reason}; respawning worker {shard.worker} and rerouting "
                    f"its {len(shard.indices)}-request shard (attempt "
                    f"{shard.attempts + 1}/{self.max_shard_retries + 1}; "
                    "results are unaffected — rerouted and original execution "
                    "are bit-identical)",
                    RuntimeWarning,
                    stacklevel=4,
                )
                if self.retry_backoff_s:
                    time.sleep(self.retry_backoff_s * 2 ** (shard.attempts - 1))
                pending.append(shard)
        if fallback_indices:
            self.fallback_batches += 1
            order = sorted(fallback_indices)
            in_process = self._inner.run_batch(
                [requests[i] for i in order], need_states=need_states
            )
            for index, result in zip(order, in_process):
                results[index] = result
        if failure is not None:
            raise ParallelExecutionError(
                "execution request failed in a worker process; "
                "worker traceback:\n" + failure
            )
        return results  # type: ignore[return-value]

    def _warn_shard_fallback(self, shard: _Shard, reason: str) -> None:
        self.fallback_shards += 1
        warnings.warn(
            f"{reason}; executing the {len(shard.indices)}-request shard of "
            f"worker {shard.worker} in-process (results are unaffected — "
            "parallel and in-process execution are bit-identical)",
            RuntimeWarning,
            stacklevel=4,
        )

    def _encode(
        self, request: ExecutionRequest, worker: _Worker, operator_keys: dict[int, tuple]
    ) -> tuple:
        """Encode one request for one worker, with program/operator-shipping
        bookkeeping (parent-side mirrors of the worker's caches).

        ``operator_keys`` memoises the O(num_terms) operator fingerprint per
        *instance* for the duration of one batch (a cluster's requests all
        share one operator object), keeping the dispatch hot path O(1) per
        request; scoping the memo to the batch preserves the value-interning
        rule for operators mutated in place between dispatches.
        """
        fingerprint = operator_keys.get(id(request.operator))
        if fingerprint is None:
            fingerprint = _operator_fingerprint(request.operator)
            operator_keys[id(request.operator)] = fingerprint
        operator_id = self._operator_ids.setdefault(fingerprint, len(self._operator_ids))
        if operator_id in worker.shipped_operators:
            operator_ref = (operator_id, None)
        else:
            worker.shipped_operators.add(operator_id)
            operator_ref = (operator_id, request.operator)
        initial = None if request.initial_state is None else request.initial_state.data
        if request.program is None:
            return (CIRCUIT_KIND, request.circuit, operator_ref, initial, request.initial_bitstring)
        program_id = self._program_ids.setdefault(
            request.program.fingerprint, len(self._program_ids)
        )
        if program_id in worker.shipped:
            self.program_reuses += 1
            program = None
        else:
            worker.shipped.add(program_id)
            self.programs_shipped += 1
            program = request.program
        return (
            PROGRAM_KIND,
            (program_id, program, request.parameters),
            operator_ref,
            initial,
            request.initial_bitstring,
        )

    # -- observability ----------------------------------------------------------

    def worker_cache_stats(self) -> dict:
        """Worker-pool cache-warmth and fault-tolerance statistics.

        ``programs_shipped`` counts program pickles across the pool (at most
        one per distinct structure per worker per endpoint generation);
        ``program_reuses`` counts program-path requests served from a warm
        worker cache.  ``shard_retries`` / ``worker_respawns`` /
        ``deadline_timeouts`` / ``fallback_shards`` count the fault-handling
        events of the shard-granular failure semantics, and ``per_worker``
        breaks dispatches, cumulative reply latency, and respawns down by
        pool slot.  Folded into controller result metadata under
        ``metadata["program_cache"]["workers"]`` (and surfaced as
        ``metadata["transport"]`` when any fault-handling event fired).
        """
        pool = self._pool or []
        return {
            "workers": self.workers,
            "transport": self.transport.name,
            "shards_dispatched": self.shards_dispatched,
            "programs_shipped": self.programs_shipped,
            "program_reuses": self.program_reuses,
            "states_shipped": self.states_shipped,
            "fallback_batches": self.fallback_batches,
            "fallback_shards": self.fallback_shards,
            "shard_retries": self.shard_retries,
            "worker_respawns": self.worker_respawns,
            "deadline_timeouts": self.deadline_timeouts,
            "per_worker": [
                {
                    "worker": worker.index,
                    "dispatches": worker.dispatches,
                    "latency_s": worker.latency_s,
                    "respawns": worker.respawns,
                }
                for worker in pool
            ],
        }

    def __repr__(self) -> str:
        live = sum(
            1
            for worker in (self._pool or [])
            if worker.endpoint is not None and worker.endpoint.alive()
        )
        state = f"live={live}" if self._pool is not None else "idle"
        return (
            f"ParallelBackend(inner={self._inner.name!r}, workers={self.workers}, "
            f"transport={self.transport.name!r}, pool={state})"
        )
