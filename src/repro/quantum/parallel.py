"""Multi-process execution sharding: a worker-pool wrapper around any backend.

Every :class:`~repro.quantum.backend.ExecutionBackend` dispatch so far ran on
a single core.  A TreeVQA round, however, is a bag of *independent* circuit
executions, and the compiled :class:`~repro.quantum.program.CircuitProgram`
tape is exactly the kind of array program that shards cleanly: requests
sharing a program fingerprint can be stacked on any worker, and the merged
results depend only on each request's own (program, parameter-row, initial
state) triple — never on which worker ran it or in what order shards
completed.

:class:`ParallelBackend` composes rather than replaces: it wraps a factory
for any inner backend (statevector, Clifford-routed, density-matrix, or a
custom one), shards each ``run_batch`` across a persistent pool of worker
processes, executes every shard through the inner backend's own
``run_batch``, and merges the :class:`~repro.quantum.backend.BackendResult`
payloads back in the original request order.

Bit-identity contract (extends the batching invariant)
------------------------------------------------------
Results are **bit-identical** to in-process dispatch for any worker count —
``workers=1`` is the exact degenerate case — because

* the backend layer is deterministic: every shipped backend computes exact
  expectation values (the density-matrix backend's noisy physics is applied
  through deterministic superoperators and analytic readout folding — no
  RNG lives below the estimator layer);
* per-request execution is independent of batch composition (the PR 2
  invariant), so re-grouping requests into per-worker shards cannot change
  any request's amplitudes;
* results are merged by original request index, never by completion order.

Shot-noise and sampling randomness belong to the *estimator* layer, which
never crosses a process boundary: the round scheduler converts backend
payloads through the shared estimator in strict consumption order in the
parent process, so per-request noise streams are derived per request, not
per worker, and noisy trajectories are also worker-count independent.  A
sampling round (``need_states=True``) ships each request's prepared
amplitudes back parent-ward (counted as ``states_shipped``); the
measurement plans, uniform draws, and term-value evaluation all stay in the
parent, which is what extends the bit-identity guarantee to sampled term
vectors at every worker count.

Sharding and the warm per-worker program cache
----------------------------------------------
Requests are ordered program-group-major (fingerprint groups in first-seen
order, then bound-circuit requests) and split into near-equal contiguous
shards, so same-structure requests land together and each worker's program
cache stays warm; bound-circuit requests are balanced round-robin style onto
the least-loaded workers.  A program is pickled to a given worker only once
— later dispatches send a small integer reference — and the shipping
counters are surfaced as :meth:`ParallelBackend.worker_cache_stats` (the
controller folds them into ``metadata["program_cache"]["workers"]``).

Failure semantics
-----------------
An exception raised *inside* a worker (an invalid request, an oversized
density matrix, ...) is re-raised in the parent as
:class:`ParallelExecutionError` carrying the remote traceback — the same
control flow in-process execution would have produced.  A worker process
*dying* (OOM kill, segfault, manual ``kill``) is different: the pool is torn
down, an actionable :class:`RuntimeWarning` is emitted, and the batch — plus
every subsequent one — executes in-process through the wrapper's own inner
backend instance, so the round completes with identical results.  A payload
that cannot cross the process boundary at all (an unpicklable object inside
a custom request) takes the same warn-and-fall-back path — in-process
execution needs no pickling, so the round still completes.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import traceback
import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from .backend import BackendResult, ExecutionBackend, ExecutionRequest
from .engine import compiled_pauli_operator
from .statevector import Statevector

__all__ = [
    "ParallelBackend",
    "ParallelExecutionError",
    "default_worker_count",
]


class ParallelExecutionError(RuntimeError):
    """An execution request failed inside a worker process.

    The message carries the worker-side traceback; the failure semantics
    match raising from an in-process ``run_batch`` call.
    """


def default_worker_count() -> int:
    """Worker count used when none is given: one per *available* CPU.

    Prefers the scheduling affinity mask (which cgroup limits and
    ``taskset`` restrict) over ``os.cpu_count()`` (which reports the whole
    machine), so the default pool never oversubscribes a CPU-limited
    container.
    """
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        # reprolint: disable=REPRO003 -- non-Linux fallback; sched_getaffinity is unavailable
        return max(os.cpu_count() or 1, 1)


# -- wire protocol ----------------------------------------------------------------
#
# Parent -> worker:  ("run", job_id, [encoded request, ...], need_states)
#                    ("close",)
# Worker -> parent:  ("ok", job_id, [BackendResult, ...])
#                    ("error", job_id, formatted_traceback)
#
# Requests are encoded rather than pickled verbatim so the expensive,
# reusable parts — the compiled CircuitProgram and the measured PauliOperator
# (hundreds of terms for molecular workloads, identical across a cluster's
# requests and rounds) — cross the boundary once per worker (later dispatches
# carry only a small integer id), and so per-request extras that need not
# cross (tags, memoised resolved circuits) stay behind.  Operators are
# interned by *value* fingerprint, not identity, so an operator mutated
# in-place (``chop``) ships fresh under a new id.

_PROGRAM = "p"
_CIRCUIT = "c"


def _operator_fingerprint(operator) -> tuple:
    """Value key for operator interning (same shape the engine cache uses)."""
    return (operator.num_qubits, tuple((p.label, c) for p, c in operator.items()))


def _decode_request(
    encoded: tuple, programs: dict[int, object], operators: dict[int, object]
) -> ExecutionRequest:
    """Rebuild an :class:`ExecutionRequest` on the worker side, caching newly
    shipped programs/operators (the worker's warm caches)."""
    kind, payload, operator_ref, initial, bitstring = encoded
    operator_id, operator = operator_ref
    if operator is not None:
        operators[operator_id] = operator
    initial_state = None if initial is None else Statevector(initial)
    if kind == _PROGRAM:
        program_id, program, parameters = payload
        if program is not None:
            programs[program_id] = program
        return ExecutionRequest(
            circuit=None,
            operator=operators[operator_id],
            initial_state=initial_state,
            initial_bitstring=bitstring,
            program=programs[program_id],
            parameters=parameters,
        )
    return ExecutionRequest(
        circuit=payload,
        operator=operators[operator_id],
        initial_state=initial_state,
        initial_bitstring=bitstring,
    )


def _worker_main(connection, inner_factory: Callable[[], ExecutionBackend]) -> None:
    """Worker process loop: build the inner backend once, serve shards.

    The backend instance and the decoded-program cache persist for the life
    of the worker, so every dispatch after the first reuses the warm program
    tapes, compiled Pauli engines, and any backend-internal caches (e.g. the
    density-matrix backend's superoperator cache).
    """
    backend = inner_factory()
    programs: dict[int, object] = {}
    operators: dict[int, object] = {}
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if message[0] == "close":
            break
        _, job_id, encoded_requests, need_states = message
        try:
            requests = [
                _decode_request(item, programs, operators)
                for item in encoded_requests
            ]
            results = backend.run_batch(requests, need_states=need_states)
            # term_basis is derivable parent-side from each request's
            # operator (the contract pins it to the operator's term order),
            # so strip it from the reply — for a 100+-term operator it would
            # otherwise re-pickle every PauliString per request per round,
            # defeating the once-per-worker shipping of the request leg.
            reply = ("ok", job_id, [replace(r, term_basis=()) for r in results])
        except Exception:
            reply = ("error", job_id, traceback.format_exc())
        try:
            connection.send(reply)
        except (BrokenPipeError, OSError):  # parent went away; nothing to do
            break
    connection.close()


@dataclass
class _Worker:
    """Parent-side handle of one pool member."""

    process: object
    connection: object
    #: Program ids already pickled to this worker (its cache mirror).
    shipped: set[int] = field(default_factory=set)
    #: Operator ids already pickled to this worker.
    shipped_operators: set[int] = field(default_factory=set)


class ParallelBackend(ExecutionBackend):
    """Shard batches of execution requests across a pool of worker processes.

    Parameters:
        inner_factory: Zero-argument picklable callable building the backend
            each worker (and the in-process fallback) executes through.  Use
            e.g. ``functools.partial(make_execution_backend, "statevector")``;
            under the default ``fork`` start method any callable works.
        workers: Pool size (≥ 1; default: one per CPU).  ``workers=1`` is the
            exact degenerate case — same results, one worker process.
        start_method: ``multiprocessing`` start method (default: ``"fork"``
            where available, else ``"spawn"``).

    The pool spawns lazily on the first ``run_batch`` and must be released
    with :meth:`close` (or by using the backend as a context manager); the
    controller closes its backend at the end of ``run()``.  Workers are
    daemonic, so leaked pools die with the interpreter.
    """

    def __init__(
        self,
        inner_factory: Callable[[], ExecutionBackend],
        *,
        workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        resolved = default_worker_count() if workers is None else int(workers)
        if resolved < 1:
            raise ValueError("workers must be >= 1")
        self._inner_factory = inner_factory
        #: Local template instance: serves the scheduler's capability probing
        #: (name, provides_states, noise_model) and in-process fallback.
        self._inner = inner_factory()
        #: Serializes pool lifecycle and dispatch across threads: a shared
        #: pool (the job service multiplexes many controllers onto one
        #: ParallelBackend) may be dispatched from an executor thread while
        #: another thread calls close() — without the lock, a close landing
        #: mid-dispatch would orphan in-flight shard replies in the pipes
        #: and desynchronise every later dispatch.  Reentrant because the
        #: dead-worker fallback path (_mark_broken) closes from inside
        #: run_batch.  Dispatches serialize; that cannot change results
        #: (per-request execution is deterministic and order-independent).
        self._lock = threading.RLock()
        self.workers = resolved
        self._start_method = start_method
        self._pool: list[_Worker] | None = None
        self._broken = False
        self._job_counter = 0
        #: fingerprint -> small pool-wide integer id (fingerprints are large
        #: structural tuples; only the id crosses the process boundary after
        #: the first shipment).
        self._program_ids: dict[tuple, int] = {}
        #: operator value-fingerprint -> wire id (same interning scheme).
        self._operator_ids: dict[tuple, int] = {}
        self.batches_run = 0
        self.requests_run = 0
        #: Per-worker shard dispatches performed.
        self.shards_dispatched = 0
        #: Batches executed in-process (pool broken or failed to start).
        self.fallback_batches = 0
        #: Times a program was pickled to some worker.
        self.programs_shipped = 0
        #: Program-path requests served from a worker's warm program cache.
        self.program_reuses = 0
        #: Prepared states shipped back from workers (``need_states``
        #: dispatches, i.e. sampling rounds): one 2^n amplitude array per
        #: request crosses the boundary parent-ward.  Measurement *plans*
        #: never ship — sampling randomness and plan evaluation live
        #: entirely in the parent's estimator layer.
        self.states_shipped = 0

    # -- scheduler-facing metadata (delegated to the inner template) ------------

    @property
    def name(self) -> str:  # type: ignore[override]
        """The *inner* backend's name: estimator/backend pairing (e.g. the
        density-matrix estimator's ``requires_backend`` pin) must see through
        the wrapper."""
        return self._inner.name

    @property
    def provides_states(self) -> bool:  # type: ignore[override]
        return getattr(self._inner, "provides_states", True)

    @property
    def accepts_propagation_config(self) -> bool:
        """Whether the wrapped backend is propagation-capable — the
        controller's §5.3 selection keys off this to stay state-free."""
        return getattr(self._inner, "accepts_propagation_config", False)

    @property
    def noise_model(self):
        """The inner backend's noise model (None for unitary backends) — the
        scheduler's exactness/pairing checks apply to the wrapped physics."""
        return getattr(self._inner, "noise_model", None)

    @property
    def inner(self) -> ExecutionBackend:
        """The local inner template instance (also the fallback executor)."""
        return self._inner

    # -- lifecycle --------------------------------------------------------------

    def _ensure_pool(self) -> list[_Worker]:
        if self._pool is not None:
            return self._pool
        method = self._start_method
        if method is None:
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        context = multiprocessing.get_context(method)
        pool: list[_Worker] = []
        try:
            for index in range(self.workers):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_end, self._inner_factory),
                    name=f"repro-exec-worker-{index}",
                    daemon=True,
                )
                process.start()
                child_end.close()
                pool.append(_Worker(process=process, connection=parent_end))
        except Exception:
            for worker in pool:
                worker.connection.close()
                worker.process.terminate()
            raise
        self._pool = pool
        return pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        A later ``run_batch`` lazily respawns a fresh pool, so a closed
        backend remains usable — including after a worker crash marked the
        pool broken; the program-shipping bookkeeping restarts with it.
        Thread-safe: a close racing an in-flight dispatch waits for the
        dispatch to finish rather than reaping the pool under it.
        """
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        self._broken = False
        pool, self._pool = self._pool, None
        if not pool:
            return
        for worker in pool:
            try:
                worker.connection.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for worker in pool:
            try:
                worker.connection.close()
            except OSError:
                pass
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)

    def __enter__(self) -> "ParallelBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    # -- sharding ---------------------------------------------------------------

    def _shards(self, requests: list[ExecutionRequest]) -> list[list[int]]:
        """Deterministic request-index shards, one per worker.

        Program requests are laid out group-major (fingerprint groups in
        first-seen order) and cut into near-equal contiguous spans, so a
        structure group touches as few workers as possible — each keeps its
        own program cache warm — while the load stays balanced to within one
        request.  Bound-circuit requests (no fingerprint without compiling,
        which belongs to the workers) are then dealt round-robin onto the
        least-loaded workers.  The assignment depends only on the request
        list, never on worker timing, and results are merged by original
        index — so sharding can never affect the merged payloads.
        """
        groups: dict[tuple, list[int]] = {}
        loose: list[int] = []
        for index, request in enumerate(requests):
            if request.program is not None:
                groups.setdefault(request.program.fingerprint, []).append(index)
            else:
                loose.append(index)
        grouped = [index for indices in groups.values() for index in indices]
        shards: list[list[int]] = [[] for _ in range(self.workers)]
        if grouped:
            spans = np.array_split(np.array(grouped), min(self.workers, len(grouped)))
            for worker_index, span in enumerate(spans):
                shards[worker_index] = [int(i) for i in span]
        for index in loose:
            target = min(range(self.workers), key=lambda w: (len(shards[w]), w))
            shards[target].append(index)
        return shards

    # -- execution --------------------------------------------------------------

    def run_batch(
        self, requests: Sequence[ExecutionRequest], *, need_states: bool = False
    ) -> list[BackendResult]:
        """Execute ``requests`` across the pool; results in request order.

        See :meth:`ExecutionBackend.run_batch` for the contract.  Worker-side
        request failures raise :class:`ParallelExecutionError`; a dead worker
        process triggers the documented warn-and-fall-back-in-process path.
        Dispatches from different threads serialize under the lifecycle lock
        (the wire protocol is strictly request/reply per worker), so a shared
        pool can serve multiple driver threads safely.
        """
        requests = list(requests)
        with self._lock:
            return self._run_batch_locked(requests, need_states)

    def _run_batch_locked(
        self, requests: list[ExecutionRequest], need_states: bool
    ) -> list[BackendResult]:
        self.batches_run += 1
        self.requests_run += len(requests)
        if not requests:
            return []
        if self._broken:
            return self._run_in_process(requests, need_states)
        try:
            pool = self._ensure_pool()
        except Exception as error:
            self._mark_broken(f"worker pool failed to start ({error!r})")
            return self._run_in_process(requests, need_states)
        jobs: list[tuple[_Worker, list[int], int]] = []
        try:
            # The send phase catches *any* exception (an unpicklable payload
            # raises TypeError/PicklingError from connection.send, not an
            # OSError): once a shard has been dispatched, bailing out without
            # tearing the pool down would leave its un-read reply in the pipe
            # and desynchronise every later dispatch.  _mark_broken reaps the
            # pool, so the documented warn-and-fall-back semantics hold for
            # this failure mode too.
            operator_keys: dict[int, tuple] = {}
            for worker_index, indices in enumerate(self._shards(requests)):
                if not indices:
                    continue
                worker = pool[worker_index]
                encoded = [
                    self._encode(requests[i], worker, operator_keys) for i in indices
                ]
                job_id = self._job_counter
                self._job_counter += 1
                worker.connection.send(("run", job_id, encoded, need_states))
                jobs.append((worker, indices, job_id))
                self.shards_dispatched += 1
        except Exception as error:
            if isinstance(error, (BrokenPipeError, EOFError, ConnectionError, OSError)):
                reason = self._crash_diagnosis(error)
            else:
                reason = f"shard dispatch failed ({error!r})"
            self._mark_broken(reason)
            return self._run_in_process(requests, need_states)
        try:
            results: list[BackendResult | None] = [None] * len(requests)
            # Every dispatched shard's reply is collected before any error is
            # raised: leaving a pending reply in a pipe would desynchronise
            # the next dispatch (and read like a dead worker).  The pool
            # survives request-level errors intact.
            failure: str | None = None
            for worker, indices, job_id in jobs:
                reply = worker.connection.recv()
                kind, reply_job = reply[0], reply[1]
                if reply_job != job_id:  # pragma: no cover - protocol guard
                    raise BrokenPipeError(
                        f"worker replied to job {reply_job}, expected {job_id}"
                    )
                if kind == "error":
                    if failure is None:
                        failure = reply[2]
                    continue
                for index, result in zip(indices, reply[2]):
                    if result.state is not None:
                        self.states_shipped += 1
                    # Tags and term bases never cross the boundary back:
                    # re-attach the original tag and rebuild the basis from
                    # the request operator — the same memoised engine call
                    # the worker's backend used, and one the parent-side
                    # estimator layer performs anyway, so the restored tuple
                    # is value-identical at no extra compile cost.
                    request = requests[index]
                    results[index] = replace(
                        result,
                        tag=request.tag,
                        term_basis=compiled_pauli_operator(request.operator).paulis,
                    )
            if failure is not None:
                raise ParallelExecutionError(
                    "execution request failed in a worker process; "
                    "worker traceback:\n" + failure
                )
            return results  # type: ignore[return-value]
        except (BrokenPipeError, EOFError, ConnectionError, OSError) as error:
            self._mark_broken(self._crash_diagnosis(error))
            return self._run_in_process(requests, need_states)

    def _encode(
        self, request: ExecutionRequest, worker: _Worker, operator_keys: dict[int, tuple]
    ) -> tuple:
        """Encode one request for one worker, with program/operator-shipping
        bookkeeping (parent-side mirrors of the worker's caches).

        ``operator_keys`` memoises the O(num_terms) operator fingerprint per
        *instance* for the duration of one batch (a cluster's requests all
        share one operator object), keeping the dispatch hot path O(1) per
        request; scoping the memo to the batch preserves the value-interning
        rule for operators mutated in place between dispatches.
        """
        fingerprint = operator_keys.get(id(request.operator))
        if fingerprint is None:
            fingerprint = _operator_fingerprint(request.operator)
            operator_keys[id(request.operator)] = fingerprint
        operator_id = self._operator_ids.setdefault(fingerprint, len(self._operator_ids))
        if operator_id in worker.shipped_operators:
            operator_ref = (operator_id, None)
        else:
            worker.shipped_operators.add(operator_id)
            operator_ref = (operator_id, request.operator)
        initial = None if request.initial_state is None else request.initial_state.data
        if request.program is None:
            return (_CIRCUIT, request.circuit, operator_ref, initial, request.initial_bitstring)
        program_id = self._program_ids.setdefault(
            request.program.fingerprint, len(self._program_ids)
        )
        if program_id in worker.shipped:
            self.program_reuses += 1
            program = None
        else:
            worker.shipped.add(program_id)
            self.programs_shipped += 1
            program = request.program
        return (
            _PROGRAM,
            (program_id, program, request.parameters),
            operator_ref,
            initial,
            request.initial_bitstring,
        )

    def _crash_diagnosis(self, error: Exception) -> str:
        """Actionable description of a dead-worker event."""
        exit_codes = [
            worker.process.exitcode
            for worker in (self._pool or [])
            if not worker.process.is_alive()
        ]
        detail = f"worker exit codes {exit_codes}" if exit_codes else repr(error)
        return (
            f"a parallel execution worker died mid-batch ({detail}); "
            "common causes are out-of-memory kills (lower execution_workers "
            "or max_batch_size) and crashed native code"
        )

    def _mark_broken(self, reason: str) -> None:
        warnings.warn(
            f"{reason}; this and subsequent batches execute in-process "
            "(results are unaffected — parallel and in-process execution are "
            "bit-identical); close() and re-dispatch to respawn the pool",
            RuntimeWarning,
            stacklevel=3,
        )
        # Reap the dead pool first: close() clears the broken flag (it is
        # the documented recovery path), so mark broken afterwards.
        self.close()
        self._broken = True

    def _run_in_process(
        self, requests: list[ExecutionRequest], need_states: bool
    ) -> list[BackendResult]:
        self.fallback_batches += 1
        return self._inner.run_batch(requests, need_states=need_states)

    # -- observability ----------------------------------------------------------

    def worker_cache_stats(self) -> dict[str, int]:
        """Worker-pool program-cache warmup statistics for this backend.

        ``programs_shipped`` counts program pickles across the pool (at most
        one per distinct structure per worker per pool lifetime);
        ``program_reuses`` counts program-path requests served from a warm
        worker cache.  Folded into controller result metadata under
        ``metadata["program_cache"]["workers"]``.
        """
        return {
            "workers": self.workers,
            "shards_dispatched": self.shards_dispatched,
            "programs_shipped": self.programs_shipped,
            "program_reuses": self.program_reuses,
            "states_shipped": self.states_shipped,
            "fallback_batches": self.fallback_batches,
        }

    def __repr__(self) -> str:
        state = "broken" if self._broken else ("live" if self._pool else "idle")
        return (
            f"ParallelBackend(inner={self._inner.name!r}, workers={self.workers}, "
            f"pool={state})"
        )
