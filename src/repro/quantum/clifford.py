"""Stabilizer (Clifford) simulation in the binary-symplectic representation.

CAFQA-style initialisation (paper §8.5) restricts every ansatz angle to a
multiple of π/2 so the circuit becomes a Clifford circuit that can be
simulated classically in polynomial time.  This module provides that
simulator: stabilizer generators are tracked as binary symplectic vectors
with an i-power phase, Clifford gates update them in O(n), and Pauli-string
expectation values are obtained by a GF(2) solve over the generators.

Pauli phase convention: an operator is ``i^phase · Π_j X_j^{x_j} Z_j^{z_j}``
with ``phase`` in Z4 (so Y = i·X·Z has phase 1).
"""

from __future__ import annotations

import math

import numpy as np

from .circuit import QuantumCircuit
from .pauli import PauliOperator, PauliString

__all__ = ["CliffordSimulator", "is_clifford_angle", "clifford_angle_index"]

_ANGLE_TOLERANCE = 1e-9


def is_clifford_angle(theta: float, tolerance: float = _ANGLE_TOLERANCE) -> bool:
    """True if ``theta`` is (numerically) an integer multiple of π/2."""
    ratio = theta / (math.pi / 2)
    return abs(ratio - round(ratio)) < tolerance


def clifford_angle_index(theta: float) -> int:
    """Return k in {0,1,2,3} such that theta ≡ k·π/2 (mod 2π)."""
    if not is_clifford_angle(theta):
        raise ValueError(f"{theta} is not a multiple of π/2")
    return int(round(theta / (math.pi / 2))) % 4


def _label_to_symplectic(label: str) -> tuple[np.ndarray, np.ndarray, int]:
    """Convert a Pauli label to (x bits, z bits, i-power phase)."""
    n = len(label)
    x = np.zeros(n, dtype=np.uint8)
    z = np.zeros(n, dtype=np.uint8)
    phase = 0
    for i, op in enumerate(label):
        if op == "X":
            x[i] = 1
        elif op == "Z":
            z[i] = 1
        elif op == "Y":
            x[i] = 1
            z[i] = 1
            phase = (phase + 1) % 4
    return x, z, phase


def _multiply(
    x1: np.ndarray, z1: np.ndarray, p1: int, x2: np.ndarray, z2: np.ndarray, p2: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Multiply two Paulis in symplectic form: (A, B) -> A·B."""
    # Per qubit: X^x1 Z^z1 · X^x2 Z^z2 = (-1)^(z1·x2) X^(x1+x2) Z^(z1+z2).
    phase = (p1 + p2 + 2 * int(np.sum(z1 * x2))) % 4
    return x1 ^ x2, z1 ^ z2, phase


class CliffordSimulator:
    """Track the stabilizer group of an n-qubit state under Clifford gates."""

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        self.num_qubits = num_qubits
        # Stabilizer generators: initially Z_i on each qubit (state |0...0>).
        self._x = np.zeros((num_qubits, num_qubits), dtype=np.uint8)
        self._z = np.eye(num_qubits, dtype=np.uint8)
        self._phase = np.zeros(num_qubits, dtype=np.int64)  # i-powers, values 0 or 2

    # -- gate application -------------------------------------------------------

    def apply_circuit(self, circuit: QuantumCircuit) -> "CliffordSimulator":
        """Apply a bound circuit consisting of Clifford gates / Clifford angles."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit and simulator qubit counts differ")
        if not circuit.is_bound():
            raise ValueError("circuit has unbound parameters; call circuit.bind first")
        for inst in circuit.instructions:
            self._apply_instruction(inst.gate, inst.qubits, tuple(inst.params))
        return self

    def _apply_instruction(
        self, gate: str, qubits: tuple[int, ...], params: tuple[float, ...]
    ) -> None:
        if gate == "i":
            return
        if gate == "h":
            self._h(qubits[0])
        elif gate == "s":
            self._s(qubits[0])
        elif gate == "sdg":
            self._s(qubits[0])
            self._s(qubits[0])
            self._s(qubits[0])
        elif gate == "x":
            self._pauli_gate(qubits[0], flip_on="z")
        elif gate == "z":
            self._pauli_gate(qubits[0], flip_on="x")
        elif gate == "y":
            self._pauli_gate(qubits[0], flip_on="xor")
        elif gate == "cx":
            self._cx(qubits[0], qubits[1])
        elif gate == "cz":
            self._h(qubits[1])
            self._cx(qubits[0], qubits[1])
            self._h(qubits[1])
        elif gate == "swap":
            self._cx(qubits[0], qubits[1])
            self._cx(qubits[1], qubits[0])
            self._cx(qubits[0], qubits[1])
        elif gate in ("rz", "rx", "ry", "p"):
            self._rotation(gate, qubits[0], params[0])
        elif gate == "rzz":
            index = clifford_angle_index(params[0])
            # exp(-i k π/4 ZZ): implement as CX(a,b) · RZ_b(kπ/2) · CX(a,b).
            self._cx(qubits[0], qubits[1])
            self._rotation("rz", qubits[1], index * math.pi / 2)
            self._cx(qubits[0], qubits[1])
        else:
            raise ValueError(f"gate {gate!r} is not supported by the Clifford simulator")

    def _rotation(self, gate: str, qubit: int, theta: float) -> None:
        index = clifford_angle_index(theta)
        if index == 0:
            return
        if gate in ("rz", "p"):
            sequence = {1: ["s"], 2: ["z"], 3: ["sdg"]}[index]
        elif gate == "rx":
            sequence = {1: ["h", "s", "h"], 2: ["x"], 3: ["h", "sdg", "h"]}[index]
        else:  # ry(theta) = S · rx(theta) · Sdg, applied right-to-left as a circuit
            sequence = ["sdg"] + {1: ["h", "s", "h"], 2: ["x"], 3: ["h", "sdg", "h"]}[index] + ["s"]
        for name in sequence:
            self._apply_instruction(name, (qubit,), ())

    def _h(self, qubit: int) -> None:
        x, z = self._x[:, qubit].copy(), self._z[:, qubit].copy()
        self._phase = (self._phase + 2 * (x * z)) % 4
        self._x[:, qubit], self._z[:, qubit] = z, x

    def _s(self, qubit: int) -> None:
        x, z = self._x[:, qubit], self._z[:, qubit]
        # X -> Y contributes one factor of i per row with x=1; Z unchanged.
        self._phase = (self._phase + x.astype(np.int64)) % 4
        self._z[:, qubit] = z ^ x

    def _pauli_gate(self, qubit: int, flip_on: str) -> None:
        x, z = self._x[:, qubit], self._z[:, qubit]
        if flip_on == "z":
            flips = z
        elif flip_on == "x":
            flips = x
        else:
            flips = x ^ z
        self._phase = (self._phase + 2 * flips.astype(np.int64)) % 4

    def _cx(self, control: int, target: int) -> None:
        # In the explicit i-power convention (operators stored as i^phase·X^x Z^z)
        # CX conjugation maps X^x Z^z products to X^x Z^z products with no phase.
        xc, zc = self._x[:, control].copy(), self._z[:, control].copy()
        xt, zt = self._x[:, target].copy(), self._z[:, target].copy()
        self._x[:, target] = xt ^ xc
        self._z[:, control] = zc ^ zt

    # -- measurement of Pauli expectation values ----------------------------------

    def pauli_expectation(self, pauli: PauliString | str) -> float:
        """Expectation value of a Pauli string: exactly -1, 0 or +1."""
        label = pauli.label if isinstance(pauli, PauliString) else pauli
        if len(label) != self.num_qubits:
            raise ValueError("Pauli length must equal the number of qubits")
        px, pz, pphase = _label_to_symplectic(label)
        if not np.any(px) and not np.any(pz):
            return 1.0
        # Commutation check against every stabilizer generator.
        anticommute = (self._x @ pz + self._z @ px) % 2
        if np.any(anticommute):
            return 0.0
        # Solve for the generator subset whose product equals ±P.
        selection = self._solve_gf2(np.concatenate([px, pz]))
        if selection is None:
            return 0.0
        x = np.zeros(self.num_qubits, dtype=np.uint8)
        z = np.zeros(self.num_qubits, dtype=np.uint8)
        phase = 0
        for row in np.flatnonzero(selection):
            x, z, phase = _multiply(x, z, phase, self._x[row], self._z[row], int(self._phase[row]))
        if not np.array_equal(x, px) or not np.array_equal(z, pz):
            return 0.0
        difference = (phase - pphase) % 4
        if difference == 0:
            return 1.0
        if difference == 2:
            return -1.0
        raise RuntimeError("stabilizer phase bookkeeping produced an imaginary sign")

    def expectation(self, operator: PauliOperator) -> float:
        """Expectation value of a Pauli-sum Hamiltonian."""
        if operator.num_qubits != self.num_qubits:
            raise ValueError("qubit-count mismatch")
        value = 0.0
        for pauli, coeff in operator.items():
            if coeff == 0:
                continue
            value += coeff.real * self.pauli_expectation(pauli)
        return float(value)

    def _solve_gf2(self, target: np.ndarray) -> np.ndarray | None:
        """Solve generators^T · c = target over GF(2); return c or None."""
        n = self.num_qubits
        matrix = np.concatenate([self._x, self._z], axis=1).astype(np.uint8)  # rows = generators
        augmented = np.concatenate([matrix.T, target.reshape(-1, 1)], axis=1).astype(np.uint8)
        rows, cols = augmented.shape
        pivot_row = 0
        pivot_cols = []
        for col in range(n):
            pivot = None
            for row in range(pivot_row, rows):
                if augmented[row, col]:
                    pivot = row
                    break
            if pivot is None:
                continue
            augmented[[pivot_row, pivot]] = augmented[[pivot, pivot_row]]
            for row in range(rows):
                if row != pivot_row and augmented[row, col]:
                    augmented[row] ^= augmented[pivot_row]
            pivot_cols.append(col)
            pivot_row += 1
            if pivot_row == rows:
                break
        # Check consistency: any zero row with non-zero RHS means no solution.
        for row in range(pivot_row, rows):
            if augmented[row, -1] and not np.any(augmented[row, :-1]):
                return None
        solution = np.zeros(n, dtype=np.uint8)
        for index, col in enumerate(pivot_cols):
            solution[col] = augmented[index, -1]
        return solution
