"""Compile-once circuit programs: parameterized circuits as executable tapes.

A TreeVQA round executes the *same ansatz structure* thousands of times with
different angles.  The PR 2 batched backend already stacked those executions
into per-gate GEMMs, but every round still rebuilt its inputs from scratch:
one freshly bound :class:`~repro.quantum.circuit.QuantumCircuit` per parameter
point, one structure-key recomputation per request, and one per-gate Python
scan over the batch to stack gate matrices.  This module compiles a circuit
**once** into a :class:`CircuitProgram` — the instruction tape, qubit
wirings, parameter-slot mapping, and a precomputed per-gate dispatch plan —
so a whole batch of executions becomes ``program.execute(parameter_matrix,
initial_amplitudes)`` with no circuit objects on the hot path.

Compilation happens through a small persistent (process-wide, LRU-bounded)
cache:

* :func:`compile_circuit_program` — compile a *parameterized* template
  circuit; symbolic parameters become program slots (ordered like
  ``circuit.parameters``, i.e. exactly the order
  :meth:`~repro.ansatz.base.Ansatz.bound_circuit` binds), affine
  :class:`~repro.quantum.circuit.ParameterExpression` factors are folded into
  per-slot ``scale``/``offset`` pairs.  Structurally identical circuits (two
  instances of the same ansatz shape) share one cached program.
* :func:`program_for_bound_circuit` — compile the *structure* of an
  already-bound circuit (every rotation angle promoted to a slot) and extract
  its parameter row.  This is how legacy bound-circuit execution requests are
  folded onto the program path on first sight: requests sharing a gate/wiring
  sequence share one cached program, reproducing the PR 2 grouping exactly.

Bit-identity contract
---------------------
The program path must reproduce the legacy bound-circuit batched path
bit-for-bit (and therefore, transitively, sequential
:meth:`~repro.quantum.statevector.Statevector.evolve` execution — see the
PR 2 invariant).  Three facts make that hold:

* gate matrices for single-angle rotation gates are built with the *same*
  :func:`~repro.quantum.gates.batched_rotation_matrices` elementwise ufuncs
  the legacy path used for every group size (including one);
* affine slot evaluation computes ``scale * value + offset`` with the same
  two IEEE-754 operations, in the same order, as
  :meth:`ParameterExpression.evaluate` did scalar-wise (bare parameters are
  passed through untouched, exactly like ``float(mapping[p])``);
* gate application uses the same stacked ``matmul`` with the same operand
  shapes as the legacy group path.

``tests/quantum/test_backend.py::TestCircuitProgram`` and
``tests/core/test_scheduler.py::TestControllerParity`` verify the contract.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from .circuit import Instruction, Parameter, ParameterExpression, QuantumCircuit
from .gates import batched_rotation_matrices, gate_matrix

__all__ = [
    "CircuitProgram",
    "compile_circuit_program",
    "program_for_bound_circuit",
    "apply_gate_batched",
    "program_cache_stats",
    "clear_program_cache",
    "set_program_cache_limit",
]

#: Dispatch-plan kinds precomputed per tape entry.
_FIXED = 0  #: every parameter is a constant — one precomputed matrix, repeated
_ROTATION = 1  #: single slotted angle with a vectorized matrix builder
_GENERIC = 2  #: slotted parameters without a vectorized builder — per-row build

#: Parameter-spec tags (first element of a spec tuple).
_CONST = "c"  #: ("c", value)
_SLOT = "s"  #: ("s", slot_index, scale, offset)


def apply_gate_batched(
    tensor: np.ndarray, matrices: np.ndarray, qubits: tuple[int, ...]
) -> np.ndarray:
    """Apply per-request k-qubit gate matrices across a stacked state tensor.

    ``tensor`` has shape ``(batch,) + (2,) * n``; ``matrices`` has shape
    ``(batch, 2**k, 2**k)``.  The stacked ``matmul`` performs one GEMM per
    batch row with the same operand shapes as the sequential ``tensordot``
    path, so each row's amplitudes are bit-identical to evolving that request
    alone (the PR 2 invariant — do not change this without re-verifying
    bit-identity against :meth:`Statevector.evolve`).
    """
    k = len(qubits)
    batch = tensor.shape[0]
    axes = [1 + q for q in qubits]
    moved = np.moveaxis(tensor, axes, range(1, k + 1))
    rest = moved.shape[k + 1 :]
    arr = np.ascontiguousarray(moved).reshape(batch, 1 << k, -1)
    out = np.matmul(matrices, arr)
    out = out.reshape((batch,) + (2,) * k + rest)
    return np.moveaxis(out, range(1, k + 1), axes)


def _moveaxis_order(
    ndim: int, source: Sequence[int], destination: Sequence[int]
) -> tuple[int, ...]:
    """The transpose order :func:`np.moveaxis` uses for these source/destination
    axes — precomputed once per tape entry so gate application skips the
    per-call axis normalisation (``a.transpose(order)`` is exactly what
    ``np.moveaxis`` performs, so amplitudes are untouched)."""
    order = [axis for axis in range(ndim) if axis not in source]
    for dest, src in sorted(zip(destination, source)):
        order.insert(dest, src)
    return tuple(order)


@dataclass(frozen=True)
class _TapeEntry:
    """One precompiled gate application of a program's instruction tape."""

    gate: str
    qubits: tuple[int, ...]
    kind: int
    specs: tuple[tuple, ...]
    matrix: np.ndarray | None
    #: transpose order bringing the gate's qubit axes to positions 1..k
    forward: tuple[int, ...] = ()
    #: transpose order moving them back after the matmul
    backward: tuple[int, ...] = ()


def _evaluate_spec(spec: tuple, row: np.ndarray) -> float:
    """Scalar parameter value for one spec — mirrors the legacy bind() math."""
    if spec[0] == _CONST:
        return spec[1]
    _, slot, scale, offset = spec
    value = float(row[slot])
    if scale == 1.0 and offset == 0.0:
        return value
    return scale * value + offset


class CircuitProgram:
    """A compiled, reusable execution plan for one circuit structure.

    Programs are immutable and shareable: one program serves every parameter
    point of every round of every cluster with the same circuit structure.
    Obtain them through :func:`compile_circuit_program` /
    :func:`program_for_bound_circuit` so structurally identical circuits share
    one cached instance.
    """

    __slots__ = ("_tape", "_num_qubits", "_num_parameters", "_fingerprint", "name")

    def __init__(
        self,
        num_qubits: int,
        tape: tuple[_TapeEntry, ...],
        num_parameters: int,
        fingerprint: tuple,
        name: str = "program",
    ) -> None:
        self._num_qubits = num_qubits
        self._tape = tape
        self._num_parameters = num_parameters
        self._fingerprint = fingerprint
        self.name = name

    # -- properties -----------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def num_parameters(self) -> int:
        """Number of parameter slots one execution row must provide."""
        return self._num_parameters

    @property
    def num_instructions(self) -> int:
        return len(self._tape)

    @property
    def fingerprint(self) -> tuple:
        """Hashable structure key: programs with equal fingerprints execute
        identically and may be batched together."""
        return self._fingerprint

    @property
    def tape(self) -> tuple[_TapeEntry, ...]:
        """The compiled instruction tape (read-only).

        Exposed for alternative executors that re-interpret the same
        structure — the Pauli-propagation kernel walks it in reverse to
        build its conjugation plan, resolving each entry's parameter specs
        exactly like :meth:`execute` does.
        """
        return self._tape

    def __repr__(self) -> str:
        return (
            f"CircuitProgram(name={self.name!r}, num_qubits={self._num_qubits}, "
            f"instructions={len(self._tape)}, parameters={self._num_parameters})"
        )

    # -- execution ------------------------------------------------------------

    def execute(self, parameters: np.ndarray, initial: np.ndarray) -> np.ndarray:
        """Evolve a whole batch of parameter rows as one stacked array.

        ``parameters`` is ``(batch, num_parameters)`` (a single row is
        accepted); ``initial`` is the stacked ``(batch, 2**n)`` initial
        amplitudes.  Returns the prepared ``(batch, 2**n)`` amplitudes,
        bit-identical per row to binding and evolving each row alone.
        """
        rows = np.asarray(parameters, dtype=float)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.shape[1] != self._num_parameters:
            raise ValueError(
                f"program expects {self._num_parameters} parameters per row, "
                f"got {rows.shape[1]}"
            )
        batch = rows.shape[0]
        dim = 1 << self._num_qubits
        if initial.shape != (batch, dim):
            raise ValueError(
                f"initial amplitudes must have shape {(batch, dim)}, got {initial.shape}"
            )
        shape = (batch,) + (2,) * self._num_qubits
        tensor = initial.reshape(shape)
        for entry in self._tape:
            # Identical math to apply_gate_batched, with the moveaxis
            # transpose orders precomputed at compile time.
            matrices = self._entry_matrices(entry, rows, batch)
            k = len(entry.qubits)
            moved = tensor.transpose(entry.forward)
            arr = np.ascontiguousarray(moved).reshape(batch, 1 << k, -1)
            out = np.matmul(matrices, arr)
            tensor = out.reshape(shape).transpose(entry.backward)
        return tensor.reshape(batch, dim)

    def _entry_matrices(
        self, entry: _TapeEntry, rows: np.ndarray, batch: int
    ) -> np.ndarray:
        """Stacked ``(batch, 2**k, 2**k)`` gate matrices for one tape entry."""
        if entry.kind == _FIXED:
            return np.repeat(entry.matrix[None, :, :], batch, axis=0)
        if entry.kind == _ROTATION:
            _, slot, scale, offset = entry.specs[0]
            thetas = rows[:, slot]
            if scale != 1.0 or offset != 0.0:
                thetas = scale * thetas + offset
            return batched_rotation_matrices(entry.gate, thetas)
        return np.stack(
            [
                gate_matrix(
                    entry.gate, *(_evaluate_spec(spec, rows[row]) for spec in entry.specs)
                )
                for row in range(batch)
            ]
        )

    def tape_matrices(
        self, parameters: np.ndarray
    ) -> Iterator[tuple[str, tuple[int, ...], np.ndarray]]:
        """Yield ``(gate, qubits, stacked matrices)`` per tape entry.

        ``parameters`` is ``(batch, num_parameters)`` (a single row is
        accepted); each yielded ``matrices`` is the ``(batch, 2**k, 2**k)``
        stack for that entry, built through the *same* precompiled dispatch
        plan :meth:`execute` uses (fixed matrices repeated, single-angle
        rotations via the vectorized builders, generic entries per row) — so
        executors other than the statevector path (e.g. the density-matrix
        backend's ``U ρ U†`` evolution) consume bit-identical gate matrices.
        """
        rows = np.asarray(parameters, dtype=float)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.shape[1] != self._num_parameters:
            raise ValueError(
                f"program expects {self._num_parameters} parameters per row, "
                f"got {rows.shape[1]}"
            )
        batch = rows.shape[0]
        for entry in self._tape:
            yield entry.gate, entry.qubits, self._entry_matrices(entry, rows, batch)

    # -- materialisation ------------------------------------------------------

    def bound_instruction_params(self, parameters: np.ndarray) -> Iterator[tuple]:
        """Yield ``(gate, qubits, params)`` per tape entry, slots evaluated.

        Lets callers inspect a program execution (e.g. the Clifford backend's
        angle routing) without building circuit objects.  Lazy so consumers
        that reject early (routing checks) never evaluate the full tape.
        """
        row = np.asarray(parameters, dtype=float).ravel()
        for entry in self._tape:
            yield (
                entry.gate,
                entry.qubits,
                tuple(_evaluate_spec(spec, row) for spec in entry.specs),
            )

    def bind(self, parameters: np.ndarray) -> QuantumCircuit:
        """Materialise a fully bound :class:`QuantumCircuit` for one row.

        Only needed by per-request fallback paths (estimators that must
        re-execute circuits, the stabilizer simulator); batched dense
        execution goes through :meth:`execute` without circuit objects.
        """
        row = np.asarray(parameters, dtype=float).ravel()
        if row.size != self._num_parameters:
            raise ValueError(
                f"program expects {self._num_parameters} parameters, got {row.size}"
            )
        circuit = QuantumCircuit(self._num_qubits, name=self.name)
        instructions = circuit._instructions
        for gate, qubits, params in self.bound_instruction_params(row):
            instructions.append(Instruction(gate, qubits, params))
        return circuit


# -- compilation ----------------------------------------------------------------


def _param_spec(param, slot_index: dict[Parameter, int]) -> tuple:
    """Spec tuple for one instruction parameter of a template circuit."""
    if isinstance(param, Parameter):
        return (_SLOT, slot_index[param], 1.0, 0.0)
    if isinstance(param, ParameterExpression):
        return (_SLOT, slot_index[param.parameter], float(param.scale), float(param.offset))
    return (_CONST, float(param))


def _entry_kind_and_matrix(
    gate: str, specs: tuple[tuple, ...]
) -> tuple[int, np.ndarray | None]:
    """Classify one instruction into a dispatch-plan kind.

    The classification mirrors the legacy per-group stacking logic exactly:
    all-constant parameters use one precomputed matrix (single-angle rotation
    gates still built via the vectorized builder, so constants and slots run
    the same elementwise computation); a single slotted angle with a
    vectorized builder becomes one builder call over the whole batch; anything
    else falls back to per-row ``gate_matrix``.
    """
    if all(spec[0] == _CONST for spec in specs):
        if len(specs) == 1:
            stacked = batched_rotation_matrices(gate, np.array([specs[0][1]]))
            if stacked is not None:
                return _FIXED, stacked[0]
        return _FIXED, gate_matrix(gate, *(spec[1] for spec in specs))
    if (
        len(specs) == 1
        and specs[0][0] == _SLOT
        and batched_rotation_matrices(gate, np.zeros(1)) is not None
    ):
        return _ROTATION, None
    return _GENERIC, None


def _compile(
    num_qubits: int,
    entries: Sequence[tuple[str, tuple[int, ...], tuple[tuple, ...]]],
    num_parameters: int,
    name: str,
) -> CircuitProgram:
    """Build a program from ``(gate, qubits, specs)`` entries."""
    tape = []
    ndim = num_qubits + 1
    for gate, qubits, specs in entries:
        kind, matrix = _entry_kind_and_matrix(gate, specs)
        axes = tuple(1 + qubit for qubit in qubits)
        inner = tuple(range(1, len(qubits) + 1))
        tape.append(
            _TapeEntry(
                gate=gate,
                qubits=qubits,
                kind=kind,
                specs=specs,
                matrix=matrix,
                forward=_moveaxis_order(ndim, axes, inner),
                backward=_moveaxis_order(ndim, inner, axes),
            )
        )
    fingerprint = (
        num_qubits,
        num_parameters,
        tuple((gate, qubits, specs) for gate, qubits, specs in entries),
    )
    return CircuitProgram(
        num_qubits, tuple(tape), num_parameters, fingerprint, name=name
    )


# -- persistent program cache ---------------------------------------------------

_DEFAULT_CACHE_LIMIT = 256

_cache: OrderedDict[tuple, CircuitProgram] = OrderedDict()
_cache_limit = _DEFAULT_CACHE_LIMIT
_cache_hits = 0
_cache_misses = 0
_cache_evictions = 0


def _cache_lookup(key: tuple) -> CircuitProgram | None:
    global _cache_hits
    program = _cache.get(key)
    if program is not None:
        _cache_hits += 1
        _cache.move_to_end(key)
    return program


def _cache_store(key: tuple, program: CircuitProgram) -> None:
    global _cache_misses, _cache_evictions
    _cache_misses += 1
    _cache[key] = program
    while len(_cache) > _cache_limit:
        _cache.popitem(last=False)
        _cache_evictions += 1


def program_cache_stats() -> dict[str, int]:
    """Current persistent-cache statistics (hits/misses/evictions/size/limit)."""
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "evictions": _cache_evictions,
        "size": len(_cache),
        "limit": _cache_limit,
    }


def clear_program_cache() -> None:
    """Drop every cached program and reset the statistics."""
    global _cache_hits, _cache_misses, _cache_evictions
    _cache.clear()
    _cache_hits = _cache_misses = _cache_evictions = 0


def set_program_cache_limit(limit: int) -> None:
    """Set the maximum number of cached programs (LRU eviction beyond it)."""
    global _cache_limit, _cache_evictions
    if limit < 1:
        raise ValueError("program cache limit must be >= 1")
    _cache_limit = limit
    while len(_cache) > _cache_limit:
        _cache.popitem(last=False)
        _cache_evictions += 1


def compile_circuit_program(circuit: QuantumCircuit) -> CircuitProgram:
    """Compile a (possibly parameterized) template circuit into a program.

    Symbolic parameters become program slots ordered like
    ``circuit.parameters`` — the same order :meth:`QuantumCircuit.bind`
    consumes a value sequence in — so an optimizer's parameter vectors feed
    :meth:`CircuitProgram.execute` directly.  The compiled program is cached
    on the circuit's structure fingerprint: structurally identical circuits
    (any two instances of the same ansatz shape) share one program across
    clusters, rounds, and controller runs.
    """
    slot_index = {param: slot for slot, param in enumerate(circuit._parameters)}
    entries = tuple(
        (
            inst.gate,
            inst.qubits,
            tuple(_param_spec(param, slot_index) for param in inst.params),
        )
        for inst in circuit._instructions
    )
    key = ("template", circuit.num_qubits, len(slot_index), entries)
    cached = _cache_lookup(key)
    if cached is not None:
        return cached
    program = _compile(circuit.num_qubits, entries, len(slot_index), name=circuit.name)
    _cache_store(key, program)
    return program


def program_for_bound_circuit(
    circuit: QuantumCircuit,
) -> tuple[CircuitProgram, np.ndarray]:
    """Program + parameter row for an already-bound circuit.

    Every parameter of every parametric instruction is promoted to a program
    slot (tape order), so bound circuits sharing a gate/wiring sequence share
    one cached program regardless of their angles — exactly the grouping the
    batched backend used before programs existed.  Returns the shared program
    and this circuit's extracted parameter row.
    """
    if not circuit.is_bound():
        raise ValueError(
            "program_for_bound_circuit needs a fully bound circuit; "
            "compile parameterized templates with compile_circuit_program"
        )
    structure = []
    values: list[float] = []
    slot = 0
    for inst in circuit._instructions:
        if inst.params:
            specs = tuple(
                (_SLOT, slot + offset, 1.0, 0.0) for offset in range(len(inst.params))
            )
            slot += len(inst.params)
            values.extend(inst.params)
        else:
            specs = ()
        structure.append((inst.gate, inst.qubits, specs))
    entries = tuple(structure)
    key = ("bound", circuit.num_qubits, slot, entries)
    program = _cache_lookup(key)
    if program is None:
        program = _compile(circuit.num_qubits, entries, slot, name=circuit.name)
        _cache_store(key, program)
    return program, np.asarray(values, dtype=float)
