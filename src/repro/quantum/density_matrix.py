"""Density-matrix simulation with gate-attached noise.

Replaces Qiskit's density-matrix ``AerSimulator`` used in §8.7.  The state is
a dense 2^n x 2^n matrix, gates are applied as ``U rho U†`` on the relevant
qubit axes, and the channels of a :class:`~repro.quantum.noise.NoiseModel`
are applied after every gate they are attached to.  Readout error is folded
into Pauli-Z expectation values analytically.
"""

from __future__ import annotations

import numpy as np

from .circuit import QuantumCircuit
from .gates import gate_matrix
from .noise import KrausChannel, NoiseModel
from .pauli import PauliOperator, PauliString
from .statevector import Statevector

__all__ = ["DensityMatrix", "DensityMatrixSimulator"]

_MAX_QUBITS = 12


class DensityMatrix:
    """A mixed state on ``num_qubits`` qubits."""

    def __init__(self, data: np.ndarray) -> None:
        array = np.asarray(data, dtype=complex)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise ValueError("density matrix must be square")
        num_qubits = int(round(np.log2(array.shape[0])))
        if 2 ** num_qubits != array.shape[0]:
            raise ValueError("density matrix dimension must be a power of two")
        self.num_qubits = num_qubits
        self._data = array.copy()

    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        """|0...0><0...0|."""
        dim = 2 ** num_qubits
        data = np.zeros((dim, dim), dtype=complex)
        data[0, 0] = 1.0
        return cls(data)

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        """|psi><psi| for a pure state."""
        vector = state.data
        return cls(np.outer(vector, vector.conj()))

    @property
    def data(self) -> np.ndarray:
        """Copy of the matrix."""
        return self._data.copy()

    def trace(self) -> float:
        return float(np.trace(self._data).real)

    def purity(self) -> float:
        """Tr(rho^2); 1 for pure states, 1/2^n for the maximally mixed state."""
        return float(np.trace(self._data @ self._data).real)

    def expectation(self, operator: PauliOperator) -> float:
        """Tr(rho H)."""
        if operator.num_qubits != self.num_qubits:
            raise ValueError("qubit-count mismatch")
        value = 0.0 + 0.0j
        for pauli, coeff in operator.items():
            if coeff == 0:
                continue
            value += coeff * np.trace(self._data @ pauli.to_matrix())
        return float(value.real)

    def fidelity_with_pure(self, state: Statevector) -> float:
        """<psi|rho|psi> for a pure reference state."""
        vector = state.data
        return float(np.real(vector.conj() @ self._data @ vector))

    # -- evolution -------------------------------------------------------------

    def apply_unitary(self, matrix: np.ndarray, qubits: tuple[int, ...]) -> None:
        """Apply a k-qubit unitary on the listed qubits, in place."""
        full = _embed(matrix, qubits, self.num_qubits)
        self._data = full @ self._data @ full.conj().T

    def apply_channel(self, channel: KrausChannel, qubits: tuple[int, ...]) -> None:
        """Apply a Kraus channel on the listed qubits, in place."""
        if len(qubits) != channel.num_qubits:
            raise ValueError("channel and qubit count mismatch")
        new_data = np.zeros_like(self._data)
        for kraus in channel.operators:
            full = _embed(kraus, qubits, self.num_qubits)
            new_data += full @ self._data @ full.conj().T
        self._data = new_data


def _embed(matrix: np.ndarray, qubits: tuple[int, ...], num_qubits: int) -> np.ndarray:
    """Embed a k-qubit operator acting on ``qubits`` into the full Hilbert space."""
    k = len(qubits)
    dim = 2 ** num_qubits
    op_tensor = matrix.reshape((2,) * (2 * k))
    identity = np.eye(dim, dtype=complex).reshape((2,) * (2 * num_qubits))
    # Contract identity's "row" axes for the target qubits with op's column axes.
    result = np.tensordot(op_tensor, identity, axes=(list(range(k, 2 * k)), list(qubits)))
    result = np.moveaxis(result, list(range(k)), list(qubits))
    return result.reshape(dim, dim)


class DensityMatrixSimulator:
    """Run bound circuits under a :class:`NoiseModel` and estimate expectations."""

    def __init__(self, noise_model: NoiseModel | None = None) -> None:
        self.noise_model = noise_model or NoiseModel()
        self.circuits_run = 0

    def run(
        self, circuit: QuantumCircuit, initial_state: DensityMatrix | None = None
    ) -> DensityMatrix:
        """Simulate a bound circuit with noise channels attached to each gate."""
        if circuit.num_qubits > _MAX_QUBITS:
            raise ValueError(
                f"density-matrix simulation limited to {_MAX_QUBITS} qubits, "
                f"got {circuit.num_qubits}"
            )
        if not circuit.is_bound():
            raise ValueError("circuit has unbound parameters; call circuit.bind first")
        state = initial_state or DensityMatrix.zero_state(circuit.num_qubits)
        state = DensityMatrix(state.data)
        single_channels = self.noise_model.single_qubit_channels()
        two_channels = self.noise_model.two_qubit_channels()
        for inst in circuit.instructions:
            matrix = gate_matrix(inst.gate, *inst.params)  # type: ignore[arg-type]
            state.apply_unitary(matrix, inst.qubits)
            if len(inst.qubits) == 1:
                for channel in single_channels:
                    state.apply_channel(channel, inst.qubits)
            else:
                for channel in two_channels:
                    state.apply_channel(channel, inst.qubits)
                # Decoherence also affects both qubits of a two-qubit gate.
                for channel in single_channels:
                    for qubit in inst.qubits:
                        state.apply_channel(channel, (qubit,))
        self.circuits_run += 1
        return state

    def expectation(
        self,
        circuit: QuantumCircuit,
        operator: PauliOperator,
        initial_state: DensityMatrix | None = None,
    ) -> float:
        """Tr(rho H) with readout error folded into Z-basis expectations."""
        state = self.run(circuit, initial_state)
        value = state.expectation(operator)
        if self.noise_model.readout_error > 0:
            value = self._apply_readout_error(state, operator)
        return value

    def _apply_readout_error(self, state: DensityMatrix, operator: PauliOperator) -> float:
        """Contract each Pauli term by (1-2p)^weight to model symmetric readout flips."""
        p = self.noise_model.readout_error
        value = 0.0
        for pauli, coeff in operator.items():
            if coeff == 0:
                continue
            if pauli.is_identity:
                value += coeff.real
                continue
            contraction = (1.0 - 2.0 * p) ** pauli.weight
            term = np.trace(state._data @ pauli.to_matrix()).real
            value += coeff.real * contraction * term
        return float(value)
