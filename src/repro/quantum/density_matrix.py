"""Density-matrix simulation with gate-attached noise, sequential and batched.

Replaces Qiskit's density-matrix ``AerSimulator`` used in §8.7.  The state is
a dense 2^n x 2^n matrix, gates are applied as ``U rho U†`` on the relevant
qubit axes, the channels of a :class:`~repro.quantum.noise.NoiseModel` are
applied after every gate they are attached to, and readout error is folded
into Pauli expectation values analytically.

Two execution modes share one set of kernels:

* :class:`DensityMatrixSimulator` — run one bound circuit at a time (the
  per-request path every estimator fallback uses).
* :class:`DensityMatrixBackend` — the batched
  :class:`~repro.quantum.backend.ExecutionBackend`: requests are grouped by
  :class:`~repro.quantum.program.CircuitProgram` fingerprint and each group
  evolves as one stacked ``(batch, 2^n, 2^n)`` array, with gate matrices from
  the program's precompiled dispatch plan and each noise channel applied
  batch-wide as a single superoperator GEMM.

Bit-identity contract
---------------------
Batched noisy execution must reproduce the per-request
:class:`DensityMatrixSimulator` bit-for-bit, independent of batch
composition — the noisy extension of the PR 2 statevector invariant.  Both
modes therefore route every gate and channel through the *same* stacked
kernels below (the sequential simulator is the batch-of-one case), gate
matrices come from the same builders on both paths (the vectorized rotation
builders agree bit-for-bit with the scalar ones), and channels are applied
through the same cached :meth:`~repro.quantum.noise.KrausChannel.superoperator`
matrix.  ``tests/quantum/test_density_backend.py`` locks the contract down;
do not change gate/channel application here without re-verifying it.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .backend import (
    BACKEND_REGISTRY,
    BackendResult,
    ExecutionBackend,
    ExecutionRequest,
    request_initial_amplitudes,
    resolve_program_request,
)
from .circuit import QuantumCircuit
from .engine import compiled_pauli_operator
from .gates import gate_matrix
from .noise import KrausChannel, NoiseModel
from .pauli import PauliOperator
from .program import CircuitProgram
from .statevector import Statevector

__all__ = [
    "DensityMatrix",
    "DensityMatrixSimulator",
    "DensityMatrixBackend",
    "validate_density_matrix_qubits",
    "apply_unitary_to_density_batch",
    "apply_channel_to_density_batch",
    "noisy_term_vector",
]

_MAX_QUBITS = 12


def validate_density_matrix_qubits(num_qubits: int) -> None:
    """Reject executions too wide for dense density-matrix simulation.

    Called at wiring time (backend construction, cluster construction, the
    start of a batch) so the failure is an actionable message rather than a
    multi-gigabyte allocation deep inside evolution.
    """
    if num_qubits > _MAX_QUBITS:
        raise ValueError(
            f"density-matrix simulation is limited to {_MAX_QUBITS} qubits "
            f"(each execution holds a 2^{num_qubits} x 2^{num_qubits} complex "
            f"matrix); got {num_qubits} qubits — use the 'statevector' backend "
            "for noiseless runs, or reduce the problem size"
        )


# -- shared stacked kernels ------------------------------------------------------


def _apply_stacked_matrices(
    tensor: np.ndarray, matrices: np.ndarray, axes: Sequence[int]
) -> np.ndarray:
    """Left-multiply stacked operator matrices onto the listed tensor axes.

    ``tensor`` has shape ``(batch,) + (2,) * m``; ``matrices`` is
    ``(batch, 2**k, 2**k)`` (or a broadcastable ``(2**k, 2**k)``) with
    ``k = len(axes)``.  The stacked ``matmul`` performs one GEMM per batch row
    with batch-independent operand shapes, so each row is bit-identical to
    applying its matrix alone — the invariant the parity tests pin down.
    """
    k = len(axes)
    batch = tensor.shape[0]
    moved = np.moveaxis(tensor, axes, range(1, k + 1))
    rest = moved.shape[k + 1 :]
    arr = np.ascontiguousarray(moved).reshape(batch, 1 << k, -1)
    out = np.matmul(matrices, arr)
    out = out.reshape((batch,) + (2,) * k + rest)
    return np.moveaxis(out, range(1, k + 1), axes)


def apply_unitary_to_density_batch(
    tensor: np.ndarray,
    matrices: np.ndarray,
    qubits: tuple[int, ...],
    num_qubits: int,
) -> np.ndarray:
    """``U rho U†`` across a stacked density tensor, per-slice GEMMs.

    ``tensor`` has shape ``(batch,) + (2,) * (2 * num_qubits)`` — row axes
    first, column axes second; ``matrices`` is ``(batch, 2**k, 2**k)``.  The
    unitary multiplies the row axes and its elementwise conjugate the column
    axes (``rho' = U rho U†`` in index form).
    """
    row_axes = [1 + qubit for qubit in qubits]
    col_axes = [1 + num_qubits + qubit for qubit in qubits]
    tensor = _apply_stacked_matrices(tensor, matrices, row_axes)
    return _apply_stacked_matrices(tensor, np.conj(matrices), col_axes)


def apply_channel_to_density_batch(
    tensor: np.ndarray,
    superoperator: np.ndarray,
    qubits: tuple[int, ...],
    num_qubits: int,
) -> np.ndarray:
    """Apply one channel batch-wide as a single superoperator GEMM.

    ``superoperator`` is the channel's ``Σ_k K ⊗ conj(K)`` matrix (see
    :meth:`~repro.quantum.noise.KrausChannel.superoperator`); it acts on the
    combined (row, column) axes of the target qubits, so a whole batch of
    density matrices absorbs the channel in one ``(4**k, 4**k)`` product
    instead of a pair of matrix products per Kraus operator per request.
    """
    axes = [1 + qubit for qubit in qubits] + [
        1 + num_qubits + qubit for qubit in qubits
    ]
    return _apply_stacked_matrices(tensor, superoperator, axes)


def noisy_term_vector(engine, rho: np.ndarray, readout_error: float) -> np.ndarray:
    """Per-term expectation values of an evolved density matrix, with
    identity terms pinned to exactly 1 and symmetric readout error folded
    analytically (``(1 - 2p)^weight`` per term).

    The single noise-layer fold shared by the batched backend and the
    per-request estimator — one implementation, so the two paths cannot
    drift apart (the bit-identity contract).
    """
    vector = engine.expectation_values_density(rho)
    vector[engine.identity_mask] = 1.0
    if readout_error > 0:
        vector = vector * (1.0 - 2.0 * readout_error) ** engine.weights
    return vector


class DensityMatrix:
    """A mixed state on ``num_qubits`` qubits."""

    def __init__(self, data: np.ndarray) -> None:
        array = np.asarray(data, dtype=complex)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise ValueError("density matrix must be square")
        num_qubits = int(round(np.log2(array.shape[0])))
        if 2 ** num_qubits != array.shape[0]:
            raise ValueError("density matrix dimension must be a power of two")
        self.num_qubits = num_qubits
        self._data = array.copy()

    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        """|0...0><0...0|."""
        dim = 2 ** num_qubits
        data = np.zeros((dim, dim), dtype=complex)
        data[0, 0] = 1.0
        return cls(data)

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        """|psi><psi| for a pure state."""
        vector = state.data
        return cls(np.outer(vector, vector.conj()))

    @property
    def data(self) -> np.ndarray:
        """Copy of the matrix."""
        return self._data.copy()

    def trace(self) -> float:
        return float(np.trace(self._data).real)

    def purity(self) -> float:
        """Tr(rho^2); 1 for pure states, 1/2^n for the maximally mixed state."""
        return float(np.trace(self._data @ self._data).real)

    def expectation(self, operator: PauliOperator) -> float:
        """Tr(rho H)."""
        if operator.num_qubits != self.num_qubits:
            raise ValueError("qubit-count mismatch")
        value = 0.0 + 0.0j
        for pauli, coeff in operator.items():
            if coeff == 0:
                continue
            value += coeff * np.trace(self._data @ pauli.to_matrix())
        return float(value.real)

    def fidelity_with_pure(self, state: Statevector) -> float:
        """<psi|rho|psi> for a pure reference state."""
        vector = state.data
        return float(np.real(vector.conj() @ self._data @ vector))

    # -- evolution -------------------------------------------------------------

    def _as_batch_tensor(self) -> np.ndarray:
        """The matrix as a batch-of-one tensor for the shared kernels."""
        return self._data.reshape((1,) + (2,) * (2 * self.num_qubits))

    def apply_unitary(self, matrix: np.ndarray, qubits: tuple[int, ...]) -> None:
        """Apply a k-qubit unitary on the listed qubits, in place.

        Routed through the same stacked kernel the batched backend uses (with
        a batch of one), so sequential and batched evolution are bit-identical
        by construction.
        """
        matrices = np.asarray(matrix, dtype=complex)[None, :, :]
        out = apply_unitary_to_density_batch(
            self._as_batch_tensor(), matrices, qubits, self.num_qubits
        )
        self._data = out.reshape(self._data.shape)

    def apply_channel(self, channel: KrausChannel, qubits: tuple[int, ...]) -> None:
        """Apply a Kraus channel on the listed qubits, in place (same
        superoperator kernel as batched execution)."""
        if len(qubits) != channel.num_qubits:
            raise ValueError("channel and qubit count mismatch")
        out = apply_channel_to_density_batch(
            self._as_batch_tensor(), channel.superoperator(), qubits, self.num_qubits
        )
        self._data = out.reshape(self._data.shape)


class DensityMatrixSimulator:
    """Run bound circuits under a :class:`NoiseModel` and estimate expectations.

    The per-request form of noisy execution: one circuit, one density matrix,
    one Python loop over instructions.  Shares its gate/channel kernels with
    :class:`DensityMatrixBackend`, which executes whole request batches as
    stacked arrays — bit-identically to this simulator.
    """

    def __init__(self, noise_model: NoiseModel | None = None) -> None:
        self.noise_model = noise_model or NoiseModel()
        self.circuits_run = 0

    def run(
        self, circuit: QuantumCircuit, initial_state: DensityMatrix | None = None
    ) -> DensityMatrix:
        """Simulate a bound circuit with noise channels attached to each gate."""
        validate_density_matrix_qubits(circuit.num_qubits)
        if not circuit.is_bound():
            raise ValueError("circuit has unbound parameters; call circuit.bind first")
        state = initial_state or DensityMatrix.zero_state(circuit.num_qubits)
        state = DensityMatrix(state.data)
        # is_noiseless short-circuits channel application: both lists are
        # empty and evolution is purely unitary.
        single_channels = self.noise_model.single_qubit_channels()
        two_channels = self.noise_model.two_qubit_channels()
        for inst in circuit.instructions:
            matrix = gate_matrix(inst.gate, *inst.params)  # type: ignore[arg-type]
            state.apply_unitary(matrix, inst.qubits)
            if len(inst.qubits) == 1:
                for channel in single_channels:
                    state.apply_channel(channel, inst.qubits)
            else:
                for channel in two_channels:
                    state.apply_channel(channel, inst.qubits)
                # Decoherence also affects both qubits of a two-qubit gate.
                for channel in single_channels:
                    for qubit in inst.qubits:
                        state.apply_channel(channel, (qubit,))
        self.circuits_run += 1
        return state

    def expectation(
        self,
        circuit: QuantumCircuit,
        operator: PauliOperator,
        initial_state: DensityMatrix | None = None,
    ) -> float:
        """Tr(rho H) with readout error folded into Z-basis expectations."""
        state = self.run(circuit, initial_state)
        value = state.expectation(operator)
        if self.noise_model.readout_error > 0:
            value = self._apply_readout_error(state, operator)
        return value

    def _apply_readout_error(self, state: DensityMatrix, operator: PauliOperator) -> float:
        """Contract each Pauli term by (1-2p)^weight to model symmetric readout flips."""
        p = self.noise_model.readout_error
        value = 0.0
        for pauli, coeff in operator.items():
            if coeff == 0:
                continue
            if pauli.is_identity:
                value += coeff.real
                continue
            contraction = (1.0 - 2.0 * p) ** pauli.weight
            term = np.trace(state._data @ pauli.to_matrix()).real
            value += coeff.real * contraction * term
        return float(value)


class DensityMatrixBackend(ExecutionBackend):
    """Batched noisy execution: stacked ``U ρ U†`` evolution per program group.

    Every request is resolved to a (program, parameter-row) pair exactly like
    the statevector backend; each program group then evolves as one stacked
    ``(batch, 2^n, 2^n)`` density array — gate matrices from the program's
    precompiled dispatch plan, each attached noise channel applied batch-wide
    as a single cached-superoperator GEMM, readout error folded analytically
    into the returned term vectors.  Per-slice results are bit-identical to
    running each request alone through :class:`DensityMatrixSimulator`
    (the parity suite's contract), so batch composition never shows up in
    the numbers.

    Term vectors are expectation values *under this backend's noise model*;
    :class:`~repro.quantum.sampling.DensityMatrixEstimator` declares
    ``requires_backend = "density_matrix"`` so the round scheduler only
    batches through a matching backend (anything else falls back to the
    per-request path, which is always correct).
    """

    name = "density_matrix"
    #: make_execution_backend forwards a noise model to this constructor.
    accepts_noise_model = True
    #: Mixed states: prepared pure statevectors cannot be attached, so the
    #: scheduler never pairs this backend with a states-consuming estimator.
    provides_states = False

    def __init__(
        self,
        noise_model: NoiseModel | None = None,
        *,
        num_qubits: int | None = None,
    ) -> None:
        # ``num_qubits`` is an opt-in width check for direct construction;
        # the config wiring path cannot know the width this early, so its
        # guard lives at cluster construction and batch entry instead.
        self.noise_model = noise_model or NoiseModel()
        if num_qubits is not None:
            validate_density_matrix_qubits(num_qubits)
        self.batches_run = 0
        self.requests_run = 0
        #: Requests that arrived on the program path (no circuit object).
        self.program_requests = 0
        # Channel plan: one cached superoperator per attached channel, in the
        # exact order the sequential simulator applies them.  is_noiseless
        # short-circuits channel application entirely (both plans empty).
        if self.noise_model.is_noiseless:
            self._single_superops: tuple[np.ndarray, ...] = ()
            self._two_superops: tuple[np.ndarray, ...] = ()
        else:
            self._single_superops = tuple(
                channel.superoperator()
                for channel in self.noise_model.single_qubit_channels()
            )
            self._two_superops = tuple(
                channel.superoperator()
                for channel in self.noise_model.two_qubit_channels()
            )

    def run_batch(
        self, requests: Sequence[ExecutionRequest], *, need_states: bool = False
    ) -> list[BackendResult]:
        if need_states:
            raise ValueError(
                "DensityMatrixBackend prepares mixed states and cannot attach "
                "pure statevectors (need_states=True); use an estimator that "
                "consumes term vectors, or a statevector backend"
            )
        requests = list(requests)
        results: list[BackendResult | None] = [None] * len(requests)
        rows: list[np.ndarray | None] = [None] * len(requests)
        groups: dict[tuple, list[int]] = {}
        programs: dict[tuple, CircuitProgram] = {}
        for index, request in enumerate(requests):
            # Validate every width before any 2^n x 2^n allocation happens.
            validate_density_matrix_qubits(request.num_qubits)
            program, row = resolve_program_request(request)
            if request.program is not None:
                self.program_requests += 1
            key = program.fingerprint
            programs.setdefault(key, program)
            groups.setdefault(key, []).append(index)
            rows[index] = row
        readout = self.noise_model.readout_error
        for key, indices in groups.items():
            program = programs[key]
            num_qubits = program.num_qubits
            dim = 1 << num_qubits
            batch = len(indices)
            rhos = np.empty((batch, dim, dim), dtype=complex)
            for slot, index in enumerate(indices):
                amplitudes = request_initial_amplitudes(requests[index], num_qubits)
                rhos[slot] = np.outer(amplitudes, amplitudes.conj())
            parameter_matrix = (
                np.stack([rows[index] for index in indices])
                if program.num_parameters
                else np.zeros((batch, 0))
            )
            tensor = rhos.reshape((batch,) + (2,) * (2 * num_qubits))
            for gate, qubits, matrices in program.tape_matrices(parameter_matrix):
                tensor = apply_unitary_to_density_batch(
                    tensor, matrices, qubits, num_qubits
                )
                tensor = self._apply_gate_noise(tensor, qubits, num_qubits)
            rhos = tensor.reshape(batch, dim, dim)
            for slot, index in enumerate(indices):
                request = requests[index]
                engine = compiled_pauli_operator(request.operator)
                vector = noisy_term_vector(engine, rhos[slot], readout)
                results[index] = BackendResult(
                    term_basis=engine.paulis,
                    term_vector=vector,
                    state=None,
                    backend_name=self.name,
                    tag=request.tag,
                )
        self.batches_run += 1
        self.requests_run += len(requests)
        return results  # type: ignore[return-value]

    def _apply_gate_noise(
        self, tensor: np.ndarray, qubits: tuple[int, ...], num_qubits: int
    ) -> np.ndarray:
        """Channels attached after one gate, in the sequential simulator's order."""
        if len(qubits) == 1:
            for superop in self._single_superops:
                tensor = apply_channel_to_density_batch(
                    tensor, superop, qubits, num_qubits
                )
            return tensor
        for superop in self._two_superops:
            tensor = apply_channel_to_density_batch(tensor, superop, qubits, num_qubits)
        # Decoherence also affects both qubits of a two-qubit gate.
        for superop in self._single_superops:
            for qubit in qubits:
                tensor = apply_channel_to_density_batch(
                    tensor, superop, (qubit,), num_qubits
                )
        return tensor


BACKEND_REGISTRY["density_matrix"] = DensityMatrixBackend
