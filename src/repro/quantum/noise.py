"""Noise channels and synthetic backend calibration profiles.

The paper's noisy studies (§7.4, §8.4, §8.7) use Qiskit density-matrix
simulation with device-calibrated noise models for five IBM backends, plus a
simple depolarising layer for the large-scale Pauli-propagation experiments.
Neither the devices nor their calibration data are available offline, so this
module provides:

* Kraus-operator noise channels (depolarising, amplitude damping, dephasing,
  bit-flip) consumed by :mod:`repro.quantum.density_matrix`;
* :class:`BackendNoiseProfile` — synthetic per-"backend" calibration profiles
  (1q/2q depolarising rates, readout error, T1/T2-derived dephasing) whose
  relative ordering mirrors publicly reported error rates of the Hanoi, Cairo,
  Mumbai, Kolkata and Auckland devices (Table 2 analogues);
* an analytic global-depolarising expectation correction used with the
  Pauli-propagation simulator (Fig. 9 noisy bars).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "KrausChannel",
    "depolarizing_channel",
    "amplitude_damping_channel",
    "dephasing_channel",
    "bit_flip_channel",
    "two_qubit_depolarizing_channel",
    "NoiseModel",
    "BackendNoiseProfile",
    "BACKEND_PROFILES",
    "get_backend_profile",
    "global_depolarizing_expectation",
]

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)


@dataclass(frozen=True)
class KrausChannel:
    """A CPTP map given by its Kraus operators."""

    name: str
    operators: tuple[np.ndarray, ...]
    num_qubits: int

    def is_trace_preserving(self, tolerance: float = 1e-9) -> bool:
        """Check Σ K†K = I."""
        dim = 2 ** self.num_qubits
        total = np.zeros((dim, dim), dtype=complex)
        for kraus in self.operators:
            total += kraus.conj().T @ kraus
        return bool(np.allclose(total, np.eye(dim), atol=tolerance))

    def superoperator(self) -> np.ndarray:
        """``Σ_k K ⊗ conj(K)`` — the channel as one matrix on vectorised ρ.

        Acting on the flattened (row ⊗ column) index of the target qubits,
        one matrix product applies the whole channel at once — the form the
        density-matrix kernels use to apply a channel to an entire execution
        batch in a single stacked GEMM instead of one pair of matrix
        products per Kraus operator.  Computed once per channel instance and
        cached; treat the returned array as read-only.
        """
        cached = self.__dict__.get("_superoperator")
        if cached is None:
            dim = (2 ** self.num_qubits) ** 2
            cached = np.zeros((dim, dim), dtype=complex)
            for kraus in self.operators:
                cached += np.kron(kraus, kraus.conj())
            object.__setattr__(self, "_superoperator", cached)
        return cached


def depolarizing_channel(probability: float) -> KrausChannel:
    """Single-qubit depolarising channel with error probability ``probability``."""
    _validate_probability(probability)
    p = probability
    operators = (
        np.sqrt(1 - 3 * p / 4) * _I,
        np.sqrt(p / 4) * _X,
        np.sqrt(p / 4) * _Y,
        np.sqrt(p / 4) * _Z,
    )
    return KrausChannel("depolarizing", operators, 1)


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """Amplitude damping (T1 relaxation) with damping rate ``gamma``."""
    _validate_probability(gamma)
    k0 = np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=complex)
    return KrausChannel("amplitude_damping", (k0, k1), 1)


def dephasing_channel(probability: float) -> KrausChannel:
    """Pure dephasing (T2) channel."""
    _validate_probability(probability)
    operators = (np.sqrt(1 - probability) * _I, np.sqrt(probability) * _Z)
    return KrausChannel("dephasing", operators, 1)


def bit_flip_channel(probability: float) -> KrausChannel:
    """Bit-flip channel."""
    _validate_probability(probability)
    operators = (np.sqrt(1 - probability) * _I, np.sqrt(probability) * _X)
    return KrausChannel("bit_flip", operators, 1)


def two_qubit_depolarizing_channel(probability: float) -> KrausChannel:
    """Two-qubit depolarising channel (uniform over the 15 non-identity Paulis)."""
    _validate_probability(probability)
    p = probability
    paulis = [_I, _X, _Y, _Z]
    operators = []
    for i, left in enumerate(paulis):
        for j, right in enumerate(paulis):
            weight = 1 - 15 * p / 16 if (i, j) == (0, 0) else p / 16
            operators.append(np.sqrt(weight) * np.kron(left, right))
    return KrausChannel("two_qubit_depolarizing", tuple(operators), 2)


def _validate_probability(probability: float) -> None:
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")


@dataclass
class NoiseModel:
    """Gate-attached noise: channels applied after every 1q / 2q gate.

    ``readout_error`` is the symmetric probability of flipping a measured bit.
    """

    single_qubit_error: float = 0.0
    two_qubit_error: float = 0.0
    readout_error: float = 0.0
    dephasing: float = 0.0
    amplitude_damping: float = 0.0
    name: str = "custom"

    def single_qubit_channels(self) -> list[KrausChannel]:
        """Channels applied after every single-qubit gate."""
        channels = []
        if self.single_qubit_error > 0:
            channels.append(depolarizing_channel(self.single_qubit_error))
        if self.dephasing > 0:
            channels.append(dephasing_channel(self.dephasing))
        if self.amplitude_damping > 0:
            channels.append(amplitude_damping_channel(self.amplitude_damping))
        return channels

    def two_qubit_channels(self) -> list[KrausChannel]:
        """Channels applied after every two-qubit gate (per qubit depolarising pair)."""
        channels = []
        if self.two_qubit_error > 0:
            channels.append(two_qubit_depolarizing_channel(self.two_qubit_error))
        return channels

    @property
    def is_noiseless(self) -> bool:
        return (
            self.single_qubit_error == 0
            and self.two_qubit_error == 0
            and self.readout_error == 0
            and self.dephasing == 0
            and self.amplitude_damping == 0
        )


@dataclass(frozen=True)
class BackendNoiseProfile:
    """A synthetic stand-in for one IBM backend's calibration data (Table 2)."""

    name: str
    single_qubit_error: float
    two_qubit_error: float
    readout_error: float
    t1_us: float
    t2_us: float

    def to_noise_model(self, gate_time_us: float = 0.05) -> NoiseModel:
        """Convert the calibration numbers into a :class:`NoiseModel`.

        Decoherence during one gate of duration ``gate_time_us`` is folded
        into amplitude-damping and dephasing probabilities.
        """
        gamma = 1.0 - float(np.exp(-gate_time_us / self.t1_us))
        dephase = 1.0 - float(np.exp(-gate_time_us / self.t2_us))
        return NoiseModel(
            single_qubit_error=self.single_qubit_error,
            two_qubit_error=self.two_qubit_error,
            readout_error=self.readout_error,
            dephasing=dephase,
            amplitude_damping=gamma,
            name=self.name,
        )


# Relative error magnitudes chosen so the fidelity ordering of Table 2
# (Cairo/Hanoi best, Kolkata/Auckland worst) is reproduced.
BACKEND_PROFILES: dict[str, BackendNoiseProfile] = {
    "hanoi": BackendNoiseProfile("hanoi", 3.0e-4, 8.0e-3, 1.2e-2, 180.0, 150.0),
    "cairo": BackendNoiseProfile("cairo", 2.5e-4, 7.0e-3, 1.0e-2, 190.0, 160.0),
    "mumbai": BackendNoiseProfile("mumbai", 5.0e-4, 1.2e-2, 2.0e-2, 140.0, 110.0),
    "kolkata": BackendNoiseProfile("kolkata", 7.0e-4, 1.6e-2, 2.8e-2, 110.0, 90.0),
    "auckland": BackendNoiseProfile("auckland", 6.0e-4, 1.4e-2, 2.4e-2, 120.0, 100.0),
}


def get_backend_profile(name: str) -> BackendNoiseProfile:
    """Look up a synthetic backend profile by (case-insensitive) name."""
    try:
        return BACKEND_PROFILES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(BACKEND_PROFILES))
        raise ValueError(f"unknown backend {name!r}; known backends: {known}") from None


def global_depolarizing_expectation(
    exact_value: float,
    identity_value: float,
    layers: int,
    error_rate: float,
) -> float:
    """Expectation value after ``layers`` global depolarising layers.

    A global depolarising channel with rate p maps rho to
    ``(1-p) rho + p I/2^n``; expectation values therefore contract toward the
    maximally mixed value.  Used for the noisy large-scale bars of Fig. 9,
    mirroring the depolarising layer of [54] in the paper.
    """
    if layers < 0:
        raise ValueError("layers must be >= 0")
    _validate_probability(error_rate)
    survival = (1.0 - error_rate) ** layers
    return survival * exact_value + (1.0 - survival) * identity_value
