"""Heisenberg-picture Pauli propagation: vectorized kernel + execution backend.

Stand-in for PauliPropagation.jl used by the paper for its 28- and 50-qubit
benchmarks (§7.4, Fig. 9).  The observable (a Pauli-sum Hamiltonian) is
conjugated backwards through the circuit gate by gate,

    <psi0| U† H U |psi0>,

keeping the operator in the Pauli basis throughout.  Conjugation through a
k-qubit gate is computed by decomposing ``U† P U`` in the local 4^k Pauli
basis, so the propagation supports every gate in the registry, Clifford or
not.  Truncation by Pauli weight and by coefficient magnitude keeps the term
count bounded (the paper truncates at weight 8).

Two implementations live here:

* :class:`PauliPropagationSimulator` — the original dict-of-label-strings
  reference evaluator (one Python dict op per term per gate).  It is kept as
  the semantic reference and as the baseline the benchmark suite measures
  the vectorized kernel against.
* :class:`CompiledPropagation` — the compile-once vectorized kernel.  Pauli
  strings are packed X/Z bitmask integer arrays (the same representation
  family as :class:`~repro.quantum.engine.CompiledPauliOperator`, extended to
  multi-word ``uint64`` so 50–100 qubit operators fit), and each gate's
  conjugation rule is applied to *all* surviving terms at once via NumPy
  gather/scatter on the packed arrays.  Clifford gates reduce to pure
  bit-twiddling with a sign array (their conjugation is a signed Pauli
  bijection, so the single-branch fast path skips deduplication entirely);
  non-Clifford gates expand through the cached local 4^k decomposition,
  vectorized per branch.  Weight/coefficient truncation runs on the whole
  term array with ``np.abs``/popcount masks instead of per-term Python loops.

:class:`PauliPropagationBackend` promotes the kernel to a first-class
:class:`~repro.quantum.backend.ExecutionBackend` producing the term-vector
payloads the exact estimators already consume, and
:class:`WidthRoutedBackend` ("auto") routes requests wider than the dense
cap to propagation — mirroring how ``CliffordBackend`` routes by angle.

Conjugation tables are cached in two parts (see :func:`conjugation_cache_stats`):
an angle-independent branch *structure* per rotation-gate name (the sparsity
pattern and the ``a + b·cosθ + c·sinθ`` coefficient model, exact for every
Pauli-generator rotation in the registry), plus cheap per-angle coefficient
evaluation.  A fresh rotation angle per optimizer step therefore hits the
cache instead of re-deriving the 4^k decomposition — the old table cache was
keyed on raw float params and missed on every step.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from .backend import (
    BACKEND_REGISTRY,
    BackendResult,
    ExecutionBackend,
    ExecutionRequest,
    StatevectorBackend,
    _request_bitstring,
    resolve_program_request,
)
from .circuit import QuantumCircuit
from .engine import _popcount, compiled_pauli_operator
from .gates import gate_matrix
from .pauli import PauliOperator, pauli_matrix
from .program import _CONST, _SLOT, CircuitProgram, _evaluate_spec, program_for_bound_circuit

__all__ = [
    "PauliPropagationConfig",
    "PauliPropagationSimulator",
    "CompiledPropagation",
    "PropagationOutcome",
    "PauliPropagationBackend",
    "WidthRoutedBackend",
    "conjugation_cache_stats",
    "clear_conjugation_cache",
]


@dataclass(frozen=True)
class PauliPropagationConfig:
    """Truncation policy for the propagation."""

    max_weight: int = 8
    coefficient_threshold: float = 1e-8
    max_terms: int = 200_000

    def __post_init__(self) -> None:
        if self.max_weight < 1:
            raise ValueError("max_weight must be >= 1")
        if self.coefficient_threshold < 0:
            raise ValueError("coefficient_threshold must be >= 0")
        if self.max_terms < 1:
            raise ValueError("max_terms must be >= 1")


# -- local Pauli algebra ------------------------------------------------------
#
# Local Pauli factors are indexed by the digit d = x_bit + 2*z_bit:
# 0 = I, 1 = X, 2 = Z, 3 = Y.  A k-local index is the base-4 number whose
# most significant digit belongs to the gate's first qubit, matching the
# tensor-factor order of the registry's gate matrices.

_DIGIT_LABELS = "IXZY"
_DIGIT_OF_LABEL = {label: digit for digit, label in enumerate(_DIGIT_LABELS)}

#: Branch-compression threshold: coefficients at or below this are structural
#: zeros of the decomposition (numerical residue of the trace computation).
_CHOP = 1e-12

#: Registry gates of the form exp(-i θ/2 G) with G a Pauli string (up to a
#: global phase) — their conjugation coefficients are exactly affine in
#: (cos θ, sin θ) with integer structure constants.
_TRIG_GATES = frozenset({"rx", "ry", "rz", "p", "rzz", "rxx", "ryy"})


@lru_cache(maxsize=8)
def _local_pauli_stack(k: int) -> np.ndarray:
    """``(4^k, 2^k, 2^k)`` stack of local Pauli matrices in digit order."""
    singles = np.stack([pauli_matrix(label) for label in _DIGIT_LABELS])
    stack = np.ones((1, 1, 1), dtype=complex)
    for _ in range(k):
        size = stack.shape[1]
        stack = np.einsum("pij,qkl->pqikjl", stack, singles).reshape(
            stack.shape[0] * 4, size * 2, size * 2
        )
    return stack


def _snap_integers(table: np.ndarray) -> np.ndarray:
    """Snap coefficients within ``_CHOP`` of an integer to that integer.

    The structure constants of Clifford conjugations and Pauli-generator
    rotations are exactly 0/±1; the dense trace computation leaves ~1e-16
    residue on them.  Snapping keeps Clifford propagation exact without
    disturbing genuinely non-integer coefficients (cos/sin of generic
    angles are never within 1e-12 of an integer unless the angle is itself
    within ~1e-6 of a Clifford point, where the snap error is harmless).
    """
    rounded = np.round(table)
    near = np.abs(table - rounded) < _CHOP
    table[near] = rounded[near]
    return table


def _dense_conjugation(matrix: np.ndarray, k: int) -> np.ndarray:
    """Real ``(4^k, 4^k)`` table ``C`` with ``U† P_i U = Σ_o C[i, o] P_o``.

    Rows/columns are in digit order.  Coefficients are real because ``U† P U``
    is Hermitian for Hermitian ``P``; the ~1e-16 imaginary residue is dropped
    (the same Hermitian-observable convention the engine uses).
    """
    stack = _local_pauli_stack(k)
    conjugated = matrix.conj().T @ stack @ matrix
    table = np.einsum("oab,iab->io", stack.conj(), conjugated).real / (2**k)
    return _snap_integers(table)


@dataclass(frozen=True)
class _GateTable:
    """Chop-compressed conjugation branches of one concrete gate.

    Input ``l`` expands to branches ``outputs[offsets[l] : offsets[l] +
    counts[l]]`` with coefficients ``coeffs[...]``.  ``max_branches == 1``
    marks a signed Pauli bijection (Clifford-like): conjugation preserves the
    Hilbert–Schmidt inner product, so distinct inputs map to distinct
    outputs and the vectorized kernel can skip deduplication.
    """

    counts: np.ndarray
    offsets: np.ndarray
    outputs: np.ndarray
    coeffs: np.ndarray
    max_branches: int


def _compress_table(dense: np.ndarray) -> _GateTable:
    keep = np.abs(dense) > _CHOP
    counts = keep.sum(axis=1).astype(np.int64)
    offsets = np.cumsum(counts) - counts
    _, outputs = np.nonzero(keep)
    return _GateTable(
        counts=counts,
        offsets=offsets,
        outputs=outputs.astype(np.int64),
        coeffs=np.ascontiguousarray(dense[keep], dtype=np.float64),
        max_branches=int(counts.max(initial=0)),
    )


@dataclass(frozen=True)
class _TrigStructure:
    """Angle-independent branch structure of a trig-linear rotation gate.

    Candidate branch ``j`` maps local input ``inputs[j]`` to output
    ``outputs[j]`` with coefficient ``alpha[j] + beta[j]·cosθ +
    gamma[j]·sinθ`` — solved exactly from the dense decompositions at
    θ ∈ {0, π, π/2}.  Candidates are sorted by input index.
    """

    k: int
    inputs: np.ndarray
    outputs: np.ndarray
    alpha: np.ndarray
    beta: np.ndarray
    gamma: np.ndarray


def _build_trig_structure(gate: str) -> _TrigStructure:
    matrix = gate_matrix(gate, 0.0)
    k = int(round(np.log2(matrix.shape[0])))
    table_zero = _dense_conjugation(gate_matrix(gate, 0.0), k)
    table_pi = _dense_conjugation(gate_matrix(gate, np.pi), k)
    table_half = _dense_conjugation(gate_matrix(gate, np.pi / 2), k)
    alpha = _snap_integers((table_zero + table_pi) / 2.0)
    beta = _snap_integers((table_zero - table_pi) / 2.0)
    gamma = _snap_integers(table_half - alpha)
    candidate = (alpha != 0) | (beta != 0) | (gamma != 0)
    inputs, outputs = np.nonzero(candidate)
    return _TrigStructure(
        k=k,
        inputs=inputs.astype(np.int64),
        outputs=outputs.astype(np.int64),
        alpha=alpha[candidate],
        beta=beta[candidate],
        gamma=gamma[candidate],
    )


def _trig_table(structure: _TrigStructure, theta: float) -> _GateTable:
    """Per-angle branch table from a cached structure — no decomposition."""
    coeffs = (
        structure.alpha
        + np.cos(theta) * structure.beta
        + np.sin(theta) * structure.gamma
    )
    keep = np.abs(coeffs) > _CHOP
    inputs = structure.inputs[keep]
    counts = np.bincount(inputs, minlength=4**structure.k).astype(np.int64)
    return _GateTable(
        counts=counts,
        offsets=np.cumsum(counts) - counts,
        outputs=structure.outputs[keep],
        coeffs=coeffs[keep],
        max_branches=int(counts.max(initial=0)),
    )


# -- split conjugation caches -------------------------------------------------

_structure_cache: dict[str, _TrigStructure] = {}
_static_cache: OrderedDict[tuple, _GateTable] = OrderedDict()
_STATIC_CACHE_LIMIT = 4096
_cache_hits = 0
_cache_misses = 0
_cache_evictions = 0


def _trig_structure(gate: str) -> _TrigStructure:
    global _cache_hits, _cache_misses
    structure = _structure_cache.get(gate)
    if structure is not None:
        _cache_hits += 1
        return structure
    _cache_misses += 1
    structure = _build_trig_structure(gate)
    _structure_cache[gate] = structure
    return structure


def _static_table(gate: str, params: tuple[float, ...]) -> _GateTable:
    global _cache_hits, _cache_misses, _cache_evictions
    key = (gate, params)
    table = _static_cache.get(key)
    if table is not None:
        _static_cache.move_to_end(key)
        _cache_hits += 1
        return table
    _cache_misses += 1
    matrix = gate_matrix(gate, *params)
    k = int(round(np.log2(matrix.shape[0])))
    table = _compress_table(_dense_conjugation(matrix, k))
    _static_cache[key] = table
    while len(_static_cache) > _STATIC_CACHE_LIMIT:
        _static_cache.popitem(last=False)
        _cache_evictions += 1
    return table


def _gate_table(gate: str, params: tuple[float, ...]) -> _GateTable:
    """Branch table for a concrete gate instance, through the split caches."""
    if gate in _TRIG_GATES and len(params) == 1:
        return _trig_table(_trig_structure(gate), float(params[0]))
    return _static_table(gate, tuple(float(p) for p in params))


def conjugation_cache_stats() -> dict[str, int]:
    """Counters for the split conjugation caches.

    Mirrors :func:`~repro.quantum.program.program_cache_stats`: ``hits`` /
    ``misses`` / ``evictions`` count structure-or-table lookups (per-angle
    coefficient evaluation is not a lookup — it is the cheap path the split
    exists for), ``size`` is resident structures plus static tables.
    """
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "evictions": _cache_evictions,
        "size": len(_structure_cache) + len(_static_cache),
        "limit": _STATIC_CACHE_LIMIT,
    }


def clear_conjugation_cache() -> None:
    """Drop cached conjugation structures/tables and reset the counters."""
    global _cache_hits, _cache_misses, _cache_evictions
    _structure_cache.clear()
    _static_cache.clear()
    _cache_hits = 0
    _cache_misses = 0
    _cache_evictions = 0


def _conjugation_table(
    gate: str, params: tuple[float, ...], local_label: str
) -> tuple[tuple[str, complex], ...]:
    """Decompose ``U† P U`` for a local Pauli substring P in the local basis.

    Back-compat shim over the split caches: rotation gates resolve their
    angle-independent structure once per gate *name* and evaluate the angle's
    branch coefficients on the fly, so fresh angles no longer rebuild (or
    cache-key) a 4^k decomposition.
    """
    table = _gate_table(gate, tuple(params))
    k = len(local_label)
    index = 0
    for char in local_label:
        index = index * 4 + _DIGIT_OF_LABEL[char]
    start = int(table.offsets[index])
    stop = start + int(table.counts[index])
    results = []
    for output, coeff in zip(table.outputs[start:stop], table.coeffs[start:stop]):
        labels = "".join(
            _DIGIT_LABELS[(int(output) >> (2 * (k - 1 - j))) & 3] for j in range(k)
        )
        results.append((labels, complex(coeff)))
    return tuple(results)


# -- packed Pauli representation ----------------------------------------------

_WORD_BITS = 64


def _num_words(num_qubits: int) -> int:
    return max(1, -(-num_qubits // _WORD_BITS))


def _pack_labels(labels: Sequence[str], num_qubits: int) -> tuple[np.ndarray, np.ndarray]:
    """Pack label strings into ``(T, W)`` uint64 X/Z bitmask arrays.

    Qubit ``q`` occupies bit ``q % 64`` of word ``q // 64``; ``X`` and ``Y``
    set the X mask, ``Z`` and ``Y`` set the Z mask (the engine's symplectic
    convention, widened to multiple words for the 50–100 qubit band).
    """
    words = _num_words(num_qubits)
    x = np.zeros((len(labels), words), dtype=np.uint64)
    z = np.zeros((len(labels), words), dtype=np.uint64)
    for row, label in enumerate(labels):
        for qubit, char in enumerate(label):
            if char == "I":
                continue
            word, bit = divmod(qubit, _WORD_BITS)
            mask = np.uint64(1) << np.uint64(bit)
            if char != "Z":
                x[row, word] |= mask
            if char != "X":
                z[row, word] |= mask
    return x, z


def _unpack_labels(x: np.ndarray, z: np.ndarray, num_qubits: int) -> list[str]:
    """Inverse of :func:`_pack_labels` (diagnostics and tests)."""
    labels = []
    for row in range(x.shape[0]):
        chars = []
        for qubit in range(num_qubits):
            word, bit = divmod(qubit, _WORD_BITS)
            xb = int(x[row, word] >> np.uint64(bit)) & 1
            zb = int(z[row, word] >> np.uint64(bit)) & 1
            chars.append(_DIGIT_LABELS[xb + 2 * zb])
        labels.append("".join(chars))
    return labels


def _pack_bits(bits: str) -> np.ndarray:
    """``(W,)`` uint64 mask of the qubits in |1> for a bitstring."""
    packed = np.zeros(_num_words(len(bits)), dtype=np.uint64)
    for qubit, bit in enumerate(bits):
        if bit == "1":
            word, position = divmod(qubit, _WORD_BITS)
            packed[word] |= np.uint64(1) << np.uint64(position)
    return packed


# -- compiled vectorized propagation ------------------------------------------

#: Tape-step parameter resolution kinds.
_STEP_STATIC = 0  #: constant params — branch table precomputed at compile time
_STEP_TRIG = 1  #: single slotted angle on a trig-linear gate — cached structure
_STEP_GENERIC = 2  #: anything else — per-row params through the static table cache


@dataclass
class _Step:
    """One reversed-tape gate application, precompiled for the packed kernel."""

    gate: str
    kind: int
    words: tuple[int, ...]  #: word index per gate qubit
    shifts: tuple[int, ...]  #: bit position per gate qubit
    clear: np.ndarray  #: (W,) uint64 mask of the gate's qubit bits
    x_patch: np.ndarray  #: (4^k, W) uint64 X bits per local output index
    z_patch: np.ndarray  #: (4^k, W) uint64 Z bits per local output index
    table: _GateTable | None = None  #: static kind only
    structure: _TrigStructure | None = None  #: trig kind only
    specs: tuple[tuple, ...] = ()  #: trig: the single slot spec; generic: all


@dataclass
class PropagationOutcome:
    """Result of propagating one parameter row (see :meth:`CompiledPropagation.run`)."""

    values: np.ndarray  #: (M,) expectation per coefficient column
    final_terms: int
    peak_terms: int
    truncated_weight_terms: int
    truncated_coefficient_terms: int

    def as_metadata(self) -> dict[str, int]:
        return {
            "final_terms": self.final_terms,
            "peak_terms": self.peak_terms,
            "truncated_weight_terms": self.truncated_weight_terms,
            "truncated_coefficient_terms": self.truncated_coefficient_terms,
        }


class CompiledPropagation:
    """Compile-once vectorized Heisenberg propagation of one operator through
    one circuit-program structure.

    Compilation fixes everything angle-independent: the packed initial term
    arrays, the reversed gate tape with per-gate bit patches/masks, and the
    branch *structures*.  Only rotation-angle branch coefficients vary per
    parameter row, so one compiled instance serves a whole ``(B, params)``
    batch row by row.

    ``per_term=True`` propagates a coefficient *matrix* with one column per
    operator term (columns start as the identity), so a single propagation
    yields the per-term expectation vector the exact estimators consume.
    ``per_term=False`` propagates the summed observable (one column carrying
    the operator coefficients) — the legacy ``expectation()`` semantics.
    """

    def __init__(
        self,
        program: CircuitProgram,
        operator: PauliOperator,
        config: PauliPropagationConfig | None = None,
        *,
        per_term: bool = False,
    ) -> None:
        if operator.num_qubits != program.num_qubits:
            raise ValueError("operator and program qubit counts differ")
        self.program = program
        self.operator = operator
        self.config = config or PauliPropagationConfig()
        self.per_term = per_term
        self.num_qubits = program.num_qubits
        self._words = _num_words(self.num_qubits)
        if per_term:
            labels = [pauli.label for pauli in operator.paulis()]
            initial = np.eye(len(labels), dtype=np.float64)
        else:
            pairs = [(p.label, coeff) for p, coeff in operator.items() if coeff != 0]
            labels = [label for label, _ in pairs]
            initial = np.array([[float(np.real(c))] for _, c in pairs], dtype=np.float64)
            initial = initial.reshape(len(labels), 1)
        self.num_columns = initial.shape[1]
        self._x0, self._z0 = _pack_labels(labels, self.num_qubits)
        self._c0 = initial
        self._steps = [
            self._compile_entry(entry) for entry in reversed(program.tape)
        ]

    @classmethod
    def for_circuit(
        cls,
        circuit: QuantumCircuit,
        operator: PauliOperator,
        config: PauliPropagationConfig | None = None,
        *,
        per_term: bool = False,
    ) -> tuple["CompiledPropagation", np.ndarray]:
        """Compile a bound circuit via the persistent program cache.

        Returns the compiled propagation plus the circuit's parameter row.
        """
        if not circuit.is_bound():
            raise ValueError("circuit has unbound parameters; call circuit.bind first")
        program, row = program_for_bound_circuit(circuit)
        return cls(program, operator, config, per_term=per_term), row

    # -- compilation ----------------------------------------------------------

    def _compile_entry(self, entry) -> _Step:
        qubits = entry.qubits
        k = len(qubits)
        words = tuple(q // _WORD_BITS for q in qubits)
        shifts = tuple(q % _WORD_BITS for q in qubits)
        clear = np.zeros(self._words, dtype=np.uint64)
        for word, shift in zip(words, shifts):
            clear[word] |= np.uint64(1) << np.uint64(shift)
        x_patch = np.zeros((4**k, self._words), dtype=np.uint64)
        z_patch = np.zeros_like(x_patch)
        for local in range(4**k):
            for j, (word, shift) in enumerate(zip(words, shifts)):
                digit = (local >> (2 * (k - 1 - j))) & 3
                mask = np.uint64(1) << np.uint64(shift)
                if digit & 1:
                    x_patch[local, word] |= mask
                if digit >> 1:
                    z_patch[local, word] |= mask
        step = _Step(
            gate=entry.gate,
            kind=_STEP_GENERIC,
            words=words,
            shifts=shifts,
            clear=clear,
            x_patch=x_patch,
            z_patch=z_patch,
            specs=entry.specs,
        )
        if all(spec[0] == _CONST for spec in entry.specs):
            params = tuple(float(spec[1]) for spec in entry.specs)
            step.kind = _STEP_STATIC
            step.table = _gate_table(entry.gate, params)
        elif (
            entry.gate in _TRIG_GATES
            and len(entry.specs) == 1
            and entry.specs[0][0] == _SLOT
        ):
            step.kind = _STEP_TRIG
            step.structure = _trig_structure(entry.gate)
        return step

    def _step_table(self, step: _Step, row: np.ndarray) -> _GateTable:
        if step.kind == _STEP_STATIC:
            return step.table
        if step.kind == _STEP_TRIG:
            return _trig_table(step.structure, _evaluate_spec(step.specs[0], row))
        params = tuple(float(_evaluate_spec(spec, row)) for spec in step.specs)
        return _gate_table(step.gate, params)

    # -- propagation ----------------------------------------------------------

    def run(
        self,
        parameters: np.ndarray | None = None,
        initial_bits: str | None = None,
    ) -> PropagationOutcome:
        """Propagate one parameter row and evaluate on ``|initial_bits>``."""
        x, z, coeffs, stats = self._propagate_packed(parameters)
        values = self._evaluate(x, z, coeffs, initial_bits)
        return PropagationOutcome(
            values=values,
            final_terms=int(x.shape[0]),
            peak_terms=stats["peak_terms"],
            truncated_weight_terms=stats["truncated_weight_terms"],
            truncated_coefficient_terms=stats["truncated_coefficient_terms"],
        )

    def expectation(
        self,
        parameters: np.ndarray | None = None,
        initial_bits: str | None = None,
    ) -> float:
        """Summed expectation value (legacy simulator semantics)."""
        values = self.run(parameters, initial_bits).values
        return float(values.sum())

    def propagate_terms(
        self, parameters: np.ndarray | None = None
    ) -> tuple[list[str], np.ndarray]:
        """(labels, coefficient matrix) of the propagated operator — tests
        and diagnostics; the hot path stays packed."""
        x, z, coeffs, _ = self._propagate_packed(parameters)
        return _unpack_labels(x, z, self.num_qubits), coeffs

    def _parameter_row(self, parameters: np.ndarray | None) -> np.ndarray:
        row = (
            np.zeros(0, dtype=np.float64)
            if parameters is None
            else np.asarray(parameters, dtype=np.float64).ravel()
        )
        if row.size != self.program.num_parameters:
            raise ValueError(
                f"program expects {self.program.num_parameters} parameters, "
                f"got {row.size}"
            )
        return row

    def _propagate_packed(self, parameters: np.ndarray | None):
        row = self._parameter_row(parameters)
        x = self._x0.copy()
        z = self._z0.copy()
        coeffs = self._c0.copy()
        stats = {
            "peak_terms": int(x.shape[0]),
            "truncated_weight_terms": 0,
            "truncated_coefficient_terms": 0,
        }
        for step in self._steps:
            table = self._step_table(step, row)
            x, z, coeffs = self._apply(step, table, x, z, coeffs)
            stats["peak_terms"] = max(stats["peak_terms"], int(x.shape[0]))
            x, z, coeffs = self._truncate(x, z, coeffs, stats)
        return x, z, coeffs, stats

    def _apply(self, step, table, x, z, coeffs):
        terms = x.shape[0]
        if terms == 0:
            return x, z, coeffs
        local = np.zeros(terms, dtype=np.int64)
        for word, shift in zip(step.words, step.shifts):
            shift64 = np.uint64(shift)
            xb = (x[:, word] >> shift64) & np.uint64(1)
            zb = (z[:, word] >> shift64) & np.uint64(1)
            local = (local << 2) | (xb + np.uint64(2) * zb).astype(np.int64)
        inverse_clear = ~step.clear
        if table.max_branches == 1:
            # Signed Pauli bijection: pure bit-twiddling plus a sign/factor
            # gather — no term growth, no deduplication.
            flat = table.offsets[local]
            out = table.outputs[flat]
            x = (x & inverse_clear) | step.x_patch[out]
            z = (z & inverse_clear) | step.z_patch[out]
            coeffs = coeffs * table.coeffs[flat][:, None]
            return x, z, coeffs
        branches = table.counts[local]
        total = int(branches.sum())
        source = np.repeat(np.arange(terms), branches)
        run_starts = np.cumsum(branches) - branches
        intra = np.arange(total, dtype=np.int64) - np.repeat(run_starts, branches)
        flat = np.repeat(table.offsets[local], branches) + intra
        out = table.outputs[flat]
        x = (x[source] & inverse_clear) | step.x_patch[out]
        z = (z[source] & inverse_clear) | step.z_patch[out]
        coeffs = coeffs[source] * table.coeffs[flat][:, None]
        return self._deduplicate(x, z, coeffs)

    def _deduplicate(self, x, z, coeffs):
        total = x.shape[0]
        if total == 0:
            return x, z, coeffs
        key = np.concatenate([x, z], axis=1)
        order = np.lexsort(key.T[::-1])
        sorted_key = key[order]
        boundary = np.empty(total, dtype=bool)
        boundary[0] = True
        boundary[1:] = np.any(sorted_key[1:] != sorted_key[:-1], axis=1)
        starts = np.flatnonzero(boundary)
        merged = np.add.reduceat(coeffs[order], starts, axis=0)
        words = self._words
        return (
            np.ascontiguousarray(sorted_key[starts, :words]),
            np.ascontiguousarray(sorted_key[starts, words:]),
            merged,
        )

    def _truncate(self, x, z, coeffs, stats):
        config = self.config
        terms = x.shape[0]
        if terms == 0:
            return x, z, coeffs
        magnitude = np.max(np.abs(coeffs), axis=1)
        keep = magnitude > config.coefficient_threshold
        dropped = terms - int(keep.sum())
        if dropped:
            stats["truncated_coefficient_terms"] += dropped
            x, z, coeffs, magnitude = x[keep], z[keep], coeffs[keep], magnitude[keep]
        weight = _popcount(x | z).sum(axis=1).astype(np.int64)
        keep = weight <= config.max_weight
        dropped = x.shape[0] - int(keep.sum())
        if dropped:
            stats["truncated_weight_terms"] += dropped
            x, z, coeffs, magnitude = x[keep], z[keep], coeffs[keep], magnitude[keep]
        excess = x.shape[0] - config.max_terms
        if excess > 0:
            stats["truncated_coefficient_terms"] += excess
            top = np.argpartition(magnitude, excess)[excess:]
            top.sort()
            x, z, coeffs = x[top], z[top], coeffs[top]
        return x, z, coeffs

    def _evaluate(self, x, z, coeffs, initial_bits: str | None) -> np.ndarray:
        bits = initial_bits or "0" * self.num_qubits
        if len(bits) != self.num_qubits:
            raise ValueError("initial_bits length must equal the number of qubits")
        columns = coeffs.shape[1] if coeffs.ndim == 2 else self._c0.shape[1]
        if x.shape[0] == 0:
            return np.zeros(columns, dtype=np.float64)
        diagonal = ~np.any(x != 0, axis=1)
        flipped = _popcount(z & _pack_bits(bits)).sum(axis=1).astype(np.int64)
        signs = np.where((flipped & 1) == 1, -1.0, 1.0)
        signs[~diagonal] = 0.0
        return signs @ coeffs


# -- dict-based reference simulator -------------------------------------------


class PauliPropagationSimulator:
    """Estimate <psi0|U† H U|psi0> by back-propagating H through U.

    The original per-term dict evaluator, kept as the semantic reference for
    :class:`CompiledPropagation` and as the baseline of the propagation
    benchmark.  Truncation counters reset on every :meth:`propagate` call, so
    they describe the most recent propagation (they previously accumulated
    silently across calls).
    """

    def __init__(self, config: PauliPropagationConfig | None = None) -> None:
        self.config = config or PauliPropagationConfig()
        self.truncated_weight_terms = 0
        self.truncated_coefficient_terms = 0

    def propagate(
        self, operator: PauliOperator, circuit: QuantumCircuit
    ) -> dict[str, complex]:
        """Return the Heisenberg-evolved operator as a ``{label: coefficient}`` dict."""
        if not circuit.is_bound():
            raise ValueError("circuit has unbound parameters; call circuit.bind first")
        if operator.num_qubits != circuit.num_qubits:
            raise ValueError("operator and circuit qubit counts differ")
        self.truncated_weight_terms = 0
        self.truncated_coefficient_terms = 0
        terms: dict[str, complex] = {
            pauli.label: complex(coeff) for pauli, coeff in operator.items() if coeff != 0
        }
        for inst in reversed(circuit.instructions):
            terms = self._apply_gate(terms, inst.gate, inst.qubits, tuple(inst.params))
            terms = self._truncate(terms)
        return terms

    def expectation(
        self,
        operator: PauliOperator,
        circuit: QuantumCircuit,
        initial_bits: str | None = None,
    ) -> float:
        """Expectation value for a computational-basis initial state.

        ``initial_bits`` is a bitstring like ``'0011'`` (default all zeros).
        Only I/Z Pauli factors contribute; Z on a qubit in |1> contributes -1.
        """
        terms = self.propagate(operator, circuit)
        num_qubits = operator.num_qubits
        bits = initial_bits or "0" * num_qubits
        if len(bits) != num_qubits:
            raise ValueError("initial_bits length must equal the number of qubits")
        value = 0.0
        for label, coeff in terms.items():
            contribution = 1.0
            for qubit, op in enumerate(label):
                if op == "I":
                    continue
                if op in ("X", "Y"):
                    contribution = 0.0
                    break
                contribution *= -1.0 if bits[qubit] == "1" else 1.0
            value += (coeff * contribution).real
        return float(value)

    # -- internals ----------------------------------------------------------

    def _apply_gate(
        self,
        terms: dict[str, complex],
        gate: str,
        qubits: tuple[int, ...],
        params: tuple[float, ...],
    ) -> dict[str, complex]:
        new_terms: dict[str, complex] = {}
        for label, coeff in terms.items():
            local_label = "".join(label[q] for q in qubits)
            if local_label == "I" * len(qubits):
                new_terms[label] = new_terms.get(label, 0.0) + coeff
                continue
            for new_local, factor in _conjugation_table(gate, params, local_label):
                chars = list(label)
                for position, qubit in enumerate(qubits):
                    chars[qubit] = new_local[position]
                new_label = "".join(chars)
                new_terms[new_label] = new_terms.get(new_label, 0.0) + coeff * factor
        return new_terms

    def _truncate(self, terms: dict[str, complex]) -> dict[str, complex]:
        config = self.config
        kept: dict[str, complex] = {}
        for label, coeff in terms.items():
            if abs(coeff) <= config.coefficient_threshold:
                self.truncated_coefficient_terms += 1
                continue
            weight = sum(1 for c in label if c != "I")
            if weight > config.max_weight:
                self.truncated_weight_terms += 1
                continue
            kept[label] = coeff
        if len(kept) > config.max_terms:
            ranked = sorted(kept.items(), key=lambda item: abs(item[1]), reverse=True)
            dropped = len(kept) - config.max_terms
            self.truncated_coefficient_terms += dropped
            kept = dict(ranked[: config.max_terms])
        return kept


# -- execution backend --------------------------------------------------------


class PauliPropagationBackend(ExecutionBackend):
    """Vectorized Pauli propagation as a first-class execution backend.

    Requests are grouped by program fingerprint and operator term set: one
    :class:`CompiledPropagation` (gate tape, packed initial terms, branch
    structures) serves the whole ``(B, params)`` batch — only the per-row
    rotation-angle branch coefficients differ.  Results are term-vector
    payloads in the request operator's term order (identity pinned to 1.0),
    exactly what the exact/shot-noise estimators consume; no state is ever
    materialized, which is what opens the 50–100 qubit band.

    Each result's ``metadata`` carries the propagation's truncation counts
    and term statistics so truncation error is observable per round.
    """

    name = "pauli_propagation"
    provides_states = False
    accepts_propagation_config = True

    def __init__(
        self,
        propagation: PauliPropagationConfig | None = None,
        *,
        compiled_cache_limit: int = 64,
    ) -> None:
        self.config = propagation or PauliPropagationConfig()
        self._compiled: OrderedDict[tuple, CompiledPropagation] = OrderedDict()
        self._compiled_cache_limit = compiled_cache_limit
        self.batches_run = 0
        self.requests_run = 0
        self.program_requests = 0
        self.truncated_weight_terms = 0
        self.truncated_coefficient_terms = 0

    def _compiled_for(
        self, program: CircuitProgram, operator: PauliOperator
    ) -> CompiledPropagation:
        key = (program.fingerprint, tuple(p.label for p in operator.paulis()))
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = CompiledPropagation(
                program, operator, self.config, per_term=True
            )
            self._compiled[key] = compiled
            while len(self._compiled) > self._compiled_cache_limit:
                self._compiled.popitem(last=False)
        else:
            self._compiled.move_to_end(key)
        return compiled

    def run_batch(
        self, requests: Sequence[ExecutionRequest], *, need_states: bool = False
    ) -> list[BackendResult]:
        requests = list(requests)
        if need_states:
            raise ValueError(
                "pauli_propagation cannot attach statevectors; pair "
                "state-consuming estimators with a dense backend"
            )
        self.batches_run += 1
        self.requests_run += len(requests)
        resolved = []
        groups: dict[tuple, list[int]] = {}
        for index, request in enumerate(requests):
            if request.program is not None:
                self.program_requests += 1
            program, parameters = resolve_program_request(request)
            bits = _request_bitstring(request)
            if bits is None:
                raise ValueError(
                    "pauli_propagation requires a computational-basis initial "
                    "state (got a general superposition)"
                )
            resolved.append((program, parameters, bits))
            key = (program.fingerprint, tuple(p.label for p in request.operator.paulis()))
            groups.setdefault(key, []).append(index)
        results: list[BackendResult | None] = [None] * len(requests)
        for indices in groups.values():
            first = requests[indices[0]]
            compiled = self._compiled_for(resolved[indices[0]][0], first.operator)
            for index in indices:
                request = requests[index]
                _, parameters, bits = resolved[index]
                outcome = compiled.run(parameters, bits)
                engine = compiled_pauli_operator(request.operator)
                vector = np.array(outcome.values, dtype=np.float64)
                vector[engine.identity_mask] = 1.0
                self.truncated_weight_terms += outcome.truncated_weight_terms
                self.truncated_coefficient_terms += outcome.truncated_coefficient_terms
                results[index] = BackendResult(
                    term_basis=engine.paulis,
                    term_vector=vector,
                    state=None,
                    backend_name=self.name,
                    tag=request.tag,
                    metadata=outcome.as_metadata(),
                )
        return results  # type: ignore[return-value]

    def propagation_stats(self) -> dict[str, int]:
        """Aggregate truncation counters across every request served."""
        return {
            "requests": self.requests_run,
            "truncated_weight_terms": self.truncated_weight_terms,
            "truncated_coefficient_terms": self.truncated_coefficient_terms,
        }


#: Widest system the dense statevector path handles comfortably (2^20 complex
#: amplitudes per request); beyond it the auto router sends requests to
#: propagation.
_DENSE_WIDTH_LIMIT = 20


class WidthRoutedBackend(ExecutionBackend):
    """Route requests by qubit count: dense below the cap, propagation above.

    Mirrors how :class:`~repro.quantum.backend.CliffordBackend` routes by
    rotation angle: each request is classified independently, the two halves
    run through their backend, and results are stitched back in request
    order.

    The router advertises ``provides_states = True``: a ``need_states``
    dispatch (a sampling round) is kept entirely on the dense tier, where
    prepared states exist — wide requests cannot produce states at all, so a
    ``need_states`` batch containing one raises with an actionable message
    instead of silently routing it to propagation (whose term-vector payload
    a states-consuming estimator cannot use).
    """

    name = "auto"
    provides_states = True
    accepts_propagation_config = True

    def __init__(
        self,
        propagation: PauliPropagationConfig | None = None,
        *,
        dense: ExecutionBackend | None = None,
        dense_width_limit: int = _DENSE_WIDTH_LIMIT,
    ) -> None:
        self.dense = dense if dense is not None else StatevectorBackend()
        self.propagation = PauliPropagationBackend(propagation)
        self.dense_width_limit = dense_width_limit
        self.dense_requests = 0
        self.propagation_requests = 0

    def run_batch(
        self, requests: Sequence[ExecutionRequest], *, need_states: bool = False
    ) -> list[BackendResult]:
        requests = list(requests)
        narrow: list[int] = []
        wide: list[int] = []
        for index, request in enumerate(requests):
            if request.num_qubits > self.dense_width_limit:
                wide.append(index)
            else:
                narrow.append(index)
        if need_states and wide:
            widths = sorted({requests[index].num_qubits for index in wide})
            raise ValueError(
                "backend 'auto' can attach prepared states only on its dense "
                f"tier (<= {self.dense_width_limit} qubits); got "
                f"need_states=True with {len(wide)} request(s) of width "
                f"{widths} — state-consuming estimators (e.g. sampling) need "
                "dense execution: lower the qubit count, raise "
                "dense_width_limit, or switch to a term-vector estimator for "
                "wide circuits"
            )
        self.dense_requests += len(narrow)
        self.propagation_requests += len(wide)
        results: list[BackendResult | None] = [None] * len(requests)
        if narrow:
            for index, result in zip(
                narrow,
                self.dense.run_batch(
                    [requests[i] for i in narrow], need_states=need_states
                ),
            ):
                results[index] = result
        if wide:
            for index, result in zip(
                wide,
                self.propagation.run_batch([requests[i] for i in wide]),
            ):
                results[index] = result
        return results  # type: ignore[return-value]

    def propagation_stats(self) -> dict[str, int]:
        stats = self.propagation.propagation_stats()
        stats["dense_requests"] = self.dense_requests
        stats["routed_requests"] = self.propagation_requests
        return stats


BACKEND_REGISTRY["pauli_propagation"] = PauliPropagationBackend
BACKEND_REGISTRY["auto"] = WidthRoutedBackend
