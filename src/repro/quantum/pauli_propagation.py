"""Heisenberg-picture Pauli-propagation simulation with truncation.

Stand-in for PauliPropagation.jl used by the paper for its 28- and 50-qubit
benchmarks (§7.4, Fig. 9).  The observable (a Pauli-sum Hamiltonian) is
conjugated backwards through the circuit gate by gate,

    <psi0| U† H U |psi0>,

keeping the operator in the Pauli basis throughout.  Conjugation through a
k-qubit gate is computed by decomposing ``U† P U`` in the local 4^k Pauli
basis, so the simulator supports every gate in the registry, Clifford or not.
Truncation by Pauli weight and by coefficient magnitude keeps the term count
bounded (the paper truncates at weight 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .circuit import QuantumCircuit
from .gates import gate_matrix
from .pauli import PAULI_LABELS, PauliOperator, PauliString, pauli_matrix

__all__ = ["PauliPropagationConfig", "PauliPropagationSimulator"]


@dataclass(frozen=True)
class PauliPropagationConfig:
    """Truncation policy for the propagation."""

    max_weight: int = 8
    coefficient_threshold: float = 1e-8
    max_terms: int = 200_000

    def __post_init__(self) -> None:
        if self.max_weight < 1:
            raise ValueError("max_weight must be >= 1")
        if self.coefficient_threshold < 0:
            raise ValueError("coefficient_threshold must be >= 0")
        if self.max_terms < 1:
            raise ValueError("max_terms must be >= 1")


@lru_cache(maxsize=4096)
def _conjugation_table(
    gate: str, params: tuple[float, ...], local_label: str
) -> tuple[tuple[str, complex], ...]:
    """Decompose ``U† P U`` for a local Pauli substring P in the local Pauli basis."""
    matrix = gate_matrix(gate, *params)
    k = int(round(np.log2(matrix.shape[0])))
    local = np.array([[1.0 + 0j]])
    for label in local_label:
        local = np.kron(local, pauli_matrix(label))
    conjugated = matrix.conj().T @ local @ matrix
    dim = 2 ** k
    results: list[tuple[str, complex]] = []
    for indices in np.ndindex(*([4] * k)):
        labels = "".join(PAULI_LABELS[i] for i in indices)
        basis = np.array([[1.0 + 0j]])
        for label in labels:
            basis = np.kron(basis, pauli_matrix(label))
        coeff = np.trace(basis.conj().T @ conjugated) / dim
        if abs(coeff) > 1e-12:
            results.append((labels, complex(coeff)))
    return tuple(results)


class PauliPropagationSimulator:
    """Estimate <psi0|U† H U|psi0> by back-propagating H through U."""

    def __init__(self, config: PauliPropagationConfig | None = None) -> None:
        self.config = config or PauliPropagationConfig()
        self.truncated_weight_terms = 0
        self.truncated_coefficient_terms = 0

    def propagate(
        self, operator: PauliOperator, circuit: QuantumCircuit
    ) -> dict[str, complex]:
        """Return the Heisenberg-evolved operator as a ``{label: coefficient}`` dict."""
        if not circuit.is_bound():
            raise ValueError("circuit has unbound parameters; call circuit.bind first")
        if operator.num_qubits != circuit.num_qubits:
            raise ValueError("operator and circuit qubit counts differ")
        terms: dict[str, complex] = {
            pauli.label: complex(coeff) for pauli, coeff in operator.items() if coeff != 0
        }
        for inst in reversed(circuit.instructions):
            terms = self._apply_gate(terms, inst.gate, inst.qubits, tuple(inst.params))
            terms = self._truncate(terms)
        return terms

    def expectation(
        self,
        operator: PauliOperator,
        circuit: QuantumCircuit,
        initial_bits: str | None = None,
    ) -> float:
        """Expectation value for a computational-basis initial state.

        ``initial_bits`` is a bitstring like ``'0011'`` (default all zeros).
        Only I/Z Pauli factors contribute; Z on a qubit in |1> contributes -1.
        """
        terms = self.propagate(operator, circuit)
        num_qubits = operator.num_qubits
        bits = initial_bits or "0" * num_qubits
        if len(bits) != num_qubits:
            raise ValueError("initial_bits length must equal the number of qubits")
        value = 0.0
        for label, coeff in terms.items():
            contribution = 1.0
            for qubit, op in enumerate(label):
                if op == "I":
                    continue
                if op in ("X", "Y"):
                    contribution = 0.0
                    break
                contribution *= -1.0 if bits[qubit] == "1" else 1.0
            value += (coeff * contribution).real
        return float(value)

    # -- internals ----------------------------------------------------------

    def _apply_gate(
        self,
        terms: dict[str, complex],
        gate: str,
        qubits: tuple[int, ...],
        params: tuple[float, ...],
    ) -> dict[str, complex]:
        new_terms: dict[str, complex] = {}
        for label, coeff in terms.items():
            local_label = "".join(label[q] for q in qubits)
            if local_label == "I" * len(qubits):
                new_terms[label] = new_terms.get(label, 0.0) + coeff
                continue
            for new_local, factor in _conjugation_table(gate, params, local_label):
                chars = list(label)
                for position, qubit in enumerate(qubits):
                    chars[qubit] = new_local[position]
                new_label = "".join(chars)
                new_terms[new_label] = new_terms.get(new_label, 0.0) + coeff * factor
        return new_terms

    def _truncate(self, terms: dict[str, complex]) -> dict[str, complex]:
        config = self.config
        kept: dict[str, complex] = {}
        for label, coeff in terms.items():
            if abs(coeff) <= config.coefficient_threshold:
                self.truncated_coefficient_terms += 1
                continue
            weight = sum(1 for c in label if c != "I")
            if weight > config.max_weight:
                self.truncated_weight_terms += 1
                continue
            kept[label] = coeff
        if len(kept) > config.max_terms:
            ranked = sorted(kept.items(), key=lambda item: abs(item[1]), reverse=True)
            dropped = len(kept) - config.max_terms
            self.truncated_coefficient_terms += dropped
            kept = dict(ranked[: config.max_terms])
        return kept
