"""Shot-based expectation-value estimation.

The paper evaluates every Pauli term with 4096 shots per evaluation (§7.3).
Running billions of literal shots is infeasible in a reproduction, so three
estimators with the same interface are provided:

* :class:`ExactEstimator` — noiseless expectation values (the shot ledger
  still charges shots, exactly as §7.3 prescribes).
* :class:`ShotNoiseEstimator` — exact value plus Gaussian noise with the
  correct single-Pauli sampling variance ``(1 - <P>^2) / shots`` per term,
  which is statistically equivalent to sampling each Pauli term with ``shots``
  shots at a tiny fraction of the cost.
* :class:`SamplingEstimator` — literal bitstring sampling per qubit-wise
  commuting measurement basis, evaluated through compile-once
  :class:`~repro.quantum.measurement.MeasurementPlan` objects (stacked basis
  rotations, vectorized inverse-CDF draws) with a deterministic per-request
  RNG derivation that keeps batched and per-request sampling bit-identical.

Term-vector contract
--------------------
All estimators are thin noise layers over the compiled expectation engine
(:mod:`repro.quantum.engine`): every :class:`EstimatorResult` carries
``term_vector``, one estimate per Pauli term of the evaluated operator,
aligned with ``term_basis`` — the operator's term order, i.e. exactly the
order :meth:`PauliOperator.paulis` / a compiled engine reports.  Consumers
such as :class:`~repro.core.mixed_hamiltonian.MixedHamiltonian` recombine
per-task energies from this vector with a single matrix-vector product; the
legacy dict view is still available via :attr:`EstimatorResult.term_values`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from .circuit import QuantumCircuit
from .engine import compiled_pauli_operator
from .measurement import (
    MeasurementPlan,
    measurement_plan_for,
)
from .pauli import PauliOperator, PauliString
from .statevector import Statevector

__all__ = [
    "EstimatorResult",
    "BaseEstimator",
    "ExactEstimator",
    "ShotNoiseEstimator",
    "SamplingEstimator",
    "DensityMatrixEstimator",
]


@dataclass(frozen=True)
class EstimatorResult:
    """One expectation-value estimate and its shot cost.

    ``term_vector[i]`` is the estimated expectation value of
    ``term_basis[i]``; the basis follows the evaluated operator's term order
    (including zero-coefficient padded terms, which downstream recombination
    needs), so consumers can combine it with any coefficient vector expressed
    in the same order without dictionary lookups.
    """

    value: float
    shots_used: int
    variance: float = 0.0
    term_basis: tuple[PauliString, ...] = ()
    term_vector: np.ndarray = field(default_factory=lambda: np.zeros(0), repr=False)

    @property
    def term_values(self) -> dict[PauliString, float]:
        """Dict view of the term vector (compatibility/UX helper)."""
        return {
            pauli: float(value)
            for pauli, value in zip(self.term_basis, self.term_vector)
        }


class BaseEstimator:
    """Common machinery: run the circuit, account shots, return an estimate.

    Estimators are the *noise layer* between execution backends and
    consumers: an :class:`~repro.quantum.backend.ExecutionBackend` produces
    exact per-term expectation values (and, on demand, prepared states), and
    :meth:`estimate_backend_result` turns that payload into an
    :class:`EstimatorResult` with this estimator's noise model and shot
    accounting.  The capability flags tell the scheduler which payload to
    request: ``consumes_term_vectors`` estimators work from exact term
    vectors (any backend, including Clifford); ``consumes_states`` estimators
    need the prepared statevector; estimators with neither flag (e.g. the
    density-matrix estimator, which must re-execute the circuit under its
    noise model) are driven through the per-request :meth:`estimate` path.
    """

    #: Can build an EstimatorResult from a backend's exact term vector.
    consumes_term_vectors = False
    #: Can build an EstimatorResult from a backend-prepared statevector.
    #: Both flags are opt-in: a custom estimator that advertises nothing is
    #: safely driven through per-request estimate() calls, whatever it
    #: overrides internally.
    consumes_states = False
    #: Name of the only backend whose payloads this estimator may consume
    #: (None = any).  The density-matrix estimator sets this to
    #: ``"density_matrix"``: its term vectors must be produced *under its
    #: noise model*, so the scheduler batches only through a matching noisy
    #: backend and falls back to per-request estimate() otherwise.
    requires_backend: str | None = None

    def __init__(self, shots_per_term: int = 4096, seed: int | None = None) -> None:
        if shots_per_term < 1:
            raise ValueError("shots_per_term must be >= 1")
        self.shots_per_term = shots_per_term
        self.rng = np.random.default_rng(seed)
        self.total_shots = 0
        self.total_evaluations = 0

    def estimate(
        self,
        circuit: QuantumCircuit,
        operator: PauliOperator,
        initial_state: Statevector | None = None,
    ) -> EstimatorResult:
        """Estimate <H> for the bound circuit, charging shots to the ledger."""
        state = (initial_state or Statevector.zero_state(circuit.num_qubits)).evolve(circuit)
        result = self._estimate_state(state, operator)
        self.total_shots += result.shots_used
        self.total_evaluations += 1
        return result

    def estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        """Estimate <H> for an already-prepared state."""
        result = self._estimate_state(state, operator)
        self.total_shots += result.shots_used
        self.total_evaluations += 1
        return result

    def estimate_backend_result(self, result, operator: PauliOperator) -> EstimatorResult:
        """Estimate <H> from an execution-backend result, charging shots.

        ``result`` is a :class:`~repro.quantum.backend.BackendResult`.  The
        exact term vector is preferred when this estimator can consume one;
        otherwise the prepared state is used.  Shot accounting matches
        :meth:`estimate` exactly.
        """
        if self.consumes_term_vectors and result.term_vector is not None:
            estimate = self._estimate_from_term_vector(operator, result.term_vector)
        elif result.state is not None:
            estimate = self._estimate_state(result.state, operator)
        else:
            raise ValueError(
                f"{type(self).__name__} cannot consume a backend result without "
                "a prepared state; request need_states=True or use estimate()"
            )
        self.total_shots += estimate.shots_used
        self.total_evaluations += 1
        return estimate

    def estimate_backend_results(
        self, results, operators: Sequence[PauliOperator]
    ) -> list[EstimatorResult]:
        """Estimate a whole batch of backend payloads, one per request.

        The default delegates to :meth:`estimate_backend_result` per result,
        in order, so shot accounting and any noise draws happen exactly as if
        the caller had looped.  Estimators whose evaluation vectorizes across
        requests (the sampling estimator) override this with a batched
        implementation — which must stay **bit-identical** to the per-result
        loop, the contract the round scheduler's parity guarantees rest on.
        """
        return [
            self.estimate_backend_result(result, operator)
            for result, operator in zip(results, operators)
        ]

    def _estimate_from_term_vector(
        self, operator: PauliOperator, term_vector: np.ndarray
    ) -> EstimatorResult:
        raise NotImplementedError

    def shots_for(self, operator: PauliOperator) -> int:
        """Shot cost charged for one evaluation of ``operator``."""
        return self.shots_per_term * max(
            compiled_pauli_operator(operator).num_measured_terms, 1
        )

    def _shots_from_engine(self, engine) -> int:
        """Shot cost from an engine already in hand — skips the operator
        fingerprint revalidation :func:`compiled_pauli_operator` performs, so
        per-result accounting on the hot path stays O(1)."""
        return self.shots_per_term * max(engine.num_measured_terms, 1)

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        raise NotImplementedError


def _exact_term_vector(state: Statevector, operator: PauliOperator):
    """(engine, exact term vector) with identity terms pinned to exactly 1."""
    engine = compiled_pauli_operator(operator)
    vector = engine.expectation_values(state)
    vector[engine.identity_mask] = 1.0
    return engine, vector


class ExactEstimator(BaseEstimator):
    """Noiseless expectation values with §7.3 shot accounting."""

    consumes_term_vectors = True
    consumes_states = True

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        engine, vector = _exact_term_vector(state, operator)
        return self._estimate_from_term_vector(operator, vector)

    def _estimate_from_term_vector(
        self, operator: PauliOperator, term_vector: np.ndarray
    ) -> EstimatorResult:
        engine = compiled_pauli_operator(operator)
        vector = np.asarray(term_vector, dtype=float).copy()
        vector[engine.identity_mask] = 1.0
        return EstimatorResult(
            value=float(engine.coefficients @ vector),
            shots_used=self._shots_from_engine(engine),
            variance=0.0,
            term_basis=engine.paulis,
            term_vector=vector,
        )


class ShotNoiseEstimator(BaseEstimator):
    """Exact value perturbed by the per-term finite-shot sampling variance.

    For a Pauli string P with expectation value p = <P> measured with ``s``
    shots, the sample-mean variance is (1 - p^2) / s.  The per-term estimates
    are independent, so the Hamiltonian estimate carries the summed,
    coefficient-weighted variance.  The Gaussian perturbations for all terms
    are drawn in one vectorized call.
    """

    consumes_term_vectors = True
    consumes_states = True

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        _, exact = _exact_term_vector(state, operator)
        return self._estimate_from_term_vector(operator, exact)

    def _estimate_from_term_vector(
        self, operator: PauliOperator, term_vector: np.ndarray
    ) -> EstimatorResult:
        engine = compiled_pauli_operator(operator)
        exact = np.asarray(term_vector, dtype=float).copy()
        exact[engine.identity_mask] = 1.0
        term_variance = np.where(
            engine.identity_mask,
            0.0,
            np.clip(1.0 - exact ** 2, 0.0, None) / self.shots_per_term,
        )
        noisy = np.clip(
            exact + self.rng.normal(0.0, np.sqrt(term_variance)), -1.0, 1.0
        )
        coefficients = engine.coefficients
        return EstimatorResult(
            value=float(coefficients @ noisy),
            shots_used=self._shots_from_engine(engine),
            variance=float((coefficients ** 2) @ term_variance),
            term_basis=engine.paulis,
            term_vector=noisy,
        )


class SamplingEstimator(BaseEstimator):
    """Literal measurement sampling over compile-once measurement plans.

    Each operator is compiled (once, process-wide — see
    :func:`~repro.quantum.measurement.measurement_plan_for`) into a
    :class:`~repro.quantum.measurement.MeasurementPlan`: the qubit-wise
    commuting grouping, each group's basis rotation as stacked single-qubit
    matrix applications, and packed per-term support masks.  Evaluation is
    then pure array work — all groups' probability vectors for the whole
    request batch, one ``(B, shots)`` inverse-CDF draw per group, and the
    ``(B, T)`` term-value matrix from mask-parity signs.  Cost grows with
    the number of commuting groups rather than with the number of terms.

    RNG derivation rule (the bit-identity anchor)
    ---------------------------------------------
    Outcomes for the k-th sampling evaluation this estimator performs are
    drawn from a child generator spawned deterministically from the
    estimator seed and k alone (``SeedSequence(entropy=root_entropy,
    spawn_key=(k,))``) — keyed by *request identity* (strict consumption
    order), never by batch position.  Every evaluation draws all of its
    uniforms in one ``rng.random((num_groups, shots))`` call, in both the
    per-request and batched paths.  Batched estimation
    (:meth:`estimate_backend_results`) is therefore **bit-identical** to
    per-request :meth:`estimate`, to ``max_batch_size=1``, and across
    ``execution_workers`` counts — the same invariant the backends uphold
    for amplitudes, extended to sampled term vectors
    (``docs/ARCHITECTURE.md``).

    The reported ``variance`` is the empirical coefficient-weighted sample
    variance ``sum_t c_t^2 (1 - m_t^2) / shots`` over non-identity terms,
    the same estimate the shot-noise estimator charges.
    """

    #: Sampling needs the prepared state (basis rotations), not term vectors.
    consumes_states = True

    def __init__(self, shots_per_term: int = 4096, seed: int | None = None) -> None:
        super().__init__(shots_per_term=shots_per_term, seed=seed)
        #: Root entropy all per-request child generators derive from.
        self._entropy = np.random.SeedSequence(seed).entropy
        #: Lifetime count of sampling evaluations — the ordinal that keys
        #: each request's child generator.
        self.sampling_evaluations = 0

    def _request_rng(self, ordinal: int) -> np.random.Generator:
        """Child generator for the ``ordinal``-th sampling evaluation."""
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self._entropy, spawn_key=(ordinal,))
        )

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        plan = measurement_plan_for(operator)
        ordinal = self.sampling_evaluations
        self.sampling_evaluations += 1
        amplitudes = np.asarray(state.data, dtype=complex).reshape(1, -1)
        return self._plan_results(plan, amplitudes, [self._request_rng(ordinal)])[0]

    def estimate_backend_results(
        self, results, operators: Sequence[PauliOperator]
    ) -> list[EstimatorResult]:
        """Batched sampling over the backend's prepared states.

        Requests are grouped by measurement plan (operator fingerprint), each
        group's states are stacked into one ``(B, 2^n)`` array, and the plan
        evaluates every group/probability/draw for the whole stack at once.
        Per-request child generators are assigned by position in ``results``
        — the scheduler's strict consumption order — before any grouping, so
        the returned estimates are bit-identical to calling
        :meth:`estimate_backend_result` in a loop.
        """
        results = list(results)
        operators = list(operators)
        for result in results:
            if result.state is None:
                raise ValueError(
                    f"{type(self).__name__} cannot consume a backend result "
                    "without a prepared state; request need_states=True or "
                    "use estimate()"
                )
        first_ordinal = self.sampling_evaluations
        self.sampling_evaluations += len(results)
        plans: dict[int, MeasurementPlan] = {}
        members: dict[int, list[int]] = {}
        for index, operator in enumerate(operators):
            plan = measurement_plan_for(operator)
            plans[id(plan)] = plan
            members.setdefault(id(plan), []).append(index)
        estimates: list[EstimatorResult | None] = [None] * len(results)
        for plan_id, indices in members.items():
            plan = plans[plan_id]
            amplitudes = np.stack(
                [np.asarray(results[i].state.data, dtype=complex) for i in indices]
            )
            rngs = [self._request_rng(first_ordinal + i) for i in indices]
            for slot, estimate in zip(indices, self._plan_results(plan, amplitudes, rngs)):
                estimates[slot] = estimate
        for estimate in estimates:
            self.total_shots += estimate.shots_used
            self.total_evaluations += 1
        return estimates  # type: ignore[return-value]

    def _plan_results(
        self,
        plan: MeasurementPlan,
        amplitudes: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> list[EstimatorResult]:
        """Evaluate one plan over a stack of states, one result per row.

        All per-row arithmetic (term means, value, variance) is row-local, so
        a batch of B rows yields exactly the B results the rows would yield
        alone — given the same generators.
        """
        matrix = plan.term_matrix(amplitudes, self.shots_per_term, rngs)
        shots_used = plan.shots_used(self.shots_per_term)
        coefficients = plan.coefficients
        results = []
        for row in range(matrix.shape[0]):
            vector = matrix[row]
            term_variance = np.where(
                plan.identity_mask,
                0.0,
                np.clip(1.0 - vector ** 2, 0.0, None) / self.shots_per_term,
            )
            results.append(
                EstimatorResult(
                    value=float(coefficients @ vector),
                    shots_used=shots_used,
                    variance=float((coefficients ** 2) @ term_variance),
                    term_basis=plan.paulis,
                    term_vector=vector,
                )
            )
        return results


def _bit_table(outcomes: np.ndarray, num_qubits: int) -> np.ndarray:
    """Bit value of each qubit for each sampled outcome (qubit 0 = MSB).

    This is the reference sign evaluation the measurement plan's mask-parity
    path is tested against; the shift broadcast replaces the old per-column
    Python loop.
    """
    outcomes = np.asarray(outcomes, dtype=np.int64)
    shifts = np.arange(num_qubits - 1, -1, -1, dtype=np.int64)
    return ((outcomes[:, None] >> shifts[None, :]) & 1).astype(float)


class DensityMatrixEstimator(BaseEstimator):
    """Noisy expectation values via density-matrix simulation (paper §8.7).

    The circuit is executed under a :class:`~repro.quantum.noise.NoiseModel`
    (gate-attached depolarising / decoherence channels, readout error folded
    into the Pauli expectations) and the shot ledger charges the same
    4096-per-term cost as every other estimator.  Sampling noise on top of the
    noisy expectation can be enabled with ``add_shot_noise``.  All Pauli terms
    are evaluated in one vectorized engine pass over the density matrix.

    Batched execution: this estimator consumes term vectors, but only ones
    produced *under its own noise model* — ``requires_backend`` tells the
    round scheduler to batch through a
    :class:`~repro.quantum.backend.DensityMatrixBackend` (whose noisy term
    vectors are bit-identical to this estimator's per-request simulation) and
    to fall back to per-request :meth:`estimate` for every other backend.
    """

    consumes_term_vectors = True
    #: A noiselessly prepared pure state is not usable — noise must be
    #: applied during execution.
    consumes_states = False
    requires_backend = "density_matrix"

    def __init__(
        self,
        noise_model,
        shots_per_term: int = 4096,
        seed: int | None = None,
        *,
        add_shot_noise: bool = False,
    ) -> None:
        super().__init__(shots_per_term=shots_per_term, seed=seed)
        from .density_matrix import DensityMatrixSimulator  # local import avoids a cycle

        self.noise_model = noise_model
        self.add_shot_noise = add_shot_noise
        self._simulator = DensityMatrixSimulator(noise_model)

    def estimate(
        self,
        circuit: QuantumCircuit,
        operator: PauliOperator,
        initial_state: Statevector | None = None,
    ) -> EstimatorResult:
        from .density_matrix import (
            DensityMatrix,
            noisy_term_vector,
            validate_density_matrix_qubits,
        )

        # Validate the width before the first 2^n x 2^n allocation, so an
        # oversized request fails with the actionable message rather than an
        # OOM inside zero_state.
        validate_density_matrix_qubits(circuit.num_qubits)
        if initial_state is None:
            rho = DensityMatrix.zero_state(circuit.num_qubits)
        else:
            rho = DensityMatrix.from_statevector(initial_state)
        state = self._simulator.run(circuit, rho)
        engine = compiled_pauli_operator(operator)
        vector = noisy_term_vector(engine, state.data, self.noise_model.readout_error)
        result = self._estimate_from_term_vector(operator, vector)
        self.total_shots += result.shots_used
        self.total_evaluations += 1
        return result

    def estimate_backend_result(self, result, operator: PauliOperator) -> EstimatorResult:
        backend_name = getattr(result, "backend_name", None)
        if backend_name != self.requires_backend:
            raise ValueError(
                "DensityMatrixEstimator needs term vectors produced under its "
                f"noise model by the {self.requires_backend!r} backend; got a "
                f"result from {backend_name!r} — configure "
                "TreeVQAConfig(backend='density_matrix', noise_model=...) or "
                "use per-request estimate()"
            )
        return super().estimate_backend_result(result, operator)

    def _estimate_from_term_vector(
        self, operator: PauliOperator, term_vector: np.ndarray
    ) -> EstimatorResult:
        """Noise layer over an already-noisy term vector (readout included):
        optional shot noise plus §7.3 shot accounting."""
        engine = compiled_pauli_operator(operator)
        vector = np.asarray(term_vector, dtype=float).copy()
        vector[engine.identity_mask] = 1.0
        if self.add_shot_noise:
            term_variance = np.where(
                engine.identity_mask,
                0.0,
                np.clip(1.0 - vector ** 2, 0.0, None) / self.shots_per_term,
            )
            vector = np.clip(
                vector + self.rng.normal(0.0, np.sqrt(term_variance)), -1.0, 1.0
            )
        return EstimatorResult(
            value=float(engine.coefficients @ vector),
            shots_used=self._shots_from_engine(engine),
            variance=0.0,
            term_basis=engine.paulis,
            term_vector=vector,
        )

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        raise NotImplementedError("DensityMatrixEstimator estimates from circuits, not states")
