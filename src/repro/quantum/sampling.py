"""Shot-based expectation-value estimation.

The paper evaluates every Pauli term with 4096 shots per evaluation (§7.3).
Running billions of literal shots is infeasible in a reproduction, so three
estimators with the same interface are provided:

* :class:`ExactEstimator` — noiseless expectation values (the shot ledger
  still charges shots, exactly as §7.3 prescribes).
* :class:`ShotNoiseEstimator` — exact value plus Gaussian noise with the
  correct single-Pauli sampling variance ``(1 - <P>^2) / shots`` per term,
  which is statistically equivalent to sampling each Pauli term with ``shots``
  shots at a tiny fraction of the cost.
* :class:`SamplingEstimator` — literal bitstring sampling per qubit-wise
  commuting measurement basis, for small circuits and validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .circuit import QuantumCircuit
from .pauli import PauliOperator, PauliString
from .statevector import Statevector

__all__ = [
    "EstimatorResult",
    "BaseEstimator",
    "ExactEstimator",
    "ShotNoiseEstimator",
    "SamplingEstimator",
    "DensityMatrixEstimator",
]


@dataclass(frozen=True)
class EstimatorResult:
    """One expectation-value estimate and its shot cost."""

    value: float
    shots_used: int
    variance: float = 0.0
    term_values: dict[PauliString, float] = field(default_factory=dict)


class BaseEstimator:
    """Common machinery: run the circuit, account shots, return an estimate."""

    def __init__(self, shots_per_term: int = 4096, seed: int | None = None) -> None:
        if shots_per_term < 1:
            raise ValueError("shots_per_term must be >= 1")
        self.shots_per_term = shots_per_term
        self.rng = np.random.default_rng(seed)
        self.total_shots = 0
        self.total_evaluations = 0

    def estimate(
        self,
        circuit: QuantumCircuit,
        operator: PauliOperator,
        initial_state: Statevector | None = None,
    ) -> EstimatorResult:
        """Estimate <H> for the bound circuit, charging shots to the ledger."""
        state = (initial_state or Statevector.zero_state(circuit.num_qubits)).evolve(circuit)
        result = self._estimate_state(state, operator)
        self.total_shots += result.shots_used
        self.total_evaluations += 1
        return result

    def estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        """Estimate <H> for an already-prepared state."""
        result = self._estimate_state(state, operator)
        self.total_shots += result.shots_used
        self.total_evaluations += 1
        return result

    def shots_for(self, operator: PauliOperator) -> int:
        """Shot cost charged for one evaluation of ``operator``."""
        non_identity = sum(1 for p, c in operator.items() if not p.is_identity and c != 0)
        return self.shots_per_term * max(non_identity, 1)

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        raise NotImplementedError


class ExactEstimator(BaseEstimator):
    """Noiseless expectation values with §7.3 shot accounting."""

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        term_values: dict[PauliString, float] = {}
        total = 0.0
        for pauli, coeff in operator.items():
            if coeff == 0:
                continue
            if pauli.is_identity:
                term_values[pauli] = 1.0
                total += coeff.real
                continue
            value = state.pauli_expectation(pauli)
            term_values[pauli] = value
            total += coeff.real * value
        return EstimatorResult(
            value=total,
            shots_used=self.shots_for(operator),
            variance=0.0,
            term_values=term_values,
        )


class ShotNoiseEstimator(BaseEstimator):
    """Exact value perturbed by the per-term finite-shot sampling variance.

    For a Pauli string P with expectation value p = <P> measured with ``s``
    shots, the sample-mean variance is (1 - p^2) / s.  The per-term estimates
    are independent, so the Hamiltonian estimate carries the summed,
    coefficient-weighted variance.
    """

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        term_values: dict[PauliString, float] = {}
        total = 0.0
        variance = 0.0
        shots = self.shots_per_term
        for pauli, coeff in operator.items():
            if coeff == 0:
                continue
            if pauli.is_identity:
                term_values[pauli] = 1.0
                total += coeff.real
                continue
            exact = state.pauli_expectation(pauli)
            term_variance = max(1.0 - exact ** 2, 0.0) / shots
            noisy = exact + self.rng.normal(0.0, np.sqrt(term_variance)) if term_variance > 0 else exact
            noisy = float(np.clip(noisy, -1.0, 1.0))
            term_values[pauli] = noisy
            total += coeff.real * noisy
            variance += (coeff.real ** 2) * term_variance
        return EstimatorResult(
            value=total,
            shots_used=self.shots_for(operator),
            variance=variance,
            term_values=term_values,
        )


class SamplingEstimator(BaseEstimator):
    """Literal measurement sampling, one basis per qubit-wise-commuting group.

    Intended for validation on small systems; cost grows with the number of
    commuting groups rather than with the number of terms.
    """

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        groups = operator.group_qubit_wise_commuting()
        term_values: dict[PauliString, float] = {}
        shots_used = 0
        for group in groups:
            non_identity = [p for p in group if not p.is_identity]
            if not non_identity:
                for pauli in group:
                    term_values[pauli] = 1.0
                continue
            basis = _measurement_basis(non_identity)
            rotated = state.evolve(_basis_rotation_circuit(basis))
            probabilities = rotated.probabilities()
            outcomes = self.rng.choice(
                probabilities.size, size=self.shots_per_term, p=probabilities / probabilities.sum()
            )
            shots_used += self.shots_per_term
            bit_table = _bit_table(outcomes, state.num_qubits)
            for pauli in group:
                if pauli.is_identity:
                    term_values[pauli] = 1.0
                    continue
                signs = np.ones(len(outcomes))
                for qubit in pauli.support():
                    signs *= 1.0 - 2.0 * bit_table[:, qubit]
                term_values[pauli] = float(signs.mean())
        total = 0.0
        for pauli, coeff in operator.items():
            if coeff == 0:
                continue
            total += coeff.real * term_values.get(pauli, 1.0 if pauli.is_identity else 0.0)
        return EstimatorResult(
            value=total,
            shots_used=max(shots_used, self.shots_per_term),
            variance=0.0,
            term_values=term_values,
        )


def _measurement_basis(paulis: list[PauliString]) -> list[str]:
    """Per-qubit measurement basis ('I', 'X', 'Y' or 'Z') for a QWC group."""
    num_qubits = paulis[0].num_qubits
    basis = ["I"] * num_qubits
    for pauli in paulis:
        for qubit, op in enumerate(pauli.label):
            if op == "I":
                continue
            if basis[qubit] == "I":
                basis[qubit] = op
            elif basis[qubit] != op:
                raise ValueError("terms are not qubit-wise commuting")
    return basis


def _basis_rotation_circuit(basis: list[str]) -> QuantumCircuit:
    """Circuit rotating each qubit's measurement basis to Z."""
    circuit = QuantumCircuit(len(basis), name="basis-rotation")
    for qubit, op in enumerate(basis):
        if op == "X":
            circuit.h(qubit)
        elif op == "Y":
            circuit.sdg(qubit)
            circuit.h(qubit)
    return circuit


def _bit_table(outcomes: np.ndarray, num_qubits: int) -> np.ndarray:
    """Bit value of each qubit for each sampled outcome (qubit 0 = MSB)."""
    table = np.zeros((len(outcomes), num_qubits), dtype=float)
    for column in range(num_qubits):
        shift = num_qubits - 1 - column
        table[:, column] = (outcomes >> shift) & 1
    return table


class DensityMatrixEstimator(BaseEstimator):
    """Noisy expectation values via density-matrix simulation (paper §8.7).

    The circuit is executed under a :class:`~repro.quantum.noise.NoiseModel`
    (gate-attached depolarising / decoherence channels, readout error folded
    into the Pauli expectations) and the shot ledger charges the same
    4096-per-term cost as every other estimator.  Sampling noise on top of the
    noisy expectation can be enabled with ``add_shot_noise``.
    """

    def __init__(
        self,
        noise_model,
        shots_per_term: int = 4096,
        seed: int | None = None,
        *,
        add_shot_noise: bool = False,
    ) -> None:
        super().__init__(shots_per_term=shots_per_term, seed=seed)
        from .density_matrix import DensityMatrixSimulator  # local import avoids a cycle

        self.noise_model = noise_model
        self.add_shot_noise = add_shot_noise
        self._simulator = DensityMatrixSimulator(noise_model)

    def estimate(
        self,
        circuit: QuantumCircuit,
        operator: PauliOperator,
        initial_state: Statevector | None = None,
    ) -> EstimatorResult:
        from .density_matrix import DensityMatrix

        if initial_state is None:
            rho = DensityMatrix.zero_state(circuit.num_qubits)
        else:
            rho = DensityMatrix.from_statevector(initial_state)
        state = self._simulator.run(circuit, rho)
        readout = self.noise_model.readout_error
        term_values: dict[PauliString, float] = {}
        total = 0.0
        for pauli, coeff in operator.items():
            if coeff == 0:
                continue
            if pauli.is_identity:
                term_values[pauli] = 1.0
                total += coeff.real
                continue
            value = float(np.trace(state.data @ pauli.to_matrix()).real)
            if readout > 0:
                value *= (1.0 - 2.0 * readout) ** pauli.weight
            if self.add_shot_noise:
                variance = max(1.0 - value ** 2, 0.0) / self.shots_per_term
                value = float(np.clip(value + self.rng.normal(0.0, np.sqrt(variance)), -1.0, 1.0))
            term_values[pauli] = value
            total += coeff.real * value
        result = EstimatorResult(
            value=total,
            shots_used=self.shots_for(operator),
            variance=0.0,
            term_values=term_values,
        )
        self.total_shots += result.shots_used
        self.total_evaluations += 1
        return result

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        raise NotImplementedError("DensityMatrixEstimator estimates from circuits, not states")
