"""Shot-based expectation-value estimation.

The paper evaluates every Pauli term with 4096 shots per evaluation (§7.3).
Running billions of literal shots is infeasible in a reproduction, so three
estimators with the same interface are provided:

* :class:`ExactEstimator` — noiseless expectation values (the shot ledger
  still charges shots, exactly as §7.3 prescribes).
* :class:`ShotNoiseEstimator` — exact value plus Gaussian noise with the
  correct single-Pauli sampling variance ``(1 - <P>^2) / shots`` per term,
  which is statistically equivalent to sampling each Pauli term with ``shots``
  shots at a tiny fraction of the cost.
* :class:`SamplingEstimator` — literal bitstring sampling per qubit-wise
  commuting measurement basis, for small circuits and validation tests.

Term-vector contract
--------------------
All estimators are thin noise layers over the compiled expectation engine
(:mod:`repro.quantum.engine`): every :class:`EstimatorResult` carries
``term_vector``, one estimate per Pauli term of the evaluated operator,
aligned with ``term_basis`` — the operator's term order, i.e. exactly the
order :meth:`PauliOperator.paulis` / a compiled engine reports.  Consumers
such as :class:`~repro.core.mixed_hamiltonian.MixedHamiltonian` recombine
per-task energies from this vector with a single matrix-vector product; the
legacy dict view is still available via :attr:`EstimatorResult.term_values`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .circuit import QuantumCircuit
from .engine import compiled_pauli_operator
from .pauli import PauliOperator, PauliString
from .statevector import Statevector

__all__ = [
    "EstimatorResult",
    "BaseEstimator",
    "ExactEstimator",
    "ShotNoiseEstimator",
    "SamplingEstimator",
    "DensityMatrixEstimator",
]


@dataclass(frozen=True)
class EstimatorResult:
    """One expectation-value estimate and its shot cost.

    ``term_vector[i]`` is the estimated expectation value of
    ``term_basis[i]``; the basis follows the evaluated operator's term order
    (including zero-coefficient padded terms, which downstream recombination
    needs), so consumers can combine it with any coefficient vector expressed
    in the same order without dictionary lookups.
    """

    value: float
    shots_used: int
    variance: float = 0.0
    term_basis: tuple[PauliString, ...] = ()
    term_vector: np.ndarray = field(default_factory=lambda: np.zeros(0), repr=False)

    @property
    def term_values(self) -> dict[PauliString, float]:
        """Dict view of the term vector (compatibility/UX helper)."""
        return {
            pauli: float(value)
            for pauli, value in zip(self.term_basis, self.term_vector)
        }


class BaseEstimator:
    """Common machinery: run the circuit, account shots, return an estimate.

    Estimators are the *noise layer* between execution backends and
    consumers: an :class:`~repro.quantum.backend.ExecutionBackend` produces
    exact per-term expectation values (and, on demand, prepared states), and
    :meth:`estimate_backend_result` turns that payload into an
    :class:`EstimatorResult` with this estimator's noise model and shot
    accounting.  The capability flags tell the scheduler which payload to
    request: ``consumes_term_vectors`` estimators work from exact term
    vectors (any backend, including Clifford); ``consumes_states`` estimators
    need the prepared statevector; estimators with neither flag (e.g. the
    density-matrix estimator, which must re-execute the circuit under its
    noise model) are driven through the per-request :meth:`estimate` path.
    """

    #: Can build an EstimatorResult from a backend's exact term vector.
    consumes_term_vectors = False
    #: Can build an EstimatorResult from a backend-prepared statevector.
    #: Both flags are opt-in: a custom estimator that advertises nothing is
    #: safely driven through per-request estimate() calls, whatever it
    #: overrides internally.
    consumes_states = False
    #: Name of the only backend whose payloads this estimator may consume
    #: (None = any).  The density-matrix estimator sets this to
    #: ``"density_matrix"``: its term vectors must be produced *under its
    #: noise model*, so the scheduler batches only through a matching noisy
    #: backend and falls back to per-request estimate() otherwise.
    requires_backend: str | None = None

    def __init__(self, shots_per_term: int = 4096, seed: int | None = None) -> None:
        if shots_per_term < 1:
            raise ValueError("shots_per_term must be >= 1")
        self.shots_per_term = shots_per_term
        self.rng = np.random.default_rng(seed)
        self.total_shots = 0
        self.total_evaluations = 0

    def estimate(
        self,
        circuit: QuantumCircuit,
        operator: PauliOperator,
        initial_state: Statevector | None = None,
    ) -> EstimatorResult:
        """Estimate <H> for the bound circuit, charging shots to the ledger."""
        state = (initial_state or Statevector.zero_state(circuit.num_qubits)).evolve(circuit)
        result = self._estimate_state(state, operator)
        self.total_shots += result.shots_used
        self.total_evaluations += 1
        return result

    def estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        """Estimate <H> for an already-prepared state."""
        result = self._estimate_state(state, operator)
        self.total_shots += result.shots_used
        self.total_evaluations += 1
        return result

    def estimate_backend_result(self, result, operator: PauliOperator) -> EstimatorResult:
        """Estimate <H> from an execution-backend result, charging shots.

        ``result`` is a :class:`~repro.quantum.backend.BackendResult`.  The
        exact term vector is preferred when this estimator can consume one;
        otherwise the prepared state is used.  Shot accounting matches
        :meth:`estimate` exactly.
        """
        if self.consumes_term_vectors and result.term_vector is not None:
            estimate = self._estimate_from_term_vector(operator, result.term_vector)
        elif result.state is not None:
            estimate = self._estimate_state(result.state, operator)
        else:
            raise ValueError(
                f"{type(self).__name__} cannot consume a backend result without "
                "a prepared state; request need_states=True or use estimate()"
            )
        self.total_shots += estimate.shots_used
        self.total_evaluations += 1
        return estimate

    def _estimate_from_term_vector(
        self, operator: PauliOperator, term_vector: np.ndarray
    ) -> EstimatorResult:
        raise NotImplementedError

    def shots_for(self, operator: PauliOperator) -> int:
        """Shot cost charged for one evaluation of ``operator``."""
        return self.shots_per_term * max(
            compiled_pauli_operator(operator).num_measured_terms, 1
        )

    def _shots_from_engine(self, engine) -> int:
        """Shot cost from an engine already in hand — skips the operator
        fingerprint revalidation :func:`compiled_pauli_operator` performs, so
        per-result accounting on the hot path stays O(1)."""
        return self.shots_per_term * max(engine.num_measured_terms, 1)

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        raise NotImplementedError


def _exact_term_vector(state: Statevector, operator: PauliOperator):
    """(engine, exact term vector) with identity terms pinned to exactly 1."""
    engine = compiled_pauli_operator(operator)
    vector = engine.expectation_values(state)
    vector[engine.identity_mask] = 1.0
    return engine, vector


class ExactEstimator(BaseEstimator):
    """Noiseless expectation values with §7.3 shot accounting."""

    consumes_term_vectors = True
    consumes_states = True

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        engine, vector = _exact_term_vector(state, operator)
        return self._estimate_from_term_vector(operator, vector)

    def _estimate_from_term_vector(
        self, operator: PauliOperator, term_vector: np.ndarray
    ) -> EstimatorResult:
        engine = compiled_pauli_operator(operator)
        vector = np.asarray(term_vector, dtype=float).copy()
        vector[engine.identity_mask] = 1.0
        return EstimatorResult(
            value=float(engine.coefficients @ vector),
            shots_used=self._shots_from_engine(engine),
            variance=0.0,
            term_basis=engine.paulis,
            term_vector=vector,
        )


class ShotNoiseEstimator(BaseEstimator):
    """Exact value perturbed by the per-term finite-shot sampling variance.

    For a Pauli string P with expectation value p = <P> measured with ``s``
    shots, the sample-mean variance is (1 - p^2) / s.  The per-term estimates
    are independent, so the Hamiltonian estimate carries the summed,
    coefficient-weighted variance.  The Gaussian perturbations for all terms
    are drawn in one vectorized call.
    """

    consumes_term_vectors = True
    consumes_states = True

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        _, exact = _exact_term_vector(state, operator)
        return self._estimate_from_term_vector(operator, exact)

    def _estimate_from_term_vector(
        self, operator: PauliOperator, term_vector: np.ndarray
    ) -> EstimatorResult:
        engine = compiled_pauli_operator(operator)
        exact = np.asarray(term_vector, dtype=float).copy()
        exact[engine.identity_mask] = 1.0
        term_variance = np.where(
            engine.identity_mask,
            0.0,
            np.clip(1.0 - exact ** 2, 0.0, None) / self.shots_per_term,
        )
        noisy = np.clip(
            exact + self.rng.normal(0.0, np.sqrt(term_variance)), -1.0, 1.0
        )
        coefficients = engine.coefficients
        return EstimatorResult(
            value=float(coefficients @ noisy),
            shots_used=self._shots_from_engine(engine),
            variance=float((coefficients ** 2) @ term_variance),
            term_basis=engine.paulis,
            term_vector=noisy,
        )


class SamplingEstimator(BaseEstimator):
    """Literal measurement sampling, one basis per qubit-wise-commuting group.

    Intended for validation on small systems; cost grows with the number of
    commuting groups rather than with the number of terms.
    """

    #: Sampling needs the prepared state (basis rotations), not term vectors.
    consumes_states = True

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        # This estimator measures via basis rotation and bitstring sampling —
        # only the operator's term order and coefficients are needed, so no
        # engine is compiled.
        paulis = tuple(operator.paulis())
        coefficients = operator.coefficient_vector(paulis)
        groups = operator.group_qubit_wise_commuting()
        term_values: dict[PauliString, float] = {}
        shots_used = 0
        for group in groups:
            non_identity = [p for p in group if not p.is_identity]
            if not non_identity:
                for pauli in group:
                    term_values[pauli] = 1.0
                continue
            basis = _measurement_basis(non_identity)
            rotated = state.evolve(_basis_rotation_circuit(basis))
            probabilities = rotated.probabilities()
            outcomes = self.rng.choice(
                probabilities.size, size=self.shots_per_term, p=probabilities / probabilities.sum()
            )
            shots_used += self.shots_per_term
            bit_table = _bit_table(outcomes, state.num_qubits)
            for pauli in group:
                if pauli.is_identity:
                    term_values[pauli] = 1.0
                    continue
                signs = np.ones(len(outcomes))
                for qubit in pauli.support():
                    signs *= 1.0 - 2.0 * bit_table[:, qubit]
                term_values[pauli] = float(signs.mean())
        vector = np.array(
            [
                term_values.get(pauli, 1.0 if pauli.is_identity else 0.0)
                for pauli in paulis
            ]
        )
        return EstimatorResult(
            value=float(coefficients @ vector),
            shots_used=max(shots_used, self.shots_per_term),
            variance=0.0,
            term_basis=paulis,
            term_vector=vector,
        )


def _measurement_basis(paulis: list[PauliString]) -> list[str]:
    """Per-qubit measurement basis ('I', 'X', 'Y' or 'Z') for a QWC group."""
    num_qubits = paulis[0].num_qubits
    basis = ["I"] * num_qubits
    for pauli in paulis:
        for qubit, op in enumerate(pauli.label):
            if op == "I":
                continue
            if basis[qubit] == "I":
                basis[qubit] = op
            elif basis[qubit] != op:
                raise ValueError("terms are not qubit-wise commuting")
    return basis


def _basis_rotation_circuit(basis: list[str]) -> QuantumCircuit:
    """Circuit rotating each qubit's measurement basis to Z."""
    circuit = QuantumCircuit(len(basis), name="basis-rotation")
    for qubit, op in enumerate(basis):
        if op == "X":
            circuit.h(qubit)
        elif op == "Y":
            circuit.sdg(qubit)
            circuit.h(qubit)
    return circuit


def _bit_table(outcomes: np.ndarray, num_qubits: int) -> np.ndarray:
    """Bit value of each qubit for each sampled outcome (qubit 0 = MSB)."""
    table = np.zeros((len(outcomes), num_qubits), dtype=float)
    for column in range(num_qubits):
        shift = num_qubits - 1 - column
        table[:, column] = (outcomes >> shift) & 1
    return table


class DensityMatrixEstimator(BaseEstimator):
    """Noisy expectation values via density-matrix simulation (paper §8.7).

    The circuit is executed under a :class:`~repro.quantum.noise.NoiseModel`
    (gate-attached depolarising / decoherence channels, readout error folded
    into the Pauli expectations) and the shot ledger charges the same
    4096-per-term cost as every other estimator.  Sampling noise on top of the
    noisy expectation can be enabled with ``add_shot_noise``.  All Pauli terms
    are evaluated in one vectorized engine pass over the density matrix.

    Batched execution: this estimator consumes term vectors, but only ones
    produced *under its own noise model* — ``requires_backend`` tells the
    round scheduler to batch through a
    :class:`~repro.quantum.backend.DensityMatrixBackend` (whose noisy term
    vectors are bit-identical to this estimator's per-request simulation) and
    to fall back to per-request :meth:`estimate` for every other backend.
    """

    consumes_term_vectors = True
    #: A noiselessly prepared pure state is not usable — noise must be
    #: applied during execution.
    consumes_states = False
    requires_backend = "density_matrix"

    def __init__(
        self,
        noise_model,
        shots_per_term: int = 4096,
        seed: int | None = None,
        *,
        add_shot_noise: bool = False,
    ) -> None:
        super().__init__(shots_per_term=shots_per_term, seed=seed)
        from .density_matrix import DensityMatrixSimulator  # local import avoids a cycle

        self.noise_model = noise_model
        self.add_shot_noise = add_shot_noise
        self._simulator = DensityMatrixSimulator(noise_model)

    def estimate(
        self,
        circuit: QuantumCircuit,
        operator: PauliOperator,
        initial_state: Statevector | None = None,
    ) -> EstimatorResult:
        from .density_matrix import (
            DensityMatrix,
            noisy_term_vector,
            validate_density_matrix_qubits,
        )

        # Validate the width before the first 2^n x 2^n allocation, so an
        # oversized request fails with the actionable message rather than an
        # OOM inside zero_state.
        validate_density_matrix_qubits(circuit.num_qubits)
        if initial_state is None:
            rho = DensityMatrix.zero_state(circuit.num_qubits)
        else:
            rho = DensityMatrix.from_statevector(initial_state)
        state = self._simulator.run(circuit, rho)
        engine = compiled_pauli_operator(operator)
        vector = noisy_term_vector(engine, state.data, self.noise_model.readout_error)
        result = self._estimate_from_term_vector(operator, vector)
        self.total_shots += result.shots_used
        self.total_evaluations += 1
        return result

    def estimate_backend_result(self, result, operator: PauliOperator) -> EstimatorResult:
        backend_name = getattr(result, "backend_name", None)
        if backend_name != self.requires_backend:
            raise ValueError(
                "DensityMatrixEstimator needs term vectors produced under its "
                f"noise model by the {self.requires_backend!r} backend; got a "
                f"result from {backend_name!r} — configure "
                "TreeVQAConfig(backend='density_matrix', noise_model=...) or "
                "use per-request estimate()"
            )
        return super().estimate_backend_result(result, operator)

    def _estimate_from_term_vector(
        self, operator: PauliOperator, term_vector: np.ndarray
    ) -> EstimatorResult:
        """Noise layer over an already-noisy term vector (readout included):
        optional shot noise plus §7.3 shot accounting."""
        engine = compiled_pauli_operator(operator)
        vector = np.asarray(term_vector, dtype=float).copy()
        vector[engine.identity_mask] = 1.0
        if self.add_shot_noise:
            term_variance = np.where(
                engine.identity_mask,
                0.0,
                np.clip(1.0 - vector ** 2, 0.0, None) / self.shots_per_term,
            )
            vector = np.clip(
                vector + self.rng.normal(0.0, np.sqrt(term_variance)), -1.0, 1.0
            )
        return EstimatorResult(
            value=float(engine.coefficients @ vector),
            shots_used=self._shots_from_engine(engine),
            variance=0.0,
            term_basis=engine.paulis,
            term_vector=vector,
        )

    def _estimate_state(self, state: Statevector, operator: PauliOperator) -> EstimatorResult:
        raise NotImplementedError("DensityMatrixEstimator estimates from circuits, not states")
