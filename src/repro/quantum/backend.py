"""Pluggable execution backends: batched state preparation and term evaluation.

A TreeVQA round is a bag of independent circuit executions — every active
cluster contributes the parameter points its optimizer asked for.  Executing
those one at a time wastes most of the wall-clock on per-call overhead (gate
matrix construction, tensordot bookkeeping, Python dispatch).  This module
turns a whole round into a small number of linear-algebra dispatches:

* :class:`ExecutionRequest` — one circuit execution to perform: either a
  fully bound circuit, or a compiled
  :class:`~repro.quantum.program.CircuitProgram` reference plus the parameter
  row to execute it at (the hot path — no circuit objects), together with the
  operator whose Pauli terms to measure and the initial state.
* :class:`ExecutionBackend` — the protocol: ``run_batch(requests)`` returns
  one :class:`BackendResult` (an exact per-term expectation vector, plus the
  prepared state on demand) per request, in request order.
* :class:`StatevectorBackend` — resolves every request to a (program,
  parameter-row) pair — program requests directly, bound circuits compiled on
  first sight through the persistent program cache — groups them by program
  fingerprint, and executes each group as one stacked ``(batch, 2**n)``
  dispatch straight from the stacked parameter matrix.  Because the program's
  stacked ``matmul`` performs the same per-slice GEMM as the sequential
  ``tensordot`` path in :meth:`~repro.quantum.statevector.Statevector.evolve`
  (and rotation matrices come from the same vectorized builders), the
  prepared amplitudes are bit-identical to the per-request path and
  independent of how requests are grouped into batches.
* :class:`CliffordBackend` — auto-dispatches any request whose bound angles
  are all multiples of π/2 (the CAFQA regime, paper §8.5) to the polynomial
  stabilizer simulator, and forwards everything else to a dense fallback
  backend.

Backends compute *exact* expectation values; shot/sampling noise remains the
estimator layer's job (see
:meth:`~repro.quantum.sampling.BaseEstimator.estimate_backend_result`).
Identity terms are pinned to exactly 1 in every returned term vector.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from .circuit import QuantumCircuit
from .clifford import CliffordSimulator, is_clifford_angle
from .engine import compiled_pauli_operator
from .pauli import PauliOperator, PauliString
from .program import CircuitProgram, program_for_bound_circuit
from .statevector import Statevector

__all__ = [
    "ExecutionRequest",
    "BackendResult",
    "ExecutionBackend",
    "StatevectorBackend",
    "CliffordBackend",
    "BACKEND_REGISTRY",
    "make_execution_backend",
    "request_initial_amplitudes",
    "resolve_program_request",
]


@dataclass(frozen=True)
class ExecutionRequest:
    """One circuit execution: prepare a state and measure an operator's terms.

    A request carries either a fully bound ``circuit`` (the legacy path,
    compiled onto the program path on first sight) or a ``program`` reference
    plus the ``parameters`` row to execute it at (the hot path — no circuit
    object is ever built for dense batched execution).

    Attributes:
        circuit: The fully bound circuit to execute (None for program requests).
        operator: The Pauli operator whose term expectation values to report
            (in the operator's term order).
        initial_state: Optional starting state (defaults to ``|0...0>``).
        initial_bitstring: The starting computational-basis label when known.
            Lets the Clifford backend skip dense-state inspection; dense
            backends ignore it when ``initial_state`` is given.
        tag: Free-form correlation handle echoed back on the result.
        program: Compiled circuit program to execute (exclusive with
            ``circuit``).
        parameters: Parameter row for ``program`` (required with it).
    """

    circuit: QuantumCircuit | None
    operator: PauliOperator
    initial_state: Statevector | None = None
    initial_bitstring: str | None = None
    tag: object = None
    program: CircuitProgram | None = None
    #: compare=False keeps the generated __eq__/__hash__ usable: an ndarray
    #: field would make equality raise and the request unhashable.
    parameters: np.ndarray | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.program is None:
            if self.circuit is None:
                raise ValueError("an execution request needs a circuit or a program")
            if self.parameters is not None:
                raise ValueError("parameters require a program")
            return
        if self.circuit is not None:
            raise ValueError("give either a circuit or a program, not both")
        if self.parameters is None:
            raise ValueError("program requests need a parameter row")
        row = np.asarray(self.parameters, dtype=float).ravel()
        if row.size != self.program.num_parameters:
            raise ValueError(
                f"program expects {self.program.num_parameters} parameters, "
                f"got {row.size}"
            )
        object.__setattr__(self, "parameters", row)

    @property
    def num_qubits(self) -> int:
        """Qubit count of the execution (circuit- or program-defined)."""
        if self.circuit is not None:
            return self.circuit.num_qubits
        return self.program.num_qubits

    def resolve_circuit(self) -> QuantumCircuit:
        """The bound circuit for this request, materialised (and cached) for
        program requests.  Only per-request fallback paths need this; batched
        dense execution never builds circuit objects."""
        if self.circuit is not None:
            return self.circuit
        cached = self.__dict__.get("_resolved_circuit")
        if cached is None:
            cached = self.program.bind(self.parameters)
            object.__setattr__(self, "_resolved_circuit", cached)
        return cached

    def __getstate__(self):
        """Requests pickle without the resolved-circuit memo: it is derivable
        from (program, parameters) and would bloat cross-process payloads."""
        state = dict(self.__dict__)
        state.pop("_resolved_circuit", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    def bound_instruction_params(self):
        """Lazily yield ``(gate, qubits, params)`` triples of the execution,
        without materialising circuit objects for program requests."""
        if self.program is not None:
            return self.program.bound_instruction_params(self.parameters)
        return (
            (inst.gate, inst.qubits, inst.params)
            for inst in self.circuit._instructions
        )


@dataclass(frozen=True)
class BackendResult:
    """Exact per-term expectation values for one executed request.

    ``term_vector[i]`` is the exact expectation value of ``term_basis[i]``
    (the request operator's term order, identity terms pinned to 1.0).
    ``state`` carries the prepared statevector when the caller asked for it
    and the backend produced one (the Clifford backend does not).
    ``metadata``, when present, carries backend-specific per-request
    diagnostics (e.g. the Pauli-propagation backend's truncation counts);
    it survives multi-process dispatch and is accumulated by the scheduler.
    """

    term_basis: tuple[PauliString, ...]
    term_vector: np.ndarray
    state: Statevector | None
    backend_name: str
    tag: object = None
    metadata: dict | None = None


class ExecutionBackend:
    """Protocol: execute a batch of requests through one dispatch."""

    name = "abstract"
    #: Whether ``need_states=True`` can be honoured (pure-state backends can
    #: attach prepared statevectors; the density-matrix backend cannot).
    provides_states = True

    def run_batch(
        self, requests: Sequence[ExecutionRequest], *, need_states: bool = False
    ) -> list[BackendResult]:
        """Execute ``requests`` and return results in request order.

        Contract every implementation (and wrapper) must honour:

        * **Ordering** — exactly one :class:`BackendResult` per request, in
          request order, each echoing its request's ``tag``.  Backends are
          free to reorder *internally* (group by program fingerprint, shard
          across worker processes), but the returned list order is the
          caller's request order.
        * **Composition-independence** — each request's payload depends only
          on that request (its program/circuit, parameter row, and initial
          state), never on which other requests share the batch.  Together
          with deterministic per-request execution this is what makes
          batched, chunked (``max_batch_size``), and multi-process
          (``execution_workers``) dispatch bit-identical to sequential
          execution; see ``docs/ARCHITECTURE.md``.
        * **Determinism** — no randomness below this layer: backends report
          exact expectation values (noisy backends apply their physics
          through deterministic superoperators).  Shot/sampling noise is the
          estimator layer's job.
        * **Errors** — an unservable request (unbound circuit, qubit-count
          mismatch, width beyond a backend's limit) raises with an
          actionable message and no partial results; batches are all-or-
          nothing.
        * **States** — ``need_states=True`` asks for the prepared
          statevector on each result (required by estimators that sample
          from states rather than consuming exact term vectors); backends
          that cannot attach one advertise ``provides_states = False`` so
          the scheduler never pairs them with a states-consuming estimator
          (it warns and falls back per request instead).  The sampling
          estimator stacks the attached states into one ``(B, 2^n)`` array
          and evaluates its compile-once measurement plans over the whole
          batch (:mod:`repro.quantum.measurement`), so states must obey the
          same composition-independence as every other payload field.
        """
        raise NotImplementedError


def request_initial_amplitudes(request: ExecutionRequest, num_qubits: int) -> np.ndarray:
    """Flat initial amplitudes for a request (defaults to ``|0...0>``).

    Shared by every dense backend (the statevector path uses the amplitudes
    directly; the density-matrix path takes their outer product), so request
    initial-state semantics cannot drift between execution modes.
    """
    if request.initial_state is not None:
        if request.initial_state.num_qubits != num_qubits:
            raise ValueError(
                f"initial state has {request.initial_state.num_qubits} qubits, "
                f"circuit has {num_qubits}"
            )
        return request.initial_state.data
    if request.initial_bitstring is not None:
        return Statevector.computational_basis(num_qubits, request.initial_bitstring).data
    return Statevector.zero_state(num_qubits).data


def resolve_program_request(
    request: ExecutionRequest,
) -> tuple[CircuitProgram, np.ndarray]:
    """(program, parameter row) for any request: program requests carry
    theirs; bound-circuit requests are compiled on first sight through the
    persistent program cache (requests sharing a gate/wiring sequence share
    one cached program).  Shared by every backend that groups requests by
    program fingerprint."""
    if request.program is not None:
        return request.program, request.parameters
    if not request.circuit.is_bound():
        raise ValueError("execution requests need fully bound circuits")
    return program_for_bound_circuit(request.circuit)


#: Tolerance for recognising a unit-modulus basis-state amplitude.
_BASIS_AMPLITUDE_ATOL = 1e-9


def _request_bitstring(request: ExecutionRequest) -> str | None:
    """Computational-basis label of the request's initial state, if it is one.

    A basis state carrying a global phase (e.g. amplitude −1 or i after an
    evolved preparation) still counts: Pauli expectation values are invariant
    under global phases, so such states are safe to route to phase-oblivious
    simulators.  Only the modulus of the single nonzero amplitude is checked
    (with tolerance for normalisation round-off).
    """
    if request.initial_bitstring is not None:
        return request.initial_bitstring
    if request.initial_state is None:
        return "0" * request.num_qubits
    data = request.initial_state.data
    nonzero = np.flatnonzero(data)
    if nonzero.size == 1 and abs(abs(data[nonzero[0]]) - 1.0) <= _BASIS_AMPLITUDE_ATOL:
        return format(int(nonzero[0]), f"0{request.initial_state.num_qubits}b")
    return None


class StatevectorBackend(ExecutionBackend):
    """Dense batched execution: one stacked dispatch per circuit program.

    Every request is resolved to a (program, parameter-row) pair: program
    requests carry theirs; bound-circuit requests are compiled on first sight
    through the persistent program cache (requests sharing a gate sequence
    and qubit wirings — the common case: every cluster of a controller round
    binds the same ansatz — share one cached program).  Each program group is
    then executed straight from its stacked parameter matrix; requests with
    different structures still execute correctly, each group in its own
    dispatch.
    """

    name = "statevector"
    provides_states = True

    def __init__(self) -> None:
        self.batches_run = 0
        self.requests_run = 0
        #: Requests that arrived on the program path (no circuit object).
        self.program_requests = 0

    def run_batch(
        self, requests: Sequence[ExecutionRequest], *, need_states: bool = False
    ) -> list[BackendResult]:
        requests = list(requests)
        results: list[BackendResult | None] = [None] * len(requests)
        rows: list[np.ndarray | None] = [None] * len(requests)
        groups: dict[tuple, list[int]] = {}
        programs: dict[tuple, CircuitProgram] = {}
        for index, request in enumerate(requests):
            program, row = resolve_program_request(request)
            if request.program is not None:
                self.program_requests += 1
            key = program.fingerprint
            programs.setdefault(key, program)
            groups.setdefault(key, []).append(index)
            rows[index] = row
        for key, indices in groups.items():
            program = programs[key]
            num_qubits = program.num_qubits
            initial = np.empty((len(indices), 1 << num_qubits), dtype=complex)
            for slot, index in enumerate(indices):
                initial[slot] = request_initial_amplitudes(requests[index], num_qubits)
            parameter_matrix = (
                np.stack([rows[index] for index in indices])
                if program.num_parameters
                else np.zeros((len(indices), 0))
            )
            states = program.execute(parameter_matrix, initial)
            for slot, index in enumerate(indices):
                request = requests[index]
                engine = compiled_pauli_operator(request.operator)
                vector = engine.expectation_values(states[slot])
                vector[engine.identity_mask] = 1.0
                results[index] = BackendResult(
                    term_basis=engine.paulis,
                    term_vector=vector,
                    state=Statevector(states[slot]) if need_states else None,
                    backend_name=self.name,
                    tag=request.tag,
                )
        self.batches_run += 1
        self.requests_run += len(requests)
        return results  # type: ignore[return-value]


#: Gates the stabilizer simulator handles unconditionally.
_CLIFFORD_FIXED_GATES = frozenset(
    {"i", "h", "s", "sdg", "x", "y", "z", "cx", "cz", "swap"}
)
#: Rotation gates the stabilizer simulator handles at multiples of π/2.
_CLIFFORD_ROTATION_GATES = frozenset({"rx", "ry", "rz", "p", "rzz"})


class CliffordBackend(ExecutionBackend):
    """Stabilizer fast path with dense fallback (paper §8.5, CAFQA regime).

    Requests whose bound angles are all multiples of π/2 (and whose initial
    state is a computational-basis state, up to a global phase) are simulated
    in polynomial time by :class:`~repro.quantum.clifford.CliffordSimulator`;
    everything else — including any request for which the caller needs the
    prepared dense state — is forwarded to the ``fallback`` backend.  Program
    requests are routed from their parameter rows without materialising
    circuits; only stabilizer-simulated requests bind one.  The
    ``clifford_requests`` / ``fallback_requests`` counters expose the routing
    for tests and monitoring.
    """

    name = "clifford"
    provides_states = True

    def __init__(self, fallback: ExecutionBackend | None = None) -> None:
        self.fallback = fallback if fallback is not None else StatevectorBackend()
        self.clifford_requests = 0
        self.fallback_requests = 0

    def run_batch(
        self, requests: Sequence[ExecutionRequest], *, need_states: bool = False
    ) -> list[BackendResult]:
        requests = list(requests)
        results: list[BackendResult | None] = [None] * len(requests)
        fallback_indices: list[int] = []
        for index, request in enumerate(requests):
            if need_states or not self.is_clifford_request(request):
                fallback_indices.append(index)
                continue
            results[index] = self._run_clifford(request)
            self.clifford_requests += 1
        if fallback_indices:
            self.fallback_requests += len(fallback_indices)
            forwarded = self.fallback.run_batch(
                [requests[i] for i in fallback_indices], need_states=need_states
            )
            for index, result in zip(fallback_indices, forwarded):
                results[index] = result
        return results  # type: ignore[return-value]

    @staticmethod
    def is_clifford_request(request: ExecutionRequest) -> bool:
        """True if the stabilizer simulator can execute this request."""
        if _request_bitstring(request) is None:
            return False
        for gate, _, params in request.bound_instruction_params():
            if gate in _CLIFFORD_FIXED_GATES:
                continue
            if gate in _CLIFFORD_ROTATION_GATES and all(
                isinstance(param, (int, float)) and is_clifford_angle(param)
                for param in params
            ):
                continue
            return False
        return True

    def _run_clifford(self, request: ExecutionRequest) -> BackendResult:
        num_qubits = request.num_qubits
        bitstring = _request_bitstring(request)
        assert bitstring is not None  # guaranteed by is_clifford_request
        simulator = CliffordSimulator(num_qubits)
        if "1" in bitstring:
            preparation = QuantumCircuit(num_qubits, name="basis-prep")
            for qubit, bit in enumerate(bitstring):
                if bit == "1":
                    preparation.x(qubit)
            simulator.apply_circuit(preparation)
        simulator.apply_circuit(request.resolve_circuit())
        engine = compiled_pauli_operator(request.operator)
        vector = np.array(
            [
                1.0 if pauli.is_identity else simulator.pauli_expectation(pauli)
                for pauli in engine.paulis
            ]
        )
        return BackendResult(
            term_basis=engine.paulis,
            term_vector=vector,
            state=None,
            backend_name=self.name,
            tag=request.tag,
        )


#: Name → backend class.  :mod:`repro.quantum.density_matrix` registers
#: ``"density_matrix"`` here at import time, and
#: :mod:`repro.quantum.pauli_propagation` registers ``"pauli_propagation"``
#: and ``"auto"`` (they depend on this module, so they cannot be listed
#: directly without an import cycle).
BACKEND_REGISTRY: dict[str, type[ExecutionBackend]] = {
    "statevector": StatevectorBackend,
    "clifford": CliffordBackend,
}


def make_execution_backend(
    name: str, *, noise_model=None, propagation=None
) -> ExecutionBackend:
    """Construct a registered execution backend by name.

    ``noise_model`` is forwarded to backends that execute under one (class
    attribute ``accepts_noise_model``, e.g. the density-matrix backend);
    passing it to a purely unitary backend is rejected rather than silently
    ignored.  ``propagation`` (a ``PauliPropagationConfig``) is likewise
    forwarded to backends that truncate a Pauli propagation (class attribute
    ``accepts_propagation_config``: the propagation backend and the width
    router) and rejected elsewhere.
    """
    if name not in BACKEND_REGISTRY:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(BACKEND_REGISTRY)}"
        )
    cls = BACKEND_REGISTRY[name]
    kwargs: dict = {}
    if getattr(cls, "accepts_noise_model", False):
        kwargs["noise_model"] = noise_model
    elif noise_model is not None:
        raise ValueError(
            f"backend {name!r} executes noiselessly and does not accept a "
            "noise model; use backend='density_matrix' for noisy execution"
        )
    if propagation is not None:
        if not getattr(cls, "accepts_propagation_config", False):
            raise ValueError(
                f"backend {name!r} does not truncate a Pauli propagation and "
                "does not accept a propagation config; use "
                "backend='pauli_propagation' or backend='auto'"
            )
        kwargs["propagation"] = propagation
    return cls(**kwargs)
