"""Pluggable execution backends: batched state preparation and term evaluation.

A TreeVQA round is a bag of independent circuit executions — every active
cluster contributes the parameter points its optimizer asked for.  Executing
those one at a time wastes most of the wall-clock on per-call overhead (gate
matrix construction, tensordot bookkeeping, Python dispatch).  This module
turns a whole round into a small number of linear-algebra dispatches:

* :class:`ExecutionRequest` — one circuit execution to perform: a bound
  circuit, the operator whose Pauli terms to measure, and the initial state.
* :class:`ExecutionBackend` — the protocol: ``run_batch(requests)`` returns
  one :class:`BackendResult` (an exact per-term expectation vector, plus the
  prepared state on demand) per request, in request order.
* :class:`StatevectorBackend` — groups requests by circuit *structure* (gate
  names and qubit wirings) and evolves each group as one stacked
  ``(batch, 2**n)`` array: every gate becomes a single batched ``matmul``
  with per-request gate matrices.  Because NumPy's stacked ``matmul``
  performs the same per-slice GEMM as the sequential ``tensordot`` path in
  :meth:`~repro.quantum.statevector.Statevector.evolve`, the prepared
  amplitudes are bit-identical to the per-request path and independent of how
  requests are grouped into batches.
* :class:`CliffordBackend` — auto-dispatches any request whose bound angles
  are all multiples of π/2 (the CAFQA regime, paper §8.5) to the polynomial
  stabilizer simulator, and forwards everything else to a dense fallback
  backend.

Backends compute *exact* expectation values; shot/sampling noise remains the
estimator layer's job (see
:meth:`~repro.quantum.sampling.BaseEstimator.estimate_backend_result`).
Identity terms are pinned to exactly 1 in every returned term vector.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .circuit import QuantumCircuit
from .clifford import CliffordSimulator, is_clifford_angle
from .engine import compiled_pauli_operator
from .gates import batched_rotation_matrices, gate_matrix
from .pauli import PauliOperator, PauliString
from .statevector import Statevector

__all__ = [
    "ExecutionRequest",
    "BackendResult",
    "ExecutionBackend",
    "StatevectorBackend",
    "CliffordBackend",
    "BACKEND_REGISTRY",
    "make_execution_backend",
]


@dataclass(frozen=True)
class ExecutionRequest:
    """One circuit execution: prepare a state and measure an operator's terms.

    Attributes:
        circuit: The fully bound circuit to execute.
        operator: The Pauli operator whose term expectation values to report
            (in the operator's term order).
        initial_state: Optional starting state (defaults to ``|0...0>``).
        initial_bitstring: The starting computational-basis label when known.
            Lets the Clifford backend skip dense-state inspection; dense
            backends ignore it when ``initial_state`` is given.
        tag: Free-form correlation handle echoed back on the result.
    """

    circuit: QuantumCircuit
    operator: PauliOperator
    initial_state: Statevector | None = None
    initial_bitstring: str | None = None
    tag: object = None


@dataclass(frozen=True)
class BackendResult:
    """Exact per-term expectation values for one executed request.

    ``term_vector[i]`` is the exact expectation value of ``term_basis[i]``
    (the request operator's term order, identity terms pinned to 1.0).
    ``state`` carries the prepared statevector when the caller asked for it
    and the backend produced one (the Clifford backend does not).
    """

    term_basis: tuple[PauliString, ...]
    term_vector: np.ndarray
    state: Statevector | None
    backend_name: str
    tag: object = None


class ExecutionBackend:
    """Protocol: execute a batch of requests through one dispatch."""

    name = "abstract"

    def run_batch(
        self, requests: Sequence[ExecutionRequest], *, need_states: bool = False
    ) -> list[BackendResult]:
        """Execute ``requests`` and return results in request order.

        ``need_states`` asks the backend to attach the prepared statevector to
        each result (required by estimators that sample from states rather
        than consuming exact term vectors).
        """
        raise NotImplementedError


def _initial_amplitudes(request: ExecutionRequest, num_qubits: int) -> np.ndarray:
    """Flat initial amplitudes for a request (defaults to ``|0...0>``)."""
    if request.initial_state is not None:
        if request.initial_state.num_qubits != num_qubits:
            raise ValueError(
                f"initial state has {request.initial_state.num_qubits} qubits, "
                f"circuit has {num_qubits}"
            )
        return request.initial_state.data
    if request.initial_bitstring is not None:
        return Statevector.computational_basis(num_qubits, request.initial_bitstring).data
    return Statevector.zero_state(num_qubits).data


def _request_bitstring(request: ExecutionRequest) -> str | None:
    """Computational-basis label of the request's initial state, if it is one."""
    if request.initial_bitstring is not None:
        return request.initial_bitstring
    if request.initial_state is None:
        return "0" * request.circuit.num_qubits
    data = request.initial_state.data
    nonzero = np.flatnonzero(data)
    if nonzero.size == 1 and data[nonzero[0]] == 1.0:
        return format(int(nonzero[0]), f"0{request.initial_state.num_qubits}b")
    return None


def _apply_gate_batched(
    tensor: np.ndarray, matrices: np.ndarray, qubits: tuple[int, ...]
) -> np.ndarray:
    """Apply per-request k-qubit gate matrices across a stacked state tensor.

    ``tensor`` has shape ``(batch,) + (2,) * n``; ``matrices`` has shape
    ``(batch, 2**k, 2**k)``.  The stacked ``matmul`` performs one GEMM per
    batch row with the same operand shapes as the sequential ``tensordot``
    path, so each row's amplitudes are bit-identical to evolving that request
    alone.
    """
    k = len(qubits)
    batch = tensor.shape[0]
    axes = [1 + q for q in qubits]
    moved = np.moveaxis(tensor, axes, range(1, k + 1))
    rest = moved.shape[k + 1 :]
    arr = np.ascontiguousarray(moved).reshape(batch, 1 << k, -1)
    out = np.matmul(matrices, arr)
    out = out.reshape((batch,) + (2,) * k + rest)
    return np.moveaxis(out, range(1, k + 1), axes)


class StatevectorBackend(ExecutionBackend):
    """Dense batched execution: one stacked array per circuit structure.

    Requests sharing a gate sequence (names and qubit wirings — the common
    case: every cluster of a controller round binds the same ansatz) are
    evolved together; per-request angles become stacked gate matrices.
    Requests with different structures still execute correctly, each group in
    its own dispatch.
    """

    name = "statevector"

    def __init__(self) -> None:
        self.batches_run = 0
        self.requests_run = 0

    def run_batch(
        self, requests: Sequence[ExecutionRequest], *, need_states: bool = False
    ) -> list[BackendResult]:
        requests = list(requests)
        results: list[BackendResult | None] = [None] * len(requests)
        groups: dict[tuple, list[int]] = {}
        for index, request in enumerate(requests):
            if not request.circuit.is_bound():
                raise ValueError("execution requests need fully bound circuits")
            structure = tuple(
                (inst.gate, inst.qubits) for inst in request.circuit.instructions
            )
            groups.setdefault((request.circuit.num_qubits, structure), []).append(index)
        for (num_qubits, _), indices in groups.items():
            states = self._prepare_group([requests[i] for i in indices], num_qubits)
            for row, index in enumerate(indices):
                request = requests[index]
                engine = compiled_pauli_operator(request.operator)
                vector = engine.expectation_values(states[row])
                vector[engine.identity_mask] = 1.0
                results[index] = BackendResult(
                    term_basis=engine.paulis,
                    term_vector=vector,
                    state=Statevector(states[row]) if need_states else None,
                    backend_name=self.name,
                    tag=request.tag,
                )
        self.batches_run += 1
        self.requests_run += len(requests)
        return results  # type: ignore[return-value]

    def _prepare_group(
        self, group: list[ExecutionRequest], num_qubits: int
    ) -> np.ndarray:
        """Evolve all requests of one circuit structure as a stacked array."""
        batch = len(group)
        dim = 1 << num_qubits
        states = np.zeros((batch, dim), dtype=complex)
        for row, request in enumerate(group):
            states[row] = _initial_amplitudes(request, num_qubits)
        tensor = states.reshape((batch,) + (2,) * num_qubits)
        instructions = [request.circuit.instructions for request in group]
        for position, first in enumerate(instructions[0]):
            matrices = self._stacked_matrices(instructions, position, batch)
            tensor = _apply_gate_batched(tensor, matrices, first.qubits)
        return tensor.reshape(batch, dim)

    @staticmethod
    def _stacked_matrices(
        instructions: list[list], position: int, batch: int
    ) -> np.ndarray:
        """Per-request gate matrices for one instruction position, stacked.

        Single-angle rotation gates always go through the vectorized builder
        — even for a batch of one or a shared angle — so the matrices are
        the same elementwise computation regardless of how requests are
        grouped.  That keeps batched and ``max_batch_size=1`` executions
        bit-identical on any platform, independent of whether the vectorized
        trig ufuncs happen to match the scalar libm used by
        :func:`~repro.quantum.gates.gate_matrix`.
        """
        first = instructions[0][position]
        if len(first.params) == 1:
            same = all(
                insts[position].params == first.params for insts in instructions
            )
            thetas = (
                np.asarray([first.params[0]], dtype=float)
                if same
                else np.fromiter(
                    (insts[position].params[0] for insts in instructions),
                    dtype=float,
                    count=batch,
                )
            )
            matrices = batched_rotation_matrices(first.gate, thetas)
            if matrices is not None:
                if same:
                    return np.repeat(matrices, batch, axis=0)
                return matrices
        if not first.params or all(
            insts[position].params == first.params for insts in instructions
        ):
            matrix = gate_matrix(first.gate, *first.params)
            return np.repeat(matrix[None, :, :], batch, axis=0)
        return np.stack(
            [
                gate_matrix(insts[position].gate, *insts[position].params)
                for insts in instructions
            ]
        )


#: Gates the stabilizer simulator handles unconditionally.
_CLIFFORD_FIXED_GATES = frozenset(
    {"i", "h", "s", "sdg", "x", "y", "z", "cx", "cz", "swap"}
)
#: Rotation gates the stabilizer simulator handles at multiples of π/2.
_CLIFFORD_ROTATION_GATES = frozenset({"rx", "ry", "rz", "p", "rzz"})


class CliffordBackend(ExecutionBackend):
    """Stabilizer fast path with dense fallback (paper §8.5, CAFQA regime).

    Requests whose bound angles are all multiples of π/2 (and whose initial
    state is a computational-basis state) are simulated in polynomial time by
    :class:`~repro.quantum.clifford.CliffordSimulator`; everything else —
    including any request for which the caller needs the prepared dense state
    — is forwarded to the ``fallback`` backend.  The ``clifford_requests`` /
    ``fallback_requests`` counters expose the routing for tests and
    monitoring.
    """

    name = "clifford"

    def __init__(self, fallback: ExecutionBackend | None = None) -> None:
        self.fallback = fallback if fallback is not None else StatevectorBackend()
        self.clifford_requests = 0
        self.fallback_requests = 0

    def run_batch(
        self, requests: Sequence[ExecutionRequest], *, need_states: bool = False
    ) -> list[BackendResult]:
        requests = list(requests)
        results: list[BackendResult | None] = [None] * len(requests)
        fallback_indices: list[int] = []
        for index, request in enumerate(requests):
            if need_states or not self.is_clifford_request(request):
                fallback_indices.append(index)
                continue
            results[index] = self._run_clifford(request)
            self.clifford_requests += 1
        if fallback_indices:
            self.fallback_requests += len(fallback_indices)
            forwarded = self.fallback.run_batch(
                [requests[i] for i in fallback_indices], need_states=need_states
            )
            for index, result in zip(fallback_indices, forwarded):
                results[index] = result
        return results  # type: ignore[return-value]

    @staticmethod
    def is_clifford_request(request: ExecutionRequest) -> bool:
        """True if the stabilizer simulator can execute this request."""
        if _request_bitstring(request) is None:
            return False
        for inst in request.circuit.instructions:
            if inst.gate in _CLIFFORD_FIXED_GATES:
                continue
            if inst.gate in _CLIFFORD_ROTATION_GATES and all(
                isinstance(param, (int, float)) and is_clifford_angle(param)
                for param in inst.params
            ):
                continue
            return False
        return True

    def _run_clifford(self, request: ExecutionRequest) -> BackendResult:
        num_qubits = request.circuit.num_qubits
        bitstring = _request_bitstring(request)
        assert bitstring is not None  # guaranteed by is_clifford_request
        simulator = CliffordSimulator(num_qubits)
        if "1" in bitstring:
            preparation = QuantumCircuit(num_qubits, name="basis-prep")
            for qubit, bit in enumerate(bitstring):
                if bit == "1":
                    preparation.x(qubit)
            simulator.apply_circuit(preparation)
        simulator.apply_circuit(request.circuit)
        engine = compiled_pauli_operator(request.operator)
        vector = np.array(
            [
                1.0 if pauli.is_identity else simulator.pauli_expectation(pauli)
                for pauli in engine.paulis
            ]
        )
        return BackendResult(
            term_basis=engine.paulis,
            term_vector=vector,
            state=None,
            backend_name=self.name,
            tag=request.tag,
        )


BACKEND_REGISTRY: dict[str, type[ExecutionBackend]] = {
    "statevector": StatevectorBackend,
    "clifford": CliffordBackend,
}


def make_execution_backend(name: str) -> ExecutionBackend:
    """Construct a registered execution backend by name."""
    if name not in BACKEND_REGISTRY:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(BACKEND_REGISTRY)}"
        )
    return BACKEND_REGISTRY[name]()
