"""Exact statevector simulation.

Replaces Qiskit's ``StatevectorSimulator`` in the paper's methodology (§7.4).
States are stored as rank-n tensors of shape ``(2,) * num_qubits`` with axis
``i`` corresponding to qubit ``i`` (qubit 0 is the most significant bit of the
flattened index), which makes gate application a couple of ``tensordot`` /
``moveaxis`` operations.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .circuit import QuantumCircuit
from .gates import gate_matrix
from .pauli import PauliOperator, PauliString

__all__ = ["Statevector", "StatevectorSimulator", "apply_pauli_string"]


class Statevector:
    """An exact pure state on ``num_qubits`` qubits."""

    def __init__(self, data: np.ndarray | Sequence[complex]) -> None:
        array = np.asarray(data, dtype=complex).ravel()
        size = array.size
        num_qubits = int(round(np.log2(size)))
        if 2 ** num_qubits != size:
            raise ValueError(f"statevector length {size} is not a power of two")
        self.num_qubits = num_qubits
        self._data = array.copy()

    # -- constructors ---------------------------------------------------------

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        """|00...0>."""
        data = np.zeros(2 ** num_qubits, dtype=complex)
        data[0] = 1.0
        return cls(data)

    @classmethod
    def computational_basis(cls, num_qubits: int, bitstring: str | int) -> "Statevector":
        """A computational basis state given as a bitstring ('0110') or integer.

        Bitstrings are read with qubit 0 first (leftmost character).
        """
        if isinstance(bitstring, str):
            if len(bitstring) != num_qubits:
                raise ValueError("bitstring length must equal num_qubits")
            index = int(bitstring, 2)
        else:
            index = int(bitstring)
        if not 0 <= index < 2 ** num_qubits:
            raise ValueError("basis index out of range")
        data = np.zeros(2 ** num_qubits, dtype=complex)
        data[index] = 1.0
        return cls(data)

    # -- views -----------------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The amplitudes as a flat copy."""
        return self._data.copy()

    def tensor(self) -> np.ndarray:
        """The amplitudes reshaped to ``(2,) * num_qubits``."""
        return self._data.reshape((2,) * self.num_qubits)

    def probabilities(self) -> np.ndarray:
        """Measurement probabilities in the computational basis."""
        return np.abs(self._data) ** 2

    def norm(self) -> float:
        return float(np.linalg.norm(self._data))

    def normalized(self) -> "Statevector":
        """Return a unit-norm copy."""
        norm = self.norm()
        if norm == 0:
            raise ValueError("cannot normalize the zero vector")
        return Statevector(self._data / norm)

    # -- quantities --------------------------------------------------------------

    def overlap(self, other: "Statevector") -> complex:
        """Inner product <self|other>."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("qubit-count mismatch")
        return complex(np.vdot(self._data, other._data))

    def fidelity(self, other: "Statevector") -> float:
        """State fidelity |<self|other>|^2."""
        return float(abs(self.overlap(other)) ** 2)

    def expectation(self, operator: PauliOperator) -> float:
        """Exact expectation value of a Hermitian Pauli operator.

        Evaluates all terms in one vectorized pass through the compiled
        expectation engine (:mod:`repro.quantum.engine`); the compiled tables
        are cached on the operator, so repeated evaluations against different
        states amortise the compile cost.  Beyond the engine's qubit cap
        (where the O(terms × 2^n) tables would dwarf the state itself) the
        factory transparently substitutes a per-term evaluator.
        """
        if operator.num_qubits != self.num_qubits:
            raise ValueError("qubit-count mismatch")
        from .engine import compiled_pauli_operator  # local import to avoid a cycle

        return compiled_pauli_operator(operator).expectation(self._data)

    def pauli_expectation(self, pauli: PauliString | str) -> float:
        """Expectation value of a single Pauli string."""
        label = pauli.label if isinstance(pauli, PauliString) else pauli
        tensor = self.tensor()
        transformed = apply_pauli_string(tensor, label)
        return float(np.vdot(tensor, transformed).real)

    def sample_counts(self, shots: int, rng: np.random.Generator) -> dict[str, int]:
        """Sample measurement outcomes in the computational basis.

        ``rng`` is required: which generator draws here decides whether runs
        are reproducible, so callers must pass a seeded
        ``np.random.Generator`` (the estimator layer derives per-request ones
        from its documented SeedSequence rule).

        Draws ride the shared vectorized inverse-CDF sampler
        (:func:`repro.quantum.measurement.sample_outcomes`) — one uniform
        block and one cumulative pass instead of the O(2^n) setup
        ``rng.choice`` performs per call.
        """
        if shots < 1:
            raise ValueError("shots must be >= 1")
        if not isinstance(rng, np.random.Generator):
            raise TypeError(
                "sample_counts requires an explicit np.random.Generator; "
                "pass np.random.default_rng(seed) so draws are reproducible"
            )
        from .measurement import sample_outcomes  # local import to avoid a cycle

        probabilities = self.probabilities()
        outcomes = sample_outcomes(probabilities[None, :], rng.random((1, shots)))[0]
        unique, multiplicities = np.unique(outcomes, return_counts=True)
        width = self.num_qubits
        return {
            format(int(outcome), f"0{width}b"): int(count)
            for outcome, count in zip(unique, multiplicities)
        }

    # -- evolution ----------------------------------------------------------------

    def evolve(self, circuit: QuantumCircuit) -> "Statevector":
        """Apply a bound circuit and return the resulting state."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit and state qubit counts differ")
        if not circuit.is_bound():
            raise ValueError("circuit has unbound parameters; call circuit.bind first")
        tensor = self.tensor()
        for inst in circuit.instructions:
            matrix = gate_matrix(inst.gate, *inst.params)  # type: ignore[arg-type]
            tensor = _apply_gate(tensor, matrix, inst.qubits)
        return Statevector(tensor.ravel())


def _apply_gate(tensor: np.ndarray, matrix: np.ndarray, qubits: tuple[int, ...]) -> np.ndarray:
    """Apply a k-qubit gate matrix to the listed qubit axes of the state tensor."""
    k = len(qubits)
    num_qubits = tensor.ndim
    gate_tensor = matrix.reshape((2,) * (2 * k))
    # Contract the gate's "input" indices with the state's qubit axes.
    tensor = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), list(qubits)))
    # tensordot moves the contracted axes to the front in gate order; put them back.
    return np.moveaxis(tensor, list(range(k)), list(qubits))


def apply_pauli_string(tensor: np.ndarray, label: str) -> np.ndarray:
    """Apply a Pauli string (given as a label) to a state tensor, returning a copy."""
    if len(label) != tensor.ndim:
        raise ValueError("Pauli label length must equal the number of qubits")
    result = tensor
    copied = False
    for qubit, op in enumerate(label):
        if op == "I":
            continue
        if not copied:
            result = result.copy()
            copied = True
        if op == "X":
            result = np.flip(result, axis=qubit)
        elif op == "Y":
            result = np.flip(result, axis=qubit)
            # After the flip, index 0 along the axis came from |1> and index 1 from |0>.
            slicer0 = [slice(None)] * result.ndim
            slicer1 = [slice(None)] * result.ndim
            slicer0[qubit] = 0
            slicer1[qubit] = 1
            result[tuple(slicer0)] *= -1j
            result[tuple(slicer1)] *= 1j
        elif op == "Z":
            slicer = [slice(None)] * result.ndim
            slicer[qubit] = 1
            result[tuple(slicer)] *= -1
        else:  # pragma: no cover - PauliString validates labels upstream
            raise ValueError(f"invalid Pauli factor {op!r}")
    if not copied:
        result = result.copy()
    return result


class StatevectorSimulator:
    """Run bound circuits and evaluate Pauli expectation values exactly."""

    def __init__(self) -> None:
        self.circuits_run = 0

    def run(
        self, circuit: QuantumCircuit, initial_state: Statevector | None = None
    ) -> Statevector:
        """Simulate a bound circuit from ``initial_state`` (default |0...0>)."""
        state = initial_state or Statevector.zero_state(circuit.num_qubits)
        self.circuits_run += 1
        return state.evolve(circuit)

    def expectation(
        self,
        circuit: QuantumCircuit,
        operator: PauliOperator,
        initial_state: Statevector | None = None,
    ) -> float:
        """<psi(circuit)|operator|psi(circuit)> for a bound circuit."""
        return self.run(circuit, initial_state).expectation(operator)
