"""Exact ground-state solvers used as the reference for error and fidelity.

The paper's fidelity metric (§7.2) needs the true ground-state energy E_gs of
every task Hamiltonian.  Small systems are diagonalised densely; larger ones
use sparse Lanczos (``scipy.sparse.linalg.eigsh``) on a sparse matrix built
term-by-term from the Pauli decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import eigsh

from .pauli import PauliOperator, PauliString
from .statevector import Statevector

__all__ = ["GroundStateResult", "ground_state", "ground_state_energy", "pauli_to_sparse"]

_DENSE_QUBIT_LIMIT = 10

_SPARSE_SINGLE = {
    "I": sparse.identity(2, format="csr", dtype=complex),
    "X": sparse.csr_matrix(np.array([[0, 1], [1, 0]], dtype=complex)),
    "Y": sparse.csr_matrix(np.array([[0, -1j], [1j, 0]], dtype=complex)),
    "Z": sparse.csr_matrix(np.array([[1, 0], [0, -1]], dtype=complex)),
}


@dataclass(frozen=True)
class GroundStateResult:
    """Ground-state energy and state of a Hamiltonian."""

    energy: float
    statevector: Statevector
    gap: float | None = None

    @property
    def num_qubits(self) -> int:
        return self.statevector.num_qubits


def pauli_to_sparse(operator: PauliOperator) -> sparse.csr_matrix:
    """Sparse CSR matrix of a Pauli operator."""
    dim = 2 ** operator.num_qubits
    total = sparse.csr_matrix((dim, dim), dtype=complex)
    for pauli, coeff in operator.items():
        if coeff == 0:
            continue
        term = _sparse_pauli_string(pauli)
        total = total + coeff * term
    return total.tocsr()


def _sparse_pauli_string(pauli: PauliString) -> sparse.csr_matrix:
    matrix = sparse.identity(1, format="csr", dtype=complex)
    for label in pauli.label:
        matrix = sparse.kron(matrix, _SPARSE_SINGLE[label], format="csr")
    return matrix


def ground_state(operator: PauliOperator, *, compute_gap: bool = False) -> GroundStateResult:
    """Exact ground state of a Hermitian Pauli operator.

    Dense diagonalisation is used up to 10 qubits, sparse Lanczos beyond.  If
    ``compute_gap`` is true the energy gap to the first excited state is also
    returned (used by the adiabatic-continuity discussion in §3).
    """
    if not operator.is_hermitian():
        raise ValueError("ground_state requires a Hermitian operator")
    if operator.num_terms == 0:
        state = Statevector.zero_state(operator.num_qubits)
        return GroundStateResult(energy=0.0, statevector=state, gap=0.0 if compute_gap else None)

    if operator.num_qubits <= _DENSE_QUBIT_LIMIT:
        matrix = operator.to_matrix()
        eigenvalues, eigenvectors = np.linalg.eigh(matrix)
        energy = float(eigenvalues[0])
        vector = eigenvectors[:, 0]
        has_gap = compute_gap and len(eigenvalues) > 1
        gap = float(eigenvalues[1] - eigenvalues[0]) if has_gap else None
    else:
        matrix = pauli_to_sparse(operator)
        k = 2 if compute_gap else 1
        eigenvalues, eigenvectors = eigsh(matrix, k=k, which="SA")
        order = np.argsort(eigenvalues)
        eigenvalues = eigenvalues[order]
        eigenvectors = eigenvectors[:, order]
        energy = float(eigenvalues[0])
        vector = eigenvectors[:, 0]
        has_gap = compute_gap and len(eigenvalues) > 1
        gap = float(eigenvalues[1] - eigenvalues[0]) if has_gap else None

    return GroundStateResult(energy=energy, statevector=Statevector(vector), gap=gap)


def ground_state_energy(operator: PauliOperator) -> float:
    """Just the ground-state energy."""
    return ground_state(operator).energy
