"""Compile-once measurement plans for literal bitstring sampling.

A :class:`MeasurementPlan` is to the sampling estimator what a
:class:`~repro.quantum.program.CircuitProgram` is to circuit execution: all
the structure work that depends only on the *operator* — qubit-wise-commuting
(QWC) grouping, each group's per-qubit basis rotation, and per-term bit masks
for sign evaluation — is done once per operator fingerprint and cached
process-wide, so every later evaluation is pure array work:

* **Stacked basis rotations** — each group's rotation is a sequence of
  single-qubit 2×2 matrices applied to the whole ``(B, 2^n)`` amplitude
  stack through :func:`~repro.quantum.program.apply_gate_batched`, the same
  kernel the batched backends run on.  Each row's rotated amplitudes are
  bit-identical to evolving that request's state alone through the legacy
  per-request rotation circuit (the PR 2 invariant).
* **Vectorized inverse-CDF draws** — :func:`sample_outcomes` maps a
  ``(B, shots)`` uniform block through each row's cumulative distribution
  with one ``cumsum`` and per-row ``searchsorted`` calls, replacing the
  O(2^n)-per-call ``rng.choice`` of the legacy path.
* **Mask-parity signs** — each term's measured sign for an outcome ``b`` is
  ``(-1)^popcount(b & support_mask)`` over a packed uint64 support mask
  (the same MSB-first bit convention as
  :class:`~repro.quantum.engine.CompiledPauliOperator`), so the whole
  ``(B, T)`` term-value matrix falls out of a handful of array ops.

Randomness stays *outside* the plan: callers pass one
:class:`numpy.random.Generator` per batch row, and the plan draws each row's
uniforms in a single ``rng.random((num_groups, shots))`` call — the anchor
of the sampling estimator's bit-identity guarantee (see
:class:`~repro.quantum.sampling.SamplingEstimator`).

The plan cache mirrors the program cache: process-wide, LRU-bounded,
observable via :func:`measurement_plan_cache_stats`, and adjustable via
:func:`set_measurement_plan_cache_limit` /
``TreeVQAConfig(measurement_plan_cache_size=...)``.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .circuit import QuantumCircuit
from .engine import _popcount
from .gates import gate_matrix
from .pauli import PauliOperator, PauliString
from .program import apply_gate_batched

__all__ = [
    "MeasurementGroup",
    "MeasurementPlan",
    "measurement_plan_for",
    "sample_outcomes",
    "measurement_basis",
    "basis_rotation_circuit",
    "measurement_plan_cache_stats",
    "clear_measurement_plan_cache",
    "set_measurement_plan_cache_limit",
]

#: Probability totals of a rotated dense state may drift from 1 only by
#: floating-point noise; a larger deviation means the input state was not
#: normalized, and the plan refuses rather than silently renormalizing.
NORMALIZATION_ATOL = 1e-8


def measurement_basis(paulis: Sequence[PauliString]) -> list[str]:
    """Per-qubit measurement basis ('I', 'X', 'Y' or 'Z') for a QWC group."""
    num_qubits = paulis[0].num_qubits
    basis = ["I"] * num_qubits
    for pauli in paulis:
        for qubit, op in enumerate(pauli.label):
            if op == "I":
                continue
            if basis[qubit] == "I":
                basis[qubit] = op
            elif basis[qubit] != op:
                raise ValueError("terms are not qubit-wise commuting")
    return basis


def basis_rotation_circuit(basis: Sequence[str]) -> QuantumCircuit:
    """Circuit rotating each qubit's measurement basis to Z (legacy form)."""
    circuit = QuantumCircuit(len(basis), name="basis-rotation")
    for qubit, op in enumerate(basis):
        if op == "X":
            circuit.h(qubit)
        elif op == "Y":
            circuit.sdg(qubit)
            circuit.h(qubit)
    return circuit


def _basis_rotations(basis: Sequence[str]) -> tuple[tuple[int, np.ndarray], ...]:
    """The rotation as (qubit, 2×2 matrix) applications, in the exact gate
    order of :func:`basis_rotation_circuit` — kept as *separate* single-qubit
    applications (Sdg then H for the Y basis, never fused into one matrix) so
    the rotated amplitudes are bit-identical to the legacy circuit path."""
    rotations: list[tuple[int, np.ndarray]] = []
    for qubit, op in enumerate(basis):
        if op == "X":
            rotations.append((qubit, gate_matrix("h")))
        elif op == "Y":
            rotations.append((qubit, gate_matrix("sdg")))
            rotations.append((qubit, gate_matrix("h")))
    return tuple(rotations)


def sample_outcomes(probabilities: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    """Vectorized inverse-CDF sampling of computational-basis outcomes.

    ``probabilities`` has shape ``(B, dim)`` and ``uniforms`` shape
    ``(B, shots)`` with entries in ``[0, 1)``; the result is the ``(B, shots)``
    int64 outcome indices.  Each row's uniforms are scaled by that row's
    probability total before the ``searchsorted``, which is arithmetically
    identical to renormalizing the probabilities — callers are expected to
    have *checked* the totals already (see :attr:`NORMALIZATION_ATOL`); the
    scaling only absorbs the residual floating-point drift.
    """
    probabilities = np.atleast_2d(np.asarray(probabilities))
    uniforms = np.atleast_2d(np.asarray(uniforms))
    if probabilities.shape[0] != uniforms.shape[0]:
        raise ValueError("probabilities and uniforms batch sizes differ")
    cdf = np.cumsum(probabilities, axis=-1)
    dim = cdf.shape[-1]
    outcomes = np.empty(uniforms.shape, dtype=np.int64)
    for row in range(uniforms.shape[0]):
        # Per-row searchsorted: row counts are small (one per request), and a
        # row-local search keeps each request's draws independent of batch
        # composition — the bit-identity anchor.
        outcomes[row] = np.searchsorted(
            cdf[row], uniforms[row] * cdf[row, -1], side="right"
        )
    np.minimum(outcomes, dim - 1, out=outcomes)
    return outcomes


@dataclass(frozen=True)
class MeasurementGroup:
    """One qubit-wise-commuting measurement setting of a plan."""

    #: Per-qubit measurement basis, 'I'/'X'/'Y'/'Z'.
    basis: tuple[str, ...]
    #: Single-qubit rotations as (qubit, 2×2 matrix), in circuit gate order.
    rotations: tuple[tuple[int, np.ndarray], ...]
    #: Indices of this group's non-identity terms in the plan's term order.
    term_indices: np.ndarray
    #: Packed per-term support masks (qubit 0 = MSB, the engine convention).
    support_masks: np.ndarray


class MeasurementPlan:
    """Compile-once measurement program for one Pauli operator.

    The term order is the operator's own (:meth:`PauliOperator.paulis`), so
    term matrices line up with every other ``term_vector`` in the codebase.
    Groups that contain only identity terms are not sampled — identity terms
    contribute exactly 1.0 — and :meth:`shots_used` charges one
    ``shots_per_term`` block per *sampled* group, matching the legacy
    estimator's accounting.
    """

    def __init__(self, operator: PauliOperator) -> None:
        paulis = tuple(operator.paulis())
        self.paulis = paulis
        self.coefficients = operator.coefficient_vector(paulis)
        self.num_qubits = operator.num_qubits
        self.num_terms = len(paulis)
        self.identity_mask = np.array(
            [pauli.is_identity for pauli in paulis], dtype=bool
        )
        index_of = {pauli: index for index, pauli in enumerate(paulis)}
        groups: list[MeasurementGroup] = []
        for group in operator.group_qubit_wise_commuting():
            non_identity = [pauli for pauli in group if not pauli.is_identity]
            if not non_identity:
                continue
            basis = measurement_basis(non_identity)
            masks = np.zeros(len(non_identity), dtype=np.uint64)
            for slot, pauli in enumerate(non_identity):
                bits = 0
                for qubit in pauli.support():
                    bits |= 1 << (self.num_qubits - 1 - qubit)  # qubit 0 is the MSB
                masks[slot] = bits
            groups.append(
                MeasurementGroup(
                    basis=tuple(basis),
                    rotations=_basis_rotations(basis),
                    term_indices=np.array(
                        [index_of[pauli] for pauli in non_identity], dtype=np.intp
                    ),
                    support_masks=masks,
                )
            )
        self.groups: tuple[MeasurementGroup, ...] = tuple(groups)
        self.num_groups = len(groups)

    def shots_used(self, shots_per_term: int) -> int:
        """Shot cost of one evaluation: one block per sampled group (at least
        one block, matching the legacy estimator's floor)."""
        return shots_per_term * max(self.num_groups, 1)

    def group_probabilities(
        self, amplitudes: np.ndarray, group: MeasurementGroup
    ) -> np.ndarray:
        """Outcome probabilities of the batch in the group's measurement basis.

        ``amplitudes`` is the ``(B, 2^n)`` complex stack; the rotations run
        through :func:`~repro.quantum.program.apply_gate_batched`, so each
        row is bit-identical to ``state.evolve(basis_rotation_circuit(...))``
        of that request alone.
        """
        amplitudes = np.asarray(amplitudes)
        batch = amplitudes.shape[0]
        tensor = amplitudes.reshape((batch,) + (2,) * self.num_qubits)
        for qubit, matrix in group.rotations:
            matrices = np.broadcast_to(matrix, (batch, 2, 2))
            tensor = apply_gate_batched(tensor, matrices, (qubit,))
        rotated = tensor.reshape(batch, -1)
        return np.abs(rotated) ** 2

    def group_term_values(
        self, group: MeasurementGroup, outcomes: np.ndarray
    ) -> np.ndarray:
        """Per-term sample means for one group's sampled outcomes.

        ``outcomes`` has shape ``(..., shots)``; the result has shape
        ``(..., len(group.term_indices))``.  The sign of term ``t`` for
        outcome ``b`` is ``(-1)^popcount(b & support_mask_t)`` — exactly the
        product of per-qubit ``1 - 2*bit`` factors the legacy bit-table loop
        computed, as exact ±1.0 floats, so the means agree bitwise.
        """
        masked = outcomes[..., None, :].astype(np.uint64) & group.support_masks[:, None]
        parity = (_popcount(masked) & np.uint64(1)).astype(float)
        return (1.0 - 2.0 * parity).mean(axis=-1)

    def term_matrix(
        self,
        amplitudes: np.ndarray,
        shots_per_term: int,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """The ``(B, T)`` per-term sample-mean matrix for a stack of states.

        ``rngs`` supplies one generator per batch row; each row's uniforms
        for *all* groups are drawn in a single ``rng.random((G, shots))``
        call, so a row's draws depend only on its own generator — never on
        the batch composition.  Evaluating rows one at a time with the same
        generators is bit-identical to one batched call.
        """
        amplitudes = np.atleast_2d(np.asarray(amplitudes))
        batch = amplitudes.shape[0]
        if len(rngs) != batch:
            raise ValueError("need exactly one RNG per batch row")
        values = np.zeros((batch, self.num_terms))
        values[:, self.identity_mask] = 1.0
        if not self.groups:
            return values
        if amplitudes.shape[1] != 1 << self.num_qubits:
            raise ValueError(
                f"amplitude stack has dimension {amplitudes.shape[1]}, expected "
                f"2^{self.num_qubits} for this plan's operator"
            )
        self._check_normalization(amplitudes)
        uniform_blocks = [
            rng.random((self.num_groups, shots_per_term)) for rng in rngs
        ]
        for slot, group in enumerate(self.groups):
            probabilities = self.group_probabilities(amplitudes, group)
            uniforms = np.stack([block[slot] for block in uniform_blocks])
            outcomes = sample_outcomes(probabilities, uniforms)
            values[:, group.term_indices] = self.group_term_values(group, outcomes)
        return values

    def _check_normalization(self, amplitudes: np.ndarray) -> None:
        """One tolerance check per evaluation (rotations are unitary, so the
        input norms bound every group's probability total) — replacing the
        legacy path's silent per-group, per-request renormalization."""
        totals = np.einsum("bi,bi->b", np.abs(amplitudes), np.abs(amplitudes))
        error = float(np.abs(totals - 1.0).max())
        if error > NORMALIZATION_ATOL:
            raise ValueError(
                "measurement sampling needs normalized states: probability "
                f"totals deviate from 1 by {error:.3e} "
                f"(tolerance {NORMALIZATION_ATOL:.0e}); normalize the prepared "
                "state before estimating"
            )


# -- persistent plan cache ------------------------------------------------------

_DEFAULT_PLAN_CACHE_LIMIT = 256

_plan_cache: OrderedDict[tuple, MeasurementPlan] = OrderedDict()
_plan_cache_limit = _DEFAULT_PLAN_CACHE_LIMIT
_plan_cache_hits = 0
_plan_cache_misses = 0
_plan_cache_evictions = 0


def _operator_fingerprint(operator: PauliOperator) -> tuple:
    """Value key for plan interning (same shape as the engine/wire caches)."""
    return (
        operator.num_qubits,
        tuple((pauli.label, coefficient) for pauli, coefficient in operator.items()),
    )


def measurement_plan_for(operator: PauliOperator) -> MeasurementPlan:
    """The compile-once measurement plan for ``operator`` (cached).

    Plans are interned process-wide by *value* fingerprint (qubit count plus
    ordered (label, coefficient) pairs — the same scheme the engine and wire
    caches use), so repeated estimates of the same Hamiltonian, across
    requests, rounds, and controller instances, compile the QWC grouping and
    support masks exactly once.  An operator mutated in place (``chop``)
    compiles fresh under its new fingerprint.
    """
    global _plan_cache_hits, _plan_cache_misses, _plan_cache_evictions
    key = _operator_fingerprint(operator)
    plan = _plan_cache.get(key)
    if plan is not None:
        _plan_cache_hits += 1
        _plan_cache.move_to_end(key)
        return plan
    plan = MeasurementPlan(operator)
    _plan_cache_misses += 1
    _plan_cache[key] = plan
    while len(_plan_cache) > _plan_cache_limit:
        _plan_cache.popitem(last=False)
        _plan_cache_evictions += 1
    return plan


def measurement_plan_cache_stats() -> dict[str, int]:
    """Current plan-cache statistics (hits/misses/evictions/size/limit)."""
    return {
        "hits": _plan_cache_hits,
        "misses": _plan_cache_misses,
        "evictions": _plan_cache_evictions,
        "size": len(_plan_cache),
        "limit": _plan_cache_limit,
    }


def clear_measurement_plan_cache() -> None:
    """Drop every cached plan and reset the statistics."""
    global _plan_cache_hits, _plan_cache_misses, _plan_cache_evictions
    _plan_cache.clear()
    _plan_cache_hits = _plan_cache_misses = _plan_cache_evictions = 0


def set_measurement_plan_cache_limit(limit: int) -> None:
    """Set the maximum number of cached plans (LRU eviction beyond it)."""
    global _plan_cache_limit, _plan_cache_evictions
    if limit < 1:
        raise ValueError("measurement plan cache limit must be >= 1")
    _plan_cache_limit = limit
    while len(_plan_cache) > _plan_cache_limit:
        _plan_cache.popitem(last=False)
        _plan_cache_evictions += 1
