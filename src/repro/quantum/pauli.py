"""Pauli-string and Pauli-operator algebra.

This module is the foundation of the quantum substrate.  A VQA task
Hamiltonian is represented as a :class:`PauliOperator` — a weighted sum of
:class:`PauliString` terms — exactly the representation TreeVQA manipulates
when it pads Hamiltonians to a common term basis, builds mixed Hamiltonians,
and computes coefficient-vector distances (paper §5.2.1, §5.2.4).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

import numpy as np

__all__ = ["PauliString", "PauliOperator", "pauli_matrix", "PAULI_LABELS"]

PAULI_LABELS = ("I", "X", "Y", "Z")

_PAULI_MATRICES = {
    "I": np.array([[1, 0], [0, 1]], dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

# Single-qubit Pauli multiplication table: (left, right) -> (phase, result).
_PAULI_PRODUCT = {
    ("I", "I"): (1, "I"), ("I", "X"): (1, "X"), ("I", "Y"): (1, "Y"), ("I", "Z"): (1, "Z"),
    ("X", "I"): (1, "X"), ("X", "X"): (1, "I"), ("X", "Y"): (1j, "Z"), ("X", "Z"): (-1j, "Y"),
    ("Y", "I"): (1, "Y"), ("Y", "X"): (-1j, "Z"), ("Y", "Y"): (1, "I"), ("Y", "Z"): (1j, "X"),
    ("Z", "I"): (1, "Z"), ("Z", "X"): (1j, "Y"), ("Z", "Y"): (-1j, "X"), ("Z", "Z"): (1, "I"),
}


def pauli_matrix(label: str) -> np.ndarray:
    """Return the 2x2 matrix of a single-qubit Pauli label ('I', 'X', 'Y', 'Z')."""
    try:
        return _PAULI_MATRICES[label].copy()
    except KeyError:
        raise ValueError(f"unknown Pauli label {label!r}") from None


@dataclass(frozen=True)
class PauliString:
    """An n-qubit Pauli string such as ``'XIZY'``.

    The label is read left-to-right as qubit 0 to qubit n-1 (qubit 0 is the
    first character).  Instances are immutable and hashable so they can key
    dictionaries of coefficients.
    """

    label: str

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("PauliString label must be non-empty")
        invalid = set(self.label) - set(PAULI_LABELS)
        if invalid:
            raise ValueError(f"invalid Pauli characters {sorted(invalid)} in {self.label!r}")

    # -- basic properties -------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits this string acts on."""
        return len(self.label)

    @property
    def weight(self) -> int:
        """Number of non-identity factors (the Pauli weight)."""
        return sum(1 for c in self.label if c != "I")

    @property
    def is_identity(self) -> bool:
        """True if every factor is the identity."""
        return self.weight == 0

    def support(self) -> tuple[int, ...]:
        """Indices of qubits on which the string acts non-trivially."""
        return tuple(i for i, c in enumerate(self.label) if c != "I")

    def __getitem__(self, qubit: int) -> str:
        return self.label[qubit]

    def __iter__(self) -> Iterator[str]:
        return iter(self.label)

    def __len__(self) -> int:
        return len(self.label)

    def __str__(self) -> str:
        return self.label

    # -- construction helpers ---------------------------------------------

    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        """The all-identity string on ``num_qubits`` qubits."""
        return cls("I" * num_qubits)

    @classmethod
    def from_sparse(cls, num_qubits: int, factors: Mapping[int, str]) -> "PauliString":
        """Build a string from a mapping ``{qubit_index: 'X'|'Y'|'Z'}``.

        Unlisted qubits get the identity.
        """
        chars = ["I"] * num_qubits
        for qubit, op in factors.items():
            if not 0 <= qubit < num_qubits:
                raise ValueError(f"qubit index {qubit} out of range for {num_qubits} qubits")
            if op not in ("X", "Y", "Z", "I"):
                raise ValueError(f"invalid Pauli factor {op!r}")
            chars[qubit] = op
        return cls("".join(chars))

    @classmethod
    def single(cls, num_qubits: int, qubit: int, op: str) -> "PauliString":
        """A single non-identity factor ``op`` on ``qubit``."""
        return cls.from_sparse(num_qubits, {qubit: op})

    # -- algebra -----------------------------------------------------------

    def commutes_with(self, other: "PauliString") -> bool:
        """True if the two strings commute (they anti-commute otherwise)."""
        self._check_compatible(other)
        anti = 0
        for a, b in zip(self.label, other.label):
            if a != "I" and b != "I" and a != b:
                anti += 1
        return anti % 2 == 0

    def qubit_wise_commutes_with(self, other: "PauliString") -> bool:
        """True if on every qubit the factors are equal or one is identity."""
        self._check_compatible(other)
        return all(a == b or a == "I" or b == "I" for a, b in zip(self.label, other.label))

    def multiply(self, other: "PauliString") -> tuple[complex, "PauliString"]:
        """Return ``(phase, string)`` such that self * other = phase * string."""
        self._check_compatible(other)
        phase: complex = 1
        chars = []
        for a, b in zip(self.label, other.label):
            p, c = _PAULI_PRODUCT[(a, b)]
            phase *= p
            chars.append(c)
        return phase, PauliString("".join(chars))

    def to_matrix(self) -> np.ndarray:
        """Dense matrix representation (2^n x 2^n).  Use only for small n."""
        matrix = np.array([[1.0 + 0j]])
        for label in self.label:
            matrix = np.kron(matrix, _PAULI_MATRICES[label])
        return matrix

    def expand(self, num_qubits: int) -> "PauliString":
        """Pad with identities on the right up to ``num_qubits`` qubits."""
        if num_qubits < self.num_qubits:
            raise ValueError("cannot shrink a PauliString")
        return PauliString(self.label + "I" * (num_qubits - self.num_qubits))

    def _check_compatible(self, other: "PauliString") -> None:
        if self.num_qubits != other.num_qubits:
            raise ValueError(
                f"qubit-count mismatch: {self.num_qubits} vs {other.num_qubits}"
            )


class PauliOperator:
    """A weighted sum of Pauli strings: ``H = sum_j c_j P_j``.

    Coefficients are stored in a dictionary keyed by :class:`PauliString`.
    The class supports the operations TreeVQA needs: arithmetic, padding to a
    shared term basis, coefficient-vector extraction, expectation values, and
    exact matrices for verification.
    """

    def __init__(
        self,
        num_qubits: int,
        terms: Mapping[PauliString | str, complex] | None = None,
        *,
        tolerance: float = 0.0,
    ) -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        self._num_qubits = num_qubits
        self._terms: dict[PauliString, complex] = {}
        if terms:
            for key, coeff in terms.items():
                self._add_term(self._coerce(key), complex(coeff))
        if tolerance > 0:
            self.chop(tolerance)

    # -- construction -------------------------------------------------------

    def _coerce(self, key: PauliString | str) -> PauliString:
        pauli = PauliString(key) if isinstance(key, str) else key
        if pauli.num_qubits != self._num_qubits:
            raise ValueError(
                f"term {pauli} has {pauli.num_qubits} qubits, operator has {self._num_qubits}"
            )
        return pauli

    def _add_term(self, pauli: PauliString, coeff: complex) -> None:
        if pauli in self._terms:
            self._terms[pauli] += coeff
        else:
            self._terms[pauli] = coeff

    @classmethod
    def zero(cls, num_qubits: int) -> "PauliOperator":
        """The zero operator."""
        return cls(num_qubits)

    @classmethod
    def identity(cls, num_qubits: int, coefficient: complex = 1.0) -> "PauliOperator":
        """``coefficient * I``."""
        return cls(num_qubits, {PauliString.identity(num_qubits): coefficient})

    @classmethod
    def from_terms(
        cls, terms: Iterable[tuple[str | PauliString, complex]], num_qubits: int | None = None
    ) -> "PauliOperator":
        """Build from an iterable of ``(label, coefficient)`` pairs."""
        terms = list(terms)
        if not terms and num_qubits is None:
            raise ValueError("num_qubits required for an empty term list")
        if num_qubits is None:
            first = terms[0][0]
            num_qubits = len(first if isinstance(first, str) else first.label)
        return cls(num_qubits, dict(terms))

    # -- basic properties ----------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits the operator acts on."""
        return self._num_qubits

    @property
    def num_terms(self) -> int:
        """Number of stored Pauli terms (including any zero coefficients)."""
        return len(self._terms)

    @property
    def terms(self) -> dict[PauliString, complex]:
        """A copy of the term dictionary."""
        return dict(self._terms)

    def paulis(self) -> list[PauliString]:
        """The Pauli strings of the operator, in insertion order."""
        return list(self._terms.keys())

    def coefficient(self, pauli: PauliString | str) -> complex:
        """Coefficient of ``pauli`` (0 if absent)."""
        key = PauliString(pauli) if isinstance(pauli, str) else pauli
        return self._terms.get(key, 0.0)

    def items(self) -> Iterator[tuple[PauliString, complex]]:
        return iter(self._terms.items())

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, pauli: PauliString | str) -> bool:
        key = PauliString(pauli) if isinstance(pauli, str) else pauli
        return key in self._terms

    def __repr__(self) -> str:
        return f"PauliOperator(num_qubits={self._num_qubits}, num_terms={self.num_terms})"

    def is_hermitian(self, tolerance: float = 1e-10) -> bool:
        """True if all coefficients are real to within ``tolerance``."""
        return all(abs(c.imag) <= tolerance for c in self._terms.values())

    def l1_norm(self) -> float:
        """Sum of absolute coefficient values, Σ|c_j| (paper §2.2)."""
        return float(sum(abs(c) for c in self._terms.values()))

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "PauliOperator") -> "PauliOperator":
        self._check_compatible(other)
        result = PauliOperator(self._num_qubits, self._terms)
        for pauli, coeff in other._terms.items():
            result._add_term(pauli, coeff)
        return result

    def __sub__(self, other: "PauliOperator") -> "PauliOperator":
        return self + (other * -1.0)

    def __mul__(self, scalar: complex) -> "PauliOperator":
        if isinstance(scalar, PauliOperator):
            return self.compose(scalar)
        return PauliOperator(
            self._num_qubits, {p: c * scalar for p, c in self._terms.items()}
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: complex) -> "PauliOperator":
        return self * (1.0 / scalar)

    def __neg__(self) -> "PauliOperator":
        return self * -1.0

    def compose(self, other: "PauliOperator") -> "PauliOperator":
        """Operator product ``self @ other`` expanded back to a Pauli sum."""
        self._check_compatible(other)
        result = PauliOperator(self._num_qubits)
        for p1, c1 in self._terms.items():
            for p2, c2 in other._terms.items():
                phase, pauli = p1.multiply(p2)
                result._add_term(pauli, phase * c1 * c2)
        return result

    def chop(self, tolerance: float = 1e-12) -> "PauliOperator":
        """Remove terms with |coefficient| <= tolerance (in place); returns self."""
        self._terms = {p: c for p, c in self._terms.items() if abs(c) > tolerance}
        return self

    def simplify(self, tolerance: float = 1e-12) -> "PauliOperator":
        """Return a copy with negligible terms removed."""
        return PauliOperator(self._num_qubits, self._terms, tolerance=tolerance)

    def equals(self, other: "PauliOperator", tolerance: float = 1e-10) -> bool:
        """Structural equality of the two operators up to ``tolerance``."""
        if self._num_qubits != other._num_qubits:
            return False
        keys = set(self._terms) | set(other._terms)
        return all(
            abs(self._terms.get(k, 0.0) - other._terms.get(k, 0.0)) <= tolerance for k in keys
        )

    # -- TreeVQA-facing operations --------------------------------------------

    def coefficient_vector(self, basis: Iterable[PauliString]) -> np.ndarray:
        """Real coefficient vector in the given ordered term ``basis``.

        Missing terms contribute zero.  This is the padded vector c_i used by
        the ℓ1 similarity metric (paper §5.2.4).
        """
        return np.array([self._terms.get(p, 0.0).real for p in basis], dtype=float)

    def padded(self, basis: Iterable[PauliString]) -> "PauliOperator":
        """Return a copy containing every term of ``basis`` (zero-padded)."""
        result = PauliOperator(self._num_qubits, self._terms)
        for pauli in basis:
            if pauli not in result._terms:
                result._terms[pauli] = 0.0
        return result

    @staticmethod
    def term_superset(operators: Iterable["PauliOperator"]) -> list[PauliString]:
        """Deterministically ordered union of the terms of several operators."""
        seen: dict[PauliString, None] = {}
        for op in operators:
            for pauli in op._terms:
                seen.setdefault(pauli, None)
        return sorted(seen, key=lambda p: p.label)

    def group_qubit_wise_commuting(self) -> list[list[PauliString]]:
        """Greedy grouping of terms into qubit-wise commuting sets.

        Each group can be measured with one circuit (one measurement basis),
        which is how the paper counts circuits per iteration (§1, Fig. 1).
        """
        groups: list[list[PauliString]] = []
        for pauli in sorted(self._terms, key=lambda p: (-p.weight, p.label)):
            placed = False
            for group in groups:
                if all(pauli.qubit_wise_commutes_with(member) for member in group):
                    group.append(pauli)
                    placed = True
                    break
            if not placed:
                groups.append([pauli])
        return groups

    # -- dense/exact helpers ---------------------------------------------------

    def to_matrix(self) -> np.ndarray:
        """Dense matrix (2^n x 2^n).  Only intended for n <= ~12."""
        dim = 2 ** self._num_qubits
        matrix = np.zeros((dim, dim), dtype=complex)
        for pauli, coeff in self._terms.items():
            matrix += coeff * pauli.to_matrix()
        return matrix

    def expectation(self, statevector: np.ndarray) -> float:
        """Exact expectation value <psi|H|psi> for a statevector."""
        from .statevector import Statevector  # local import to avoid a cycle

        if isinstance(statevector, Statevector):
            return statevector.expectation(self)
        sv = Statevector(np.asarray(statevector, dtype=complex))
        return sv.expectation(self)

    def _check_compatible(self, other: "PauliOperator") -> None:
        if self._num_qubits != other._num_qubits:
            raise ValueError(
                f"qubit-count mismatch: {self._num_qubits} vs {other._num_qubits}"
            )


def shots_per_evaluation(operator: PauliOperator, epsilon: float) -> float:
    """Paper §2.2 estimate: N_per_eval ≈ (Σ|c_j|)^2 / ε^2."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return (operator.l1_norm() ** 2) / (epsilon ** 2)
