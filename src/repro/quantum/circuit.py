"""Parameterised quantum-circuit intermediate representation.

The circuit IR is deliberately small: a list of gate instructions over named
gates from :mod:`repro.quantum.gates`, where any gate angle may be a concrete
float, a symbolic :class:`Parameter`, or a :class:`ParameterExpression`
(an affine function ``scale * parameter + offset``, enough for every ansatz in
the paper).  Simulators consume fully bound circuits.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from .gates import GATE_REGISTRY, gate_num_qubits

__all__ = ["Parameter", "ParameterExpression", "Instruction", "QuantumCircuit"]

_parameter_counter = itertools.count()


class Parameter:
    """A named symbolic circuit parameter."""

    __slots__ = ("name", "_uuid")

    def __init__(self, name: str) -> None:
        self.name = name
        self._uuid = next(_parameter_counter)

    def __repr__(self) -> str:
        return f"Parameter({self.name!r})"

    def __hash__(self) -> int:
        return hash((self.name, self._uuid))

    def __eq__(self, other: object) -> bool:
        return self is other

    def __mul__(self, scale: float) -> "ParameterExpression":
        return ParameterExpression(self, scale=float(scale))

    __rmul__ = __mul__

    def __add__(self, offset: float) -> "ParameterExpression":
        return ParameterExpression(self, offset=float(offset))

    __radd__ = __add__

    def __neg__(self) -> "ParameterExpression":
        return ParameterExpression(self, scale=-1.0)


@dataclass(frozen=True)
class ParameterExpression:
    """An affine expression ``scale * parameter + offset``."""

    parameter: Parameter
    scale: float = 1.0
    offset: float = 0.0

    def evaluate(self, value: float) -> float:
        return self.scale * value + self.offset

    def __mul__(self, scale: float) -> "ParameterExpression":
        return ParameterExpression(self.parameter, self.scale * scale, self.offset * scale)

    __rmul__ = __mul__

    def __neg__(self) -> "ParameterExpression":
        return self * -1.0


ParamValue = float | Parameter | ParameterExpression


@dataclass(frozen=True)
class Instruction:
    """A single gate application."""

    gate: str
    qubits: tuple[int, ...]
    params: tuple[ParamValue, ...] = field(default_factory=tuple)

    def is_bound(self) -> bool:
        """True if every parameter is a concrete number."""
        return all(isinstance(p, (int, float)) for p in self.params)

    def parameters(self) -> list[Parameter]:
        """Symbolic parameters referenced by this instruction."""
        found = []
        for p in self.params:
            if isinstance(p, Parameter):
                found.append(p)
            elif isinstance(p, ParameterExpression):
                found.append(p.parameter)
        return found


class QuantumCircuit:
    """An ordered list of gate instructions on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        self.num_qubits = num_qubits
        self.name = name
        self._instructions: list[Instruction] = []
        self._parameters: list[Parameter] = []
        self._parameter_set: set[Parameter] = set()

    # -- inspection ---------------------------------------------------------

    @property
    def instructions(self) -> list[Instruction]:
        """A copy of the instruction list."""
        return list(self._instructions)

    @property
    def parameters(self) -> list[Parameter]:
        """Symbolic parameters in first-appearance order."""
        return list(self._parameters)

    @property
    def num_parameters(self) -> int:
        return len(self._parameters)

    def __len__(self) -> int:
        return len(self._instructions)

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"gates={len(self._instructions)}, parameters={self.num_parameters})"
        )

    def is_bound(self) -> bool:
        """True if the circuit contains no symbolic parameters."""
        return not self._parameters

    def count_gates(self) -> dict[str, int]:
        """Histogram of gate names."""
        counts: dict[str, int] = {}
        for inst in self._instructions:
            counts[inst.gate] = counts.get(inst.gate, 0) + 1
        return counts

    def depth(self) -> int:
        """Circuit depth: longest chain of instructions on any qubit wire."""
        frontier = [0] * self.num_qubits
        for inst in self._instructions:
            level = max(frontier[q] for q in inst.qubits) + 1
            for q in inst.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def two_qubit_gate_count(self) -> int:
        """Number of two-qubit gates (a common hardware cost metric)."""
        return sum(1 for inst in self._instructions if len(inst.qubits) == 2)

    # -- construction ---------------------------------------------------------

    def append(
        self, gate: str, qubits: Sequence[int], params: Sequence[ParamValue] = ()
    ) -> "QuantumCircuit":
        """Append a gate; returns self for chaining."""
        if gate not in GATE_REGISTRY:
            raise ValueError(f"unknown gate {gate!r}")
        expected_qubits = gate_num_qubits(gate)
        if len(qubits) != expected_qubits:
            raise ValueError(
                f"gate {gate!r} acts on {expected_qubits} qubits, got {len(qubits)}"
            )
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"qubit index {q} out of range [0, {self.num_qubits})")
        if len(set(qubits)) != len(qubits):
            raise ValueError("duplicate qubit indices in a single gate")
        expected_params = GATE_REGISTRY[gate].num_params
        if len(params) != expected_params:
            raise ValueError(
                f"gate {gate!r} expects {expected_params} parameters, got {len(params)}"
            )
        normalized: list[ParamValue] = []
        for p in params:
            if isinstance(p, (Parameter, ParameterExpression)):
                normalized.append(p)
            else:
                normalized.append(float(p))
        instruction = Instruction(gate, tuple(qubits), tuple(normalized))
        self._instructions.append(instruction)
        for parameter in instruction.parameters():
            if parameter not in self._parameter_set:
                self._parameter_set.add(parameter)
                self._parameters.append(parameter)
        return self

    # Convenience wrappers for the most common gates -------------------------

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.append("h", [qubit])

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.append("x", [qubit])

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.append("y", [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.append("z", [qubit])

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.append("s", [qubit])

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.append("sdg", [qubit])

    def rx(self, theta: ParamValue, qubit: int) -> "QuantumCircuit":
        return self.append("rx", [qubit], [theta])

    def ry(self, theta: ParamValue, qubit: int) -> "QuantumCircuit":
        return self.append("ry", [qubit], [theta])

    def rz(self, theta: ParamValue, qubit: int) -> "QuantumCircuit":
        return self.append("rz", [qubit], [theta])

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append("cx", [control, target])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.append("cz", [control, target])

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.append("swap", [a, b])

    def rzz(self, theta: ParamValue, a: int, b: int) -> "QuantumCircuit":
        return self.append("rzz", [a, b], [theta])

    def rxx(self, theta: ParamValue, a: int, b: int) -> "QuantumCircuit":
        return self.append("rxx", [a, b], [theta])

    def ryy(self, theta: ParamValue, a: int, b: int) -> "QuantumCircuit":
        return self.append("ryy", [a, b], [theta])

    def barrier(self) -> "QuantumCircuit":
        """No-op kept for API familiarity; the IR does not store barriers."""
        return self

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit equal to self followed by ``other``."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot compose circuits with different qubit counts")
        combined = QuantumCircuit(self.num_qubits, name=f"{self.name}+{other.name}")
        for inst in self._instructions + other._instructions:
            combined.append(inst.gate, inst.qubits, inst.params)
        return combined

    def copy(self) -> "QuantumCircuit":
        """A shallow copy (instructions are immutable)."""
        clone = QuantumCircuit(self.num_qubits, name=self.name)
        for inst in self._instructions:
            clone.append(inst.gate, inst.qubits, inst.params)
        return clone

    # -- parameter binding ------------------------------------------------------

    def bind(self, values: Mapping[Parameter, float] | Sequence[float]) -> "QuantumCircuit":
        """Return a fully numeric copy with parameters substituted.

        ``values`` is either a mapping from :class:`Parameter` to float or a
        sequence ordered like :attr:`parameters`.
        """
        mapping = self._as_mapping(values)
        missing = [p for p in self._parameters if p not in mapping]
        if missing:
            names = ", ".join(p.name for p in missing)
            raise ValueError(f"missing values for parameters: {names}")
        # Binding happens once per objective evaluation of every optimizer
        # step, so substitute directly into fresh Instruction tuples instead
        # of re-running append()'s construction-time validation; instructions
        # without parameters are immutable and shared with the template.
        bound = QuantumCircuit(self.num_qubits, name=self.name)
        instructions = bound._instructions
        for inst in self._instructions:
            if not inst.params:
                instructions.append(inst)
                continue
            params = tuple(
                float(mapping[p])
                if isinstance(p, Parameter)
                else p.evaluate(float(mapping[p.parameter]))
                if isinstance(p, ParameterExpression)
                else p
                for p in inst.params
            )
            instructions.append(Instruction(inst.gate, inst.qubits, params))
        return bound

    def _as_mapping(
        self, values: Mapping[Parameter, float] | Sequence[float]
    ) -> Mapping[Parameter, float]:
        if isinstance(values, Mapping):
            return values
        values = list(np.asarray(values, dtype=float).ravel())
        if len(values) != len(self._parameters):
            raise ValueError(
                f"expected {len(self._parameters)} parameter values, got {len(values)}"
            )
        return dict(zip(self._parameters, values))
