"""TreeVQA: a tree-structured execution framework for shot reduction in VQAs.

Reproduction of Hou, Bharadwaj & Ravi (ASPLOS 2026).  Typical entry points:

* :class:`repro.core.TreeVQAController` — run a family of VQA tasks with
  tree-structured shared execution (the paper's contribution).
* :class:`repro.core.IndependentVQABaseline` — the conventional one-task-at-a-
  time baseline used for every comparison.
* :class:`repro.service.TreeVQAService` — an asyncio job service multiplexing
  many concurrent TreeVQA runs onto one shared execution pool.
* :mod:`repro.hamiltonians` — benchmark Hamiltonian families (molecules, spin
  chains, MaxCut on the IEEE 14-bus system).
* :mod:`repro.evaluation.experiments` — runners that regenerate every table
  and figure of the paper's evaluation section.

Subpackages are imported lazily so that ``import repro`` stays cheap.
"""

from __future__ import annotations

import importlib

__version__ = "1.0.0"

_SUBPACKAGES = (
    "ansatz",
    "applications",
    "clustering",
    "core",
    "evaluation",
    "hamiltonians",
    "initialization",
    "optimizers",
    "quantum",
    "service",
)

__all__ = ["__version__", *_SUBPACKAGES]


def __getattr__(name: str):
    if name in _SUBPACKAGES:
        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_SUBPACKAGES))
