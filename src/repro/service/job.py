"""The Job handle: what ``TreeVQAService.submit`` returns to a tenant.

A job owns one :class:`~repro.core.controller.TreeVQAController` (its own
optimizers, estimator — and therefore its own RNG streams — and shot
ledger) but **no** execution resources: the controller is constructed over
the service's shared backend with ``owns_backend=False``, so a finishing or
cancelled job can never tear the pool down under its co-tenants.  The
service's dispatch loop drives ``controller.step_round()`` and feeds this
handle; tenants consume :attr:`Job.updates` and await :meth:`Job.result`.
"""

from __future__ import annotations

import asyncio
import enum
from typing import TYPE_CHECKING

from .errors import JobCancelledError
from .streams import RoundStream, RoundUpdate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.controller import RoundSnapshot, TreeVQAController
    from ..core.results import TreeVQAResult

__all__ = ["Job", "JobState"]


class JobState(enum.Enum):
    """Lifecycle of a submitted job.

    ``QUEUED`` → ``RUNNING`` → one of ``DONE`` / ``CANCELLED`` / ``FAILED``.
    Backpressure (the service's concurrency / in-flight-shot caps) holds
    jobs in ``QUEUED``; a cancel request lands at the next round boundary —
    a round already executing completes (its shots were consumed and its
    update is still streamed) before the job turns ``CANCELLED``.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.CANCELLED, JobState.FAILED)


class Job:
    """Handle of one submitted TreeVQA run."""

    def __init__(self, job_id: str, controller: "TreeVQAController") -> None:
        self.job_id = job_id
        self.controller = controller
        self.state = JobState.QUEUED
        #: Async iterator of per-round updates; closes when the job ends.
        self.updates = RoundStream()
        self.rounds_completed = 0
        self.shots_used = 0
        self._cancel_requested = False
        self._result_future: asyncio.Future = asyncio.get_running_loop().create_future()

    # -- tenant API ---------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state.terminal

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_requested

    def cancel(self) -> None:
        """Request cancellation (idempotent; no-op once terminal).

        Takes effect at the next round boundary: an in-flight round always
        completes — its work happened on the shared pool and its shots were
        charged — and is still streamed before the job turns ``CANCELLED``.
        Only this job stops; the shared backend and every other job are
        untouched.
        """
        if not self.state.terminal:
            self._cancel_requested = True

    async def result(self) -> "TreeVQAResult":
        """Await the final :class:`~repro.core.results.TreeVQAResult`.

        Raises :class:`~repro.service.errors.JobCancelledError` for
        cancelled jobs and re-raises the original exception for failed ones.
        """
        return await asyncio.shield(self._result_future)

    def __repr__(self) -> str:
        return (
            f"Job(id={self.job_id!r}, state={self.state.value}, "
            f"rounds={self.rounds_completed}, shots={self.shots_used})"
        )

    # -- service-side transitions ---------------------------------------------------

    def _publish_round(self, snapshot: "RoundSnapshot") -> RoundUpdate:
        self.rounds_completed = snapshot.round_index
        self.shots_used = snapshot.total_shots
        update = RoundUpdate.from_snapshot(self.job_id, snapshot)
        self.updates.publish(update)
        return update

    def _finish(self, result: "TreeVQAResult") -> None:
        self.state = JobState.DONE
        self.updates.close()
        if not self._result_future.done():
            self._result_future.set_result(result)

    def _fail(self, error: BaseException) -> None:
        self.state = JobState.FAILED
        self.updates.close()
        if not self._result_future.done():
            self._result_future.set_exception(error)
            # Mark retrieved: a tenant that never awaits result() (it may
            # only consume the stream) must not trigger the event loop's
            # "exception was never retrieved" teardown warning.  A later
            # await still re-raises.
            self._result_future.exception()

    def _mark_cancelled(self) -> None:
        self.state = JobState.CANCELLED
        self.updates.close()
        if not self._result_future.done():
            self._result_future.set_exception(
                JobCancelledError(f"job {self.job_id!r} was cancelled")
            )
            self._result_future.exception()
