"""Round-by-round streaming: the updates a job publishes while it runs.

Every completed controller round becomes one :class:`RoundUpdate` pushed
onto the job's :class:`RoundStream`.  The stream is a plain async iterator
(``async for update in job.updates``) backed by an unbounded
:class:`asyncio.Queue`: round payloads are small (per-cluster losses and
shot counters, never states), so a slow consumer buffers kilobytes, not
amplitudes, and the producer — the service's dispatch loop — never blocks
on a tenant's consumption rate.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard (typing only)
    from ..core.controller import RoundSnapshot

__all__ = ["RoundStream", "RoundUpdate"]


@dataclass(frozen=True)
class RoundUpdate:
    """One job round, as streamed to the submitter.

    ``mixed_losses`` maps each stepped cluster to its mixed loss for the
    round, ``individual_losses`` maps every member task to its recombined
    energy, and ``splits`` maps each splitting parent cluster to its new
    children.  Shot counters are the job's own (the service-wide ledger
    aggregates across jobs separately).
    """

    job_id: str
    round_index: int
    mixed_losses: dict[str, float]
    individual_losses: dict[str, float]
    shots_this_round: int
    total_shots: int
    num_active_clusters: int
    splits: tuple[tuple[str, tuple[str, ...]], ...]

    @classmethod
    def from_snapshot(cls, job_id: str, snapshot: "RoundSnapshot") -> "RoundUpdate":
        return cls(
            job_id=job_id,
            round_index=snapshot.round_index,
            mixed_losses=snapshot.mixed_losses,
            individual_losses=snapshot.individual_losses,
            shots_this_round=snapshot.shots_this_round,
            total_shots=snapshot.total_shots,
            num_active_clusters=snapshot.num_active_clusters,
            splits=snapshot.splits,
        )


class RoundStream:
    """Async iterator of :class:`RoundUpdate`\\ s with an explicit close.

    The producer calls :meth:`publish` per round and :meth:`close` exactly
    once when the job reaches a terminal state; consumers iterate until the
    stream drains (updates published before the close are always delivered,
    in order).  Iterating a never-closed stream waits — the service
    guarantees every job's stream closes, whatever the outcome.
    """

    _CLOSE = object()

    def __init__(self) -> None:
        self._queue: asyncio.Queue = asyncio.Queue()
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether the producer has finished (buffered updates may remain)."""
        return self._closed

    def publish(self, update: RoundUpdate) -> None:
        """Enqueue one round update (producer side)."""
        if self._closed:
            raise RuntimeError("cannot publish to a closed RoundStream")
        self._queue.put_nowait(update)

    def close(self) -> None:
        """Mark the stream finished (idempotent); consumers drain then stop."""
        if self._closed:
            return
        self._closed = True
        self._queue.put_nowait(self._CLOSE)

    def __aiter__(self) -> "RoundStream":
        return self

    async def __anext__(self) -> RoundUpdate:
        item = await self._queue.get()
        if item is self._CLOSE:
            # Re-arm the sentinel so concurrent/subsequent iterations also
            # terminate instead of hanging on an empty queue.
            self._queue.put_nowait(self._CLOSE)
            raise StopAsyncIteration
        return item
