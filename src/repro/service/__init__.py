"""Asyncio job service: many concurrent TreeVQA runs, one shared backend.

:class:`TreeVQAService` multiplexes concurrent jobs onto a single shared
:class:`~repro.quantum.parallel.ParallelBackend` pool and the process-wide
program / measurement-plan caches, dispatching rounds fair-share
(round-robin) with backpressure riding the shot ledger.  Each submission
returns a :class:`Job` streaming :class:`RoundUpdate`\\ s round by round.
Concurrent jobs are bit-identical to solo runs — see
``docs/ARCHITECTURE.md`` ("Job service").
"""

from .dispatcher import FairShareDispatcher
from .errors import JobCancelledError, ServiceClosedError, ServiceError
from .job import Job, JobState
from .service import TreeVQAService
from .streams import RoundStream, RoundUpdate

__all__ = [
    "FairShareDispatcher",
    "Job",
    "JobCancelledError",
    "JobState",
    "RoundStream",
    "RoundUpdate",
    "ServiceClosedError",
    "ServiceError",
    "TreeVQAService",
]
