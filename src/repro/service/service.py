"""TreeVQA as a long-running asyncio job service on one shared backend pool.

:class:`TreeVQAService` turns the run-once controller into served
throughput: tenants ``await service.submit(tasks, ansatz, config)`` and get
a :class:`~repro.service.job.Job` handle streaming
:class:`~repro.service.streams.RoundUpdate`\\ s round by round, while many
concurrent jobs multiplex onto **one** shared
:class:`~repro.quantum.parallel.ParallelBackend` worker pool and the
process-wide program / measurement-plan caches — so tenants amortize each
other's pool spawns and compilations instead of paying them per run.

Ownership rules (the shared-lifecycle contract)
-----------------------------------------------
The service *owns* the shared execution resources; jobs own only their own
optimisation state:

* every job's controller is built over the shared backend with
  ``owns_backend=False`` — a finishing, failing, or cancelled job never
  closes the pool under its co-tenants (the pool closes exactly once, in
  :meth:`TreeVQAService.aclose`);
* only the service sets the process-wide cache limits
  (``program_cache_size`` / ``measurement_plan_cache_size`` constructor
  knobs); job configs carrying cache sizes are rejected at submission, so
  no tenant can shrink a shared LRU and evict a concurrent job's compiled
  programs mid-run;
* per-job RNG streams (optimizers, estimators) live inside each job's own
  controller, so concurrent jobs produce trajectories **bit-identical** to
  running each job alone — whatever the interleaving (the backend layer is
  deterministic and each job's rounds execute in its own strict order).

Fair-share dispatch and backpressure
------------------------------------
Rounds dispatch through a
:class:`~repro.service.dispatcher.FairShareDispatcher`: round-robin over
running jobs, one round per turn, each round still batched through the
job's own :class:`~repro.core.scheduler.RoundScheduler` (so within a round
the existing chunking/sharding machinery applies unchanged).  Round
execution is serialized through a single worker thread — the pool
parallelises *within* a dispatch — which is also what keeps every job's
consumption order strict.  Backpressure rides the existing shot ledger:
per-job budgets (``config.max_total_shots``) end individual jobs, and the
service-wide ``max_running_jobs`` / ``max_inflight_shots`` caps queue
submissions until capacity frees.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from functools import partial

from ..ansatz.base import Ansatz
from ..core.config import TreeVQAConfig
from ..core.controller import TreeVQAController
from ..core.shots import ShotLedger
from ..core.task import VQATask
from ..quantum.backend import BACKEND_REGISTRY, make_execution_backend
from ..quantum.parallel import ParallelBackend
from .dispatcher import FairShareDispatcher
from .errors import ServiceClosedError, ServiceError
from .job import Job, JobState

__all__ = ["TreeVQAService"]


class TreeVQAService:
    """Serve many concurrent TreeVQA jobs on one shared execution backend.

    Parameters:
        backend: Registry name of the shared execution backend (default
            ``"statevector"``); every job config's ``backend`` field must
            name the same backend (the pool is built once, not per job).
        workers: Size of the shared worker-process pool.  ``None`` (default)
            executes in-process on one shared backend instance; a value ≥ 1
            wraps the backend in a :class:`ParallelBackend` whose pool all
            jobs share (spawned lazily on the first dispatched round, closed
            exactly once by :meth:`aclose`).
        backend_factory: Optional zero-argument callable overriding shared
            backend construction (noise models, propagation knobs, custom
            backends).  With ``workers`` set it must be picklable — it also
            runs inside every pool worker.  Job-config backend names are not
            checked against a factory-built backend; the operator vouches
            for compatibility.
        start_method: ``multiprocessing`` start method for the pool
            (forwarded to :class:`ParallelBackend`).
        worker_timeout_s: Deadline in seconds for each pool shard reply
            (forwarded to :class:`ParallelBackend`; requires ``workers``).
            Bounds how long one hung worker can stall the service's single
            dispatch thread — the worker is reaped, respawned, and its shard
            rerouted within the deadline, with the respawn recorded in
            ``stats()["backend_pool"]`` and every job's result metadata.
            ``None`` (default) waits indefinitely.
        max_running_jobs: Concurrency cap — at most this many jobs advance
            concurrently; further submissions queue FIFO.
        max_inflight_shots: Shot-pressure cap — admission pauses while the
            shots charged by currently running jobs reach this value (an
            idle service always admits one job, so the cap cannot deadlock).
        program_cache_size / measurement_plan_cache_size: Process-wide cache
            limits, applied at construction.  The service is the cache
            *owner*: unlike controllers (which may only grow the shared
            caches), it sets the limits outright.
    """

    def __init__(
        self,
        *,
        backend: str = "statevector",
        workers: int | None = None,
        backend_factory=None,
        start_method: str | None = None,
        worker_timeout_s: float | None = None,
        max_running_jobs: int | None = None,
        max_inflight_shots: int | None = None,
        program_cache_size: int | None = None,
        measurement_plan_cache_size: int | None = None,
    ) -> None:
        if backend_factory is None and backend not in BACKEND_REGISTRY:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {sorted(BACKEND_REGISTRY)}"
            )
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 when set (None executes in-process)")
        if worker_timeout_s is not None and workers is None:
            raise ValueError(
                "worker_timeout_s requires workers (the deadline bounds pool "
                "shard replies; in-process execution has none)"
            )
        inner_factory = (
            backend_factory
            if backend_factory is not None
            else partial(make_execution_backend, backend)
        )
        self.backend_name = backend
        self._check_backend_name = backend_factory is None
        if workers is not None:
            self._backend = ParallelBackend(
                inner_factory,
                workers=workers,
                start_method=start_method,
                worker_timeout_s=worker_timeout_s,
            )
        else:
            self._backend = inner_factory()
        # The service owns the process-wide caches: it sets limits outright
        # (controllers may only grow them — see TreeVQAController).
        if program_cache_size is not None:
            from ..quantum.program import set_program_cache_limit

            set_program_cache_limit(program_cache_size)
        if measurement_plan_cache_size is not None:
            from ..quantum.measurement import set_measurement_plan_cache_limit

            set_measurement_plan_cache_limit(measurement_plan_cache_size)
        self._dispatcher = FairShareDispatcher(
            max_running_jobs=max_running_jobs,
            max_inflight_shots=max_inflight_shots,
        )
        #: Service-wide shot accounting: one charge per completed job round
        #: (source = job id), aggregating tenancy pressure across jobs.
        self.ledger = ShotLedger()
        self._jobs: dict[str, Job] = {}
        self._job_counter = 0
        self._closing = False
        self._closed = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake = asyncio.Event()
        self._dispatch_task: asyncio.Task | None = None
        # One worker thread serializes controller construction, round
        # stepping, and finalization: the shared backend executes one round
        # dispatch at a time (parallelism lives inside the pool), and strict
        # serialization is what keeps each job's estimator consumption order
        # — and therefore its RNG streams — identical to a solo run.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="treevqa-service"
        )

    # -- properties ---------------------------------------------------------------

    @property
    def backend(self):
        """The shared execution backend all jobs multiplex onto."""
        return self._backend

    @property
    def jobs(self) -> dict[str, Job]:
        """All jobs ever submitted, by id (running and terminal)."""
        return dict(self._jobs)

    def stats(self) -> dict:
        """Service-level observability snapshot."""
        states: dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state.value] = states.get(job.state.value, 0) + 1
        payload: dict = {
            "jobs": states,
            "queued": self._dispatcher.num_queued,
            "running": self._dispatcher.num_running,
            "inflight_shots": self._dispatcher.inflight_shots(),
            "total_shots": self.ledger.total,
        }
        worker_stats = getattr(self._backend, "worker_cache_stats", None)
        if worker_stats is not None:
            payload["backend_pool"] = worker_stats()
        return payload

    # -- submission ---------------------------------------------------------------

    def _validate_config(self, config: TreeVQAConfig) -> None:
        if config.worker_timeout_s is not None:
            raise ServiceError(
                "job configs must leave worker_timeout_s unset: the reply "
                "deadline is a property of the service's shared pool (set it "
                "via TreeVQAService(worker_timeout_s=...))"
            )
        if config.execution_workers is not None:
            raise ServiceError(
                "job configs must leave execution_workers unset: the service "
                "owns the one shared worker pool every job multiplexes onto "
                "(size it via TreeVQAService(workers=...)); note the "
                "REPRO_EXECUTION_WORKERS environment variable also sets this "
                "field"
            )
        if config.program_cache_size is not None or (
            config.measurement_plan_cache_size is not None
        ):
            raise ServiceError(
                "job configs must not size the process-wide caches — a "
                "tenant shrinking a shared LRU would evict concurrent jobs' "
                "compiled entries; set program_cache_size/"
                "measurement_plan_cache_size on the TreeVQAService instead"
            )
        if config.backend_factory is not None:
            raise ServiceError(
                "job configs must not carry a backend_factory: all jobs "
                "execute on the service's shared backend (build the service "
                "with backend_factory=... instead)"
            )
        if self._check_backend_name and config.backend != self.backend_name:
            raise ServiceError(
                f"job config requests backend {config.backend!r} but this "
                f"service executes every job on its shared "
                f"{self.backend_name!r} backend; submit to a service built "
                f"with backend={config.backend!r}"
            )

    async def submit(
        self,
        tasks: list[VQATask],
        ansatz: Ansatz,
        config: TreeVQAConfig | None = None,
        *,
        job_id: str | None = None,
    ) -> Job:
        """Submit one TreeVQA run; returns its :class:`Job` handle.

        The job queues behind the service's backpressure caps, then its
        rounds interleave fair-share with every other running job's.
        Stream progress via ``async for update in job.updates`` and await
        the final result via ``await job.result()``.
        """
        if self._closing:
            raise ServiceClosedError("service is closed to new submissions")
        config = config if config is not None else TreeVQAConfig()
        self._validate_config(config)
        self._ensure_loop()
        if job_id is None:
            self._job_counter += 1
            job_id = f"job-{self._job_counter}"
        if job_id in self._jobs:
            raise ServiceError(f"duplicate job id {job_id!r}")
        # Controller construction compiles programs / builds clusters, so it
        # runs on the service's worker thread, serialized with round
        # execution like every other touch of the shared process-wide state.
        controller = await self._loop.run_in_executor(
            self._executor,
            partial(TreeVQAController, tasks, ansatz, config, backend=self._backend),
        )
        job = Job(job_id, controller)
        self._jobs[job_id] = job
        self._dispatcher.submit(job)
        self._ensure_dispatch_task()
        self._wake.set()
        return job

    # -- dispatch loop ------------------------------------------------------------

    def _ensure_loop(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise ServiceError("a TreeVQAService is bound to a single event loop")

    def _ensure_dispatch_task(self) -> None:
        if self._dispatch_task is None or self._dispatch_task.done():
            self._dispatch_task = self._loop.create_task(
                self._dispatch_loop(), name="treevqa-service-dispatch"
            )
            self._dispatch_task.add_done_callback(self._on_dispatch_done)

    def _on_dispatch_done(self, task: asyncio.Task) -> None:
        # A dispatch-loop crash must not strand awaiting tenants: fail every
        # non-terminal job so result()/updates consumers wake with the error.
        if task.cancelled():
            error: BaseException = asyncio.CancelledError("dispatch loop cancelled")
        elif task.exception() is not None:
            error = task.exception()
        else:
            return
        for job in self._jobs.values():
            if not job.state.terminal:
                self._dispatcher.finish(job)
                job.controller.close()
                job._fail(
                    ServiceError(f"service dispatch loop died: {error!r}")
                )

    async def _dispatch_loop(self) -> None:
        while True:
            self._dispatcher.admit_ready()
            job = self._dispatcher.next_round()
            if job is not None:
                await self._run_job_round(job)
                continue
            # Idle: nothing running (a running job is always either in the
            # rotation or mid-round, and rounds run inside this loop).
            if self._closing:
                return
            self._wake.clear()
            if not self._dispatcher.empty:
                continue
            await self._wake.wait()

    async def _run_job_round(self, job: Job) -> None:
        """Advance one job by one round (the fair-share quantum)."""
        if job.cancel_requested:
            self._retire(job, JobState.CANCELLED)
            return
        try:
            snapshot = await self._loop.run_in_executor(
                self._executor, job.controller.step_round
            )
        except Exception as error:
            self._retire(job, JobState.FAILED, error=error)
            return
        if snapshot is None:
            try:
                result = await self._loop.run_in_executor(
                    self._executor, job.controller.finalize
                )
            except Exception as error:
                self._retire(job, JobState.FAILED, error=error)
                return
            self._retire(job, JobState.DONE, result=result)
            return
        self.ledger.charge(job.job_id, snapshot.round_index, snapshot.shots_this_round)
        job._publish_round(snapshot)
        if job.cancel_requested:
            # Cancel landed mid-round: the round's work happened (and was
            # streamed above); the job stops at this boundary.
            self._retire(job, JobState.CANCELLED)
            return
        self._dispatcher.requeue(job)

    def _retire(
        self,
        job: Job,
        state: JobState,
        *,
        result=None,
        error: BaseException | None = None,
    ) -> None:
        """Terminal transition: release capacity, close the job's controller
        (which never touches the shared backend — ``owns_backend=False``),
        and settle the tenant-facing future/stream."""
        self._dispatcher.finish(job)
        job.controller.close()
        if state is JobState.DONE:
            job._finish(result)
        elif state is JobState.CANCELLED:
            job._mark_cancelled()
        else:
            job._fail(error)

    # -- lifecycle ----------------------------------------------------------------

    async def aclose(self) -> None:
        """Graceful shutdown: refuse new submissions, drain every queued and
        running job to completion, then close the shared backend (the one
        and only place the shared pool shuts down).  Idempotent.  To stop
        jobs instead of draining them, cancel them before closing."""
        self._closing = True
        self._wake.set()
        if self._dispatch_task is not None:
            await self._dispatch_task
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)
            close = getattr(self._backend, "close", None)
            if close is not None:
                loop = asyncio.get_running_loop()
                # Pool shutdown joins worker processes; keep it off the loop.
                await loop.run_in_executor(None, close)

    async def __aenter__(self) -> "TreeVQAService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def __repr__(self) -> str:
        return (
            f"TreeVQAService(backend={self.backend_name!r}, "
            f"running={self._dispatcher.num_running}, "
            f"queued={self._dispatcher.num_queued}, "
            f"closed={self._closed})"
        )
