"""Fair-share dispatch bookkeeping: who runs the next round, who waits.

The shared backend executes one round dispatch at a time (the pool itself
parallelises *within* a dispatch, across its worker processes), so the
scheduling question is purely *whose* round goes next.
:class:`FairShareDispatcher` answers it round-robin: running jobs sit in a
rotation queue, each pick takes the least-recently-served job, and a job
re-enters the rotation at the back after its round completes.  Every job
therefore advances one round per cycle regardless of how many tenants are
active — a long job cannot starve a short one, and interleaving cannot
change any job's results (each job's rounds still execute in its own strict
order; see the concurrency-parity tests).

Admission control implements the service's backpressure: submissions queue
(FIFO) until both caps clear —

* ``max_running_jobs``: at most this many jobs in the rotation;
* ``max_inflight_shots``: admission pauses while the shots charged by
  currently *running* jobs reach the cap (a finishing job releases its
  charge).  At least one job is always admitted when the rotation is empty,
  so an over-cap single job can still run to completion rather than
  deadlock the queue.

This is plain synchronous bookkeeping — the asyncio layer above
(:class:`~repro.service.service.TreeVQAService`) owns all awaiting.
"""

from __future__ import annotations

from collections import deque

from .job import Job, JobState

__all__ = ["FairShareDispatcher"]


class FairShareDispatcher:
    """Round-robin rotation over running jobs plus FIFO admission queue."""

    def __init__(
        self,
        *,
        max_running_jobs: int | None = None,
        max_inflight_shots: int | None = None,
    ) -> None:
        if max_running_jobs is not None and max_running_jobs < 1:
            raise ValueError("max_running_jobs must be >= 1 when set")
        if max_inflight_shots is not None and max_inflight_shots < 1:
            raise ValueError("max_inflight_shots must be >= 1 when set")
        self.max_running_jobs = max_running_jobs
        self.max_inflight_shots = max_inflight_shots
        self._queued: deque[Job] = deque()
        self._rotation: deque[Job] = deque()
        self._running: dict[str, Job] = {}

    # -- introspection ------------------------------------------------------------

    @property
    def num_queued(self) -> int:
        return len(self._queued)

    @property
    def num_running(self) -> int:
        return len(self._running)

    @property
    def empty(self) -> bool:
        """No job queued or running — the dispatch loop may sleep."""
        return not self._queued and not self._running

    def inflight_shots(self) -> int:
        """Shots charged so far by currently running jobs."""
        return sum(job.shots_used for job in self._running.values())

    # -- admission ----------------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Queue a submission (FIFO; admission happens on :meth:`admit_ready`)."""
        self._queued.append(job)

    def _may_admit(self) -> bool:
        if not self._running:
            # Always admit into an idle rotation: a cap tighter than one
            # job's own footprint must not deadlock the queue.
            return True
        if self.max_running_jobs is not None and len(self._running) >= self.max_running_jobs:
            return False
        if (
            self.max_inflight_shots is not None
            and self.inflight_shots() >= self.max_inflight_shots
        ):
            return False
        return True

    def admit_ready(self) -> list[Job]:
        """Move queued jobs into the rotation while the caps allow.

        Returns the newly admitted jobs (already marked ``RUNNING``), in
        submission order.  Called by the dispatch loop before every pick and
        after every completion, so released capacity is reused immediately.
        """
        admitted: list[Job] = []
        while self._queued and self._may_admit():
            job = self._queued.popleft()
            if job.cancel_requested:
                # Cancelled while waiting for admission: never ran, so it
                # terminates here without entering the rotation.
                job._mark_cancelled()
                continue
            job.state = JobState.RUNNING
            self._running[job.job_id] = job
            self._rotation.append(job)
            admitted.append(job)
        return admitted

    # -- rotation -----------------------------------------------------------------

    def next_round(self) -> Job | None:
        """The least-recently-served running job, or None when idle.

        The job leaves the rotation while its round executes; the dispatch
        loop puts it back with :meth:`requeue` (or retires it with
        :meth:`finish`), so one job can never hold two in-flight rounds.
        """
        if not self._rotation:
            return None
        return self._rotation.popleft()

    def requeue(self, job: Job) -> None:
        """Return a job to the back of the rotation after a completed round."""
        self._rotation.append(job)

    def finish(self, job: Job) -> None:
        """Retire a job (done / cancelled / failed) and release its capacity."""
        self._running.pop(job.job_id, None)
        try:
            self._rotation.remove(job)
        except ValueError:
            pass
