"""Exception types of the TreeVQA job service."""

from __future__ import annotations

__all__ = ["JobCancelledError", "ServiceClosedError", "ServiceError"]


class ServiceError(RuntimeError):
    """A job-service contract violation (invalid submission, bad config)."""


class ServiceClosedError(ServiceError):
    """The service no longer accepts submissions (``aclose()`` was called)."""


class JobCancelledError(ServiceError):
    """Raised by :meth:`~repro.service.job.Job.result` for cancelled jobs."""
