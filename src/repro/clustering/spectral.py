"""Normalised spectral clustering (von Luxburg 2007), used for cluster splits.

TreeVQA partitions a cluster's Hamiltonians by building the symmetric
normalised Laplacian of the similarity matrix, taking its lowest
eigenvectors, and running k-means in that embedding (paper §5.2.5).
"""

from __future__ import annotations

import numpy as np

from .kmeans import kmeans

__all__ = ["spectral_clustering", "normalized_laplacian", "spectral_embedding"]


def normalized_laplacian(similarity: np.ndarray) -> np.ndarray:
    """Symmetric normalised Laplacian L_sym = I − D^{-1/2} S D^{-1/2}."""
    similarity = _validated_similarity(similarity)
    degrees = similarity.sum(axis=1)
    inverse_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(degrees), 0.0)
    normalized = similarity * inverse_sqrt[:, None] * inverse_sqrt[None, :]
    return np.eye(similarity.shape[0]) - normalized


def spectral_embedding(similarity: np.ndarray, num_components: int) -> np.ndarray:
    """Rows are points embedded by the lowest Laplacian eigenvectors (row-normalised)."""
    laplacian = normalized_laplacian(similarity)
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    order = np.argsort(eigenvalues)
    embedding = eigenvectors[:, order[:num_components]]
    norms = np.linalg.norm(embedding, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return embedding / norms


def spectral_clustering(
    similarity: np.ndarray, num_clusters: int = 2, *, seed: int | None = None
) -> np.ndarray:
    """Partition items into ``num_clusters`` groups from a similarity matrix.

    Returns an integer label per item.  Guarantees every label is non-empty
    (falls back to splitting off the least-similar item when k-means collapses
    to a single group).
    """
    similarity = _validated_similarity(similarity)
    num_items = similarity.shape[0]
    if not 1 <= num_clusters <= num_items:
        raise ValueError("num_clusters must be in [1, number of items]")
    if num_clusters == 1:
        return np.zeros(num_items, dtype=int)
    embedding = spectral_embedding(similarity, num_clusters)
    labels = kmeans(embedding, num_clusters, seed=seed)
    labels = _ensure_all_labels_used(labels, similarity, num_clusters)
    return labels


def _ensure_all_labels_used(
    labels: np.ndarray, similarity: np.ndarray, num_clusters: int
) -> np.ndarray:
    labels = labels.copy()
    used = set(labels.tolist())
    missing = [label for label in range(num_clusters) if label not in used]
    if not missing:
        return labels
    # Move the items with the lowest average similarity into the empty labels.
    average_similarity = similarity.mean(axis=1)
    candidates = np.argsort(average_similarity)
    for label, candidate in zip(missing, candidates):
        labels[candidate] = label
    return labels


def _validated_similarity(similarity: np.ndarray) -> np.ndarray:
    similarity = np.asarray(similarity, dtype=float)
    if similarity.ndim != 2 or similarity.shape[0] != similarity.shape[1]:
        raise ValueError("similarity must be a square matrix")
    if not np.allclose(similarity, similarity.T, atol=1e-9):
        raise ValueError("similarity matrix must be symmetric")
    if np.any(similarity < -1e-12):
        raise ValueError("similarity entries must be non-negative")
    return np.clip(similarity, 0.0, None)
