"""Minimal k-means used by spectral clustering (von Luxburg 2007, §4)."""

from __future__ import annotations

import numpy as np

__all__ = ["kmeans"]


def kmeans(
    points: np.ndarray,
    num_clusters: int,
    *,
    num_restarts: int = 8,
    max_iterations: int = 100,
    seed: int | None = None,
) -> np.ndarray:
    """Cluster rows of ``points`` into ``num_clusters`` groups; returns labels.

    Lloyd's algorithm with k-means++ seeding and multiple restarts; the run
    with the lowest within-cluster sum of squares wins.  Deterministic for a
    fixed ``seed``.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    num_points = points.shape[0]
    if not 1 <= num_clusters <= num_points:
        raise ValueError("num_clusters must be in [1, number of points]")
    if num_clusters == 1:
        return np.zeros(num_points, dtype=int)
    if num_clusters == num_points:
        return np.arange(num_points)

    rng = np.random.default_rng(seed)
    best_labels = np.zeros(num_points, dtype=int)
    best_inertia = np.inf
    for _ in range(num_restarts):
        centers = _kmeans_plus_plus(points, num_clusters, rng)
        labels = np.zeros(num_points, dtype=int)
        for _ in range(max_iterations):
            distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
            new_labels = distances.argmin(axis=1)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            for cluster in range(num_clusters):
                members = points[labels == cluster]
                if len(members):
                    centers[cluster] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the point farthest from its center.
                    farthest = distances.min(axis=1).argmax()
                    centers[cluster] = points[farthest]
        inertia = float(
            sum(
                np.linalg.norm(points[labels == cluster] - centers[cluster]) ** 2
                for cluster in range(num_clusters)
            )
        )
        if inertia < best_inertia:
            best_inertia = inertia
            best_labels = labels.copy()
    return best_labels


def _kmeans_plus_plus(
    points: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ center initialisation."""
    num_points = points.shape[0]
    centers = [points[rng.integers(num_points)]]
    for _ in range(1, num_clusters):
        distances = np.min(
            [np.linalg.norm(points - center, axis=1) ** 2 for center in centers], axis=0
        )
        total = distances.sum()
        if total == 0:
            centers.append(points[rng.integers(num_points)])
            continue
        probabilities = distances / total
        centers.append(points[rng.choice(num_points, p=probabilities)])
    return np.array(centers, dtype=float)
