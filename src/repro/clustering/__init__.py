"""Spectral clustering and k-means used for TreeVQA cluster splitting."""

from .kmeans import kmeans
from .spectral import normalized_laplacian, spectral_clustering, spectral_embedding

__all__ = ["kmeans", "normalized_laplacian", "spectral_clustering", "spectral_embedding"]
