"""Hamiltonian similarity metrics (paper §3, §5.2.4).

TreeVQA measures how "close" two task Hamiltonians are with the ℓ1 distance
between their padded Pauli coefficient vectors, converts distances to
affinities with a Gaussian (RBF) kernel whose bandwidth is the median
pairwise distance, and uses the resulting similarity matrix both for the
motivation heatmaps of Fig. 4 and to drive cluster splits.
"""

from __future__ import annotations

import numpy as np

from ..quantum.exact import ground_state
from ..quantum.pauli import PauliOperator, PauliString

__all__ = [
    "coefficient_l1_distance",
    "distance_matrix",
    "gaussian_similarity",
    "similarity_matrix",
    "ground_state_overlap_matrix",
    "normalize_matrix",
]


def coefficient_l1_distance(
    first: PauliOperator,
    second: PauliOperator,
    basis: list[PauliString] | None = None,
) -> float:
    """ℓ1 distance between padded coefficient vectors, d(H_i, H_j) = Σ|c_ik − c_jk|."""
    if basis is None:
        basis = PauliOperator.term_superset([first, second])
    return float(
        np.sum(np.abs(first.coefficient_vector(basis) - second.coefficient_vector(basis)))
    )


def distance_matrix(hamiltonians: list[PauliOperator]) -> np.ndarray:
    """Pairwise ℓ1 coefficient distance matrix over a shared padded basis."""
    if not hamiltonians:
        raise ValueError("hamiltonians must be non-empty")
    basis = PauliOperator.term_superset(hamiltonians)
    vectors = np.array([h.coefficient_vector(basis) for h in hamiltonians])
    differences = vectors[:, None, :] - vectors[None, :, :]
    return np.sum(np.abs(differences), axis=2)


def gaussian_similarity(distances: np.ndarray, sigma: float | None = None) -> np.ndarray:
    """RBF kernel S_ij = exp(−d_ij² / (2σ²)) with σ = median pairwise distance by default."""
    distances = np.asarray(distances, dtype=float)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise ValueError("distances must be a square matrix")
    if sigma is None:
        off_diagonal = distances[~np.eye(distances.shape[0], dtype=bool)]
        positive = off_diagonal[off_diagonal > 0]
        sigma = float(np.median(positive)) if positive.size else 1.0
    if sigma <= 0:
        sigma = 1.0
    return np.exp(-(distances ** 2) / (2.0 * sigma ** 2))


def similarity_matrix(
    hamiltonians: list[PauliOperator], sigma: float | None = None
) -> np.ndarray:
    """The §5.2.4 similarity matrix: ℓ1 distances through a Gaussian kernel."""
    return gaussian_similarity(distance_matrix(hamiltonians), sigma=sigma)


def ground_state_overlap_matrix(hamiltonians: list[PauliOperator]) -> np.ndarray:
    """|<ψ_i|ψ_j>|² between exact ground states (the Fig. 4b heatmap)."""
    states = [ground_state(h).statevector for h in hamiltonians]
    size = len(states)
    overlaps = np.eye(size)
    for i in range(size):
        for j in range(i + 1, size):
            value = states[i].fidelity(states[j])
            overlaps[i, j] = value
            overlaps[j, i] = value
    return overlaps


def normalize_matrix(matrix: np.ndarray) -> np.ndarray:
    """Min-max normalise a matrix to [0, 1] (for the 'normalised' Fig. 4 heatmaps)."""
    matrix = np.asarray(matrix, dtype=float)
    low, high = matrix.min(), matrix.max()
    if high == low:
        return np.ones_like(matrix)
    return (matrix - low) / (high - low)
