"""Sliding-window slope monitoring (paper §5.2.2).

After a warm-up period, TreeVQA fits a linear regression to the last W loss
values of the cluster's mixed Hamiltonian and of every member Hamiltonian.
A flat mixed slope (|slope| < ε_split) signals stagnation; a *positive*
individual slope signals that one member is being dragged uphill by the
mixed optimisation — either condition triggers a split (§5.2.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["linear_regression_slope", "SlopeMonitor", "SlopeReport"]


def linear_regression_slope(values: list[float] | np.ndarray) -> float:
    """Least-squares slope of ``values`` against their index."""
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        return 0.0
    x = np.arange(values.size, dtype=float)
    x_centered = x - x.mean()
    denominator = float(np.sum(x_centered ** 2))
    if denominator == 0:
        return 0.0
    return float(np.sum(x_centered * (values - values.mean())) / denominator)


@dataclass(frozen=True)
class SlopeReport:
    """Slopes computed over the current window."""

    mixed_slope: float
    individual_slopes: tuple[float, ...]
    window_filled: bool
    past_warmup: bool

    @property
    def ready(self) -> bool:
        """True when slopes are meaningful (full window and past warm-up)."""
        return self.window_filled and self.past_warmup


class SlopeMonitor:
    """Track mixed and per-task loss histories and compute windowed slopes."""

    def __init__(self, num_tasks: int, window_size: int, warmup_iterations: int) -> None:
        if num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        if window_size < 2:
            raise ValueError("window_size must be >= 2")
        if warmup_iterations < 0:
            raise ValueError("warmup_iterations must be >= 0")
        self.num_tasks = num_tasks
        self.window_size = window_size
        self.warmup_iterations = warmup_iterations
        self._mixed_window: deque[float] = deque(maxlen=window_size)
        self._individual_windows: list[deque[float]] = [
            deque(maxlen=window_size) for _ in range(num_tasks)
        ]
        self._iterations_recorded = 0

    @property
    def iterations_recorded(self) -> int:
        return self._iterations_recorded

    def record(self, mixed_loss: float, individual_losses: list[float] | np.ndarray) -> None:
        """Record the losses of one iteration."""
        individual_losses = list(np.asarray(individual_losses, dtype=float))
        if len(individual_losses) != self.num_tasks:
            raise ValueError(
                f"expected {self.num_tasks} individual losses, got {len(individual_losses)}"
            )
        self._mixed_window.append(float(mixed_loss))
        for window, loss in zip(self._individual_windows, individual_losses):
            window.append(loss)
        self._iterations_recorded += 1

    def report(self) -> SlopeReport:
        """Current slopes and readiness flags."""
        return SlopeReport(
            mixed_slope=linear_regression_slope(list(self._mixed_window)),
            individual_slopes=tuple(
                linear_regression_slope(list(window)) for window in self._individual_windows
            ),
            window_filled=len(self._mixed_window) >= self.window_size,
            past_warmup=self._iterations_recorded >= self.warmup_iterations,
        )
