"""The TreeVQA central controller (paper §5.1, Algorithm 1).

The controller receives the application's tasks, groups them into root
clusters by shared initial state, and then repeatedly steps every active
cluster (one VQA iteration per cluster per round), splitting clusters when
their split condition fires, until the global shot budget S_max is exhausted
or the round limit is reached.  A final post-processing pass evaluates every
task on every final cluster state and keeps the best answer (§5.3).

Each round executes through the :class:`~repro.core.scheduler.RoundScheduler`:
every active cluster's ask (the parameter points its optimizer wants
evaluated) is gathered into one batched
:class:`~repro.quantum.backend.ExecutionBackend` dispatch, and the results
are told back in cluster order.  The backend prepares a whole round's states
as stacked arrays (bit-identically to per-request execution, so
``max_batch_size=1`` — the sequential degenerate case — yields the same
trajectories under the exact estimator), and all expectation values flow
through the compiled Pauli engine (:mod:`repro.quantum.engine`); the final
§5.3 pass evaluates the whole (task, cluster) grid through one batched
engine call in :func:`~repro.core.postprocess.select_best_states`.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..ansatz.base import Ansatz
from ..quantum.measurement import (
    measurement_plan_cache_stats,
    set_measurement_plan_cache_limit,
)
from ..quantum.pauli_propagation import conjugation_cache_stats
from ..quantum.program import program_cache_stats, set_program_cache_limit
from .cluster import VQACluster
from .config import TreeVQAConfig
from .postprocess import select_best_states
from .results import TaskOutcome, TaskTrajectory, TreeVQAResult
from .scheduler import RoundScheduler
from .shots import ShotLedger
from .task import VQATask
from .tree import ExecutionTree

__all__ = ["TreeVQAController"]


class TreeVQAController:
    """Orchestrate tree-structured execution of a family of VQA tasks."""

    def __init__(
        self,
        tasks: list[VQATask],
        ansatz: Ansatz,
        config: TreeVQAConfig | None = None,
        *,
        initial_parameters: np.ndarray | dict[str, np.ndarray] | None = None,
    ) -> None:
        if not tasks:
            raise ValueError("tasks must be non-empty")
        names = [task.name for task in tasks]
        if len(set(names)) != len(names):
            raise ValueError("task names must be unique")
        qubit_counts = {task.num_qubits for task in tasks}
        if len(qubit_counts) != 1:
            raise ValueError("all tasks of an application must share the qubit count")
        if ansatz.num_qubits != tasks[0].num_qubits:
            raise ValueError("ansatz qubit count must match the tasks")

        self.tasks = list(tasks)
        self.ansatz = ansatz
        self.config = config or TreeVQAConfig()
        self._initial_parameters = initial_parameters
        # The program cache is process-wide; the knob (when set) adjusts its
        # LRU capacity for this and subsequent runs.  Stats are snapshotted
        # here so the result metadata reports this run's cache activity, not
        # the process-cumulative counters (concurrent controllers in one
        # process still share the cache, and their activity is not separable).
        if self.config.program_cache_size is not None:
            set_program_cache_limit(self.config.program_cache_size)
        if self.config.measurement_plan_cache_size is not None:
            set_measurement_plan_cache_limit(self.config.measurement_plan_cache_size)
        self._program_cache_baseline = program_cache_stats()
        self._measurement_plan_cache_baseline = measurement_plan_cache_stats()
        self._conjugation_cache_baseline = conjugation_cache_stats()
        self.estimator = self.config.make_estimator()
        self.backend = self.config.make_backend()
        self.scheduler = RoundScheduler(
            self.backend, self.estimator, max_batch_size=self.config.max_batch_size
        )
        self.ledger = ShotLedger(shots_per_term=self.config.shots_per_pauli_term)
        self.tree = ExecutionTree()
        self.trajectories: dict[str, TaskTrajectory] = {
            task.name: TaskTrajectory(task.name) for task in tasks
        }
        self._clusters = self._build_root_clusters()
        self._rounds_completed = 0
        self._has_run = False

    # -- setup -------------------------------------------------------------------

    def _resolve_initial_parameters(self, bitstring_key: str) -> np.ndarray:
        """Initial ansatz parameters for a root cluster."""
        provided = self._initial_parameters
        if provided is None:
            return self.ansatz.zero_parameters()
        if isinstance(provided, dict):
            if bitstring_key in provided:
                return np.asarray(provided[bitstring_key], dtype=float)
            return self.ansatz.zero_parameters()
        return np.asarray(provided, dtype=float)

    def _build_root_clusters(self) -> list[VQACluster]:
        """Group tasks by initial state into the level-1 clusters (§5.1)."""
        grouped: dict[str, list[VQATask]] = defaultdict(list)
        for task in self.tasks:
            grouped[task.resolved_initial_bitstring].append(task)
        clusters = []
        for root_index, (bitstring, group_tasks) in enumerate(sorted(grouped.items())):
            cluster = VQACluster(
                cluster_id=f"L1B{root_index + 1}",
                tasks=group_tasks,
                ansatz=self.ansatz,
                optimizer=self.config.make_optimizer(),
                estimator=self.estimator,
                config=self.config,
                initial_parameters=self._resolve_initial_parameters(bitstring),
            )
            clusters.append(cluster)
            self.tree.add_root(cluster.cluster_id, cluster.task_names)
        return clusters

    # -- execution ----------------------------------------------------------------

    @property
    def active_clusters(self) -> list[VQACluster]:
        """Clusters that are still optimising (not retired)."""
        return [cluster for cluster in self._clusters if not cluster.retired]

    def _budget_exhausted(self) -> bool:
        budget = self.config.max_total_shots
        return budget is not None and self.ledger.total >= budget

    def run(self) -> TreeVQAResult:
        """Execute Algorithm 1 and return the per-task results.

        Controllers are run-once, so execution resources the backend may
        hold (the worker pool of a
        :class:`~repro.quantum.parallel.ParallelBackend` under
        ``execution_workers``) are released before returning; the backend
        object stays inspectable and would lazily respawn its pool if
        dispatched again.
        """
        if self._has_run:
            raise RuntimeError("controller.run() may only be called once per instance")
        self._has_run = True
        config = self.config
        try:
            while self._rounds_completed < config.max_rounds and not self._budget_exhausted():
                self._rounds_completed += 1
                self._run_round()
            return self._finalize()
        finally:
            self.close()

    def close(self) -> None:
        """Release backend-held execution resources (idempotent; also called
        at the end of :meth:`run` and on context-manager exit)."""
        self.scheduler.close()

    def __enter__(self) -> "TreeVQAController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_round(self) -> None:
        """Step every active cluster once through one batched dispatch.

        The scheduler gathers all active clusters' asks, executes them as
        stacked backend batches, and reports completed steps back in cluster
        order — so shot charging, trajectory recording, and the budget break
        happen in exactly the order the sequential per-cluster loop used.
        Splits are applied after the round's steps complete (a split decision
        depends only on the splitting cluster's own state).
        """
        pending = list(self.active_clusters)

        def on_record(cluster: VQACluster, record) -> bool:
            self.ledger.charge(cluster.cluster_id, self._rounds_completed, record.shots)
            self.tree.record_iteration(cluster.cluster_id, record.shots)
            if self.config.record_trajectory:
                total = self.ledger.total
                for task_name, energy in record.individual_losses.items():
                    self.trajectories[task_name].record(total, energy)
            # A False return stops the round: clusters the scheduler has not
            # told yet stay un-stepped, like the sequential loop's break.
            return not self._budget_exhausted()

        completed = self.scheduler.run_round(pending, on_record=on_record)
        stepped = {cluster.cluster_id for cluster, _ in completed}
        next_clusters: list[VQACluster] = []
        for cluster in pending:
            if cluster.cluster_id not in stepped:
                # Not stepped this round (budget break); keep for finalize.
                next_clusters.append(cluster)
                continue
            decision = cluster.split_decision()
            if decision.should_split and cluster.num_tasks > 1:
                children = cluster.split()
                self.tree.mark_split(cluster.cluster_id, decision.reason)
                for child in children:
                    self.tree.add_child(cluster.cluster_id, child.cluster_id, child.task_names)
                next_clusters.extend(children)
            else:
                next_clusters.append(cluster)
        self._clusters = next_clusters

    def _program_cache_delta(self) -> dict[str, int | dict[str, int]]:
        """This run's program-cache activity (counters since construction;
        ``size``/``limit`` are reported as-is).  Under multi-process
        execution the backend's worker-pool program-shipping stats ride
        along under a ``"workers"`` sub-key, so cache behaviour on both
        sides of the process boundary lands in one metadata entry."""
        stats = program_cache_stats()
        baseline = self._program_cache_baseline
        delta: dict = {
            key: (
                stats[key] - baseline[key]
                if key in ("hits", "misses", "evictions")
                else stats[key]
            )
            for key in stats
        }
        worker_stats = getattr(self.backend, "worker_cache_stats", None)
        if worker_stats is not None:
            delta["workers"] = worker_stats()
        return delta

    def _measurement_plan_cache_delta(self) -> dict[str, int] | None:
        """This run's measurement-plan-cache activity, or None when the run
        compiled and hit no plans (non-sampling estimators) — mirroring the
        program-cache entry's delta-vs-baseline reporting."""
        stats = measurement_plan_cache_stats()
        baseline = self._measurement_plan_cache_baseline
        delta = {
            key: stats[key] - baseline[key]
            if key in ("hits", "misses", "evictions")
            else stats[key]
            for key in stats
        }
        if delta["hits"] == 0 and delta["misses"] == 0:
            return None
        return delta

    def _propagation_metadata(self) -> dict | None:
        """Propagation observability for the run, or None when nothing
        propagated: truncation counts summed from per-result metadata (which
        rides the wire, so the totals are worker-count independent) plus this
        run's conjugation-cache activity, mirroring the program-cache entry."""
        totals = dict(self.scheduler.backend_metadata_totals)
        backend_stats = getattr(self.backend, "propagation_stats", None)
        if not totals and backend_stats is None:
            return None
        stats = conjugation_cache_stats()
        baseline = self._conjugation_cache_baseline
        totals["conjugation_cache"] = {
            key: stats[key] - baseline[key]
            if key in ("hits", "misses", "evictions")
            else stats[key]
            for key in stats
        }
        if backend_stats is not None:
            totals["backend"] = backend_stats()
        return totals

    def _finalize(self) -> TreeVQAResult:
        """Post-processing (§5.3) and result assembly."""
        final_clusters = self.active_clusters or self._clusters
        # Propagation-capable backends (pure propagation / width routing)
        # evaluate the §5.3 grid through their own term-vector payloads;
        # dense state preparation at 50+ qubits would defeat the point of
        # running them.  (The width router *does* provide states — on its
        # dense tier — but its wide tasks still need the state-free path.)
        selection_backend = (
            self.backend
            if (
                not getattr(self.backend, "provides_states", True)
                or getattr(self.backend, "accepts_propagation_config", False)
            )
            else None
        )
        selections = select_best_states(
            self.tasks, final_clusters, backend=selection_backend
        )
        outcomes = []
        for task, selection in zip(self.tasks, selections):
            outcomes.append(
                TaskOutcome(
                    task=task,
                    energy=selection.energy,
                    source=selection.cluster_id,
                    fidelity=task.fidelity(selection.energy),
                    error=task.error(selection.energy),
                )
            )
        return TreeVQAResult(
            outcomes=outcomes,
            trajectories=self.trajectories,
            ledger=self.ledger,
            total_rounds=self._rounds_completed,
            metadata={
                "num_final_clusters": len(final_clusters),
                "num_splits": self.tree.num_splits,
                "tree_depth_levels": self.tree.depth_levels(),
                "program_cache": self._program_cache_delta(),
                **(
                    {"measurement_plan_cache": plan_cache}
                    if (plan_cache := self._measurement_plan_cache_delta()) is not None
                    else {}
                ),
                **(
                    {"propagation": propagation}
                    if (propagation := self._propagation_metadata()) is not None
                    else {}
                ),
            },
            tree=self.tree,
        )
