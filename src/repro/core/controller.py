"""The TreeVQA central controller (paper §5.1, Algorithm 1).

The controller receives the application's tasks, groups them into root
clusters by shared initial state, and then repeatedly steps every active
cluster (one VQA iteration per cluster per round), splitting clusters when
their split condition fires, until the global shot budget S_max is exhausted
or the round limit is reached.  A final post-processing pass evaluates every
task on every final cluster state and keeps the best answer (§5.3).

Each round executes through the :class:`~repro.core.scheduler.RoundScheduler`:
every active cluster's ask (the parameter points its optimizer wants
evaluated) is gathered into one batched
:class:`~repro.quantum.backend.ExecutionBackend` dispatch, and the results
are told back in cluster order.  The backend prepares a whole round's states
as stacked arrays (bit-identically to per-request execution, so
``max_batch_size=1`` — the sequential degenerate case — yields the same
trajectories under the exact estimator), and all expectation values flow
through the compiled Pauli engine (:mod:`repro.quantum.engine`); the final
§5.3 pass evaluates the whole (task, cluster) grid through one batched
engine call in :func:`~repro.core.postprocess.select_best_states`.

Round-by-round execution and shared backends
--------------------------------------------
:meth:`TreeVQAController.run` is a thin loop over the resumable primitives
:meth:`~TreeVQAController.step_round` (advance one round, report a
:class:`RoundSnapshot`) and :meth:`~TreeVQAController.finalize` (the §5.3
pass).  The job service (:mod:`repro.service`) drives those primitives
directly so many controllers can interleave their rounds on **one** shared
:class:`~repro.quantum.parallel.ParallelBackend` pool.  Ownership is
explicit: a controller closes only execution resources it created itself —
a backend passed in via the ``backend=`` argument belongs to the caller and
is never closed (or shrunk, see the cache-limit rules below) by a finishing
run.
"""

from __future__ import annotations

import threading
import warnings
import weakref
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..ansatz.base import Ansatz
from ..quantum.backend import ExecutionBackend
from ..quantum.measurement import (
    measurement_plan_cache_stats,
    set_measurement_plan_cache_limit,
)
from ..quantum.pauli_propagation import conjugation_cache_stats
from ..quantum.program import program_cache_stats, set_program_cache_limit
from .cluster import ClusterStepRecord, VQACluster
from .config import TreeVQAConfig
from .postprocess import select_best_states
from .results import TaskOutcome, TaskTrajectory, TreeVQAResult
from .scheduler import RoundScheduler
from .shots import ShotLedger
from .task import VQATask
from .tree import ExecutionTree

__all__ = ["RoundSnapshot", "TreeVQAController", "live_controller_count"]


#: Registry of live (constructed, not yet closed) controllers in this
#: process.  Process-wide caches (programs, measurement plans) are shared by
#: every live controller, so per-run cache-stat deltas are only attributable
#: to a single run while exactly one controller is alive — the delta
#: reporting below labels itself ``"shared": True`` otherwise.  A WeakSet so
#: a controller that is constructed but never run/closed cannot pin the
#: count forever.
_LIVE_CONTROLLERS: "weakref.WeakSet[TreeVQAController]" = weakref.WeakSet()
_LIVE_LOCK = threading.Lock()

#: Cache-stat keys that are cumulative counters (reported as per-run deltas);
#: the remaining keys (``size``, ``limit``) are point-in-time values.
_COUNTER_KEYS = ("hits", "misses", "evictions")


def live_controller_count() -> int:
    """Number of live controllers registered in this process.

    A controller registers at construction and unregisters at
    :meth:`TreeVQAController.close` (``run()`` closes on return); the job
    service keeps one live controller per running job.
    """
    with _LIVE_LOCK:
        return len(_LIVE_CONTROLLERS)


def _register_controller(controller: "TreeVQAController") -> None:
    with _LIVE_LOCK:
        if _LIVE_CONTROLLERS:
            # An overlap can only *begin* at a registration, so marking the
            # incumbents (and the newcomer, in __init__) here makes the
            # shared-tenancy flag sticky even for overlaps that end before
            # the incumbent's next round-boundary check.
            for live in _LIVE_CONTROLLERS:
                live._observed_shared = True
        _LIVE_CONTROLLERS.add(controller)


def _unregister_controller(controller: "TreeVQAController") -> None:
    with _LIVE_LOCK:
        _LIVE_CONTROLLERS.discard(controller)


def _apply_cache_limit_request(
    kind: str, requested: int, current_limit: int, setter
) -> None:
    """Apply a config-requested cache limit without clobbering co-tenants.

    The program / measurement-plan caches are **process-wide**: shrinking one
    from a controller would evict a concurrent run's entries mid-flight (the
    shared-pool service multiplexes many controllers onto these caches).  A
    controller may therefore only *grow* a cache; a shrink request is ignored
    with an actionable warning naming the deliberate paths.
    """
    if requested > current_limit:
        setter(requested)
    elif requested < current_limit:
        warnings.warn(
            f"ignoring {kind} cache limit {requested}: the process-wide cache "
            f"already holds up to {current_limit} entries and is shared by "
            "every live controller and job, so shrinking it here would evict "
            "a concurrent run's compiled entries mid-flight; to shrink it "
            f"deliberately call {setter.__name__}({requested}) directly, or "
            "size the cache on the owning TreeVQAService",
            RuntimeWarning,
            stacklevel=4,
        )


@dataclass(frozen=True)
class RoundSnapshot:
    """What one controller round did — the unit the job service streams.

    ``records`` are the completed per-cluster step records in strict cluster
    order (the same records ``on_record`` observed); ``splits`` maps each
    splitting parent to its new children.  ``shots_this_round`` counts only
    this round's charges, while ``total_shots`` is the run's cumulative
    ledger total after the round.
    """

    round_index: int
    records: tuple[ClusterStepRecord, ...]
    splits: tuple[tuple[str, tuple[str, ...]], ...]
    shots_this_round: int
    total_shots: int
    num_active_clusters: int

    @property
    def individual_losses(self) -> dict[str, float]:
        """Per-task energies recombined from this round's step records."""
        losses: dict[str, float] = {}
        for record in self.records:
            losses.update(record.individual_losses)
        return losses

    @property
    def mixed_losses(self) -> dict[str, float]:
        """Per-cluster mixed losses for this round."""
        return {record.cluster_id: record.mixed_loss for record in self.records}


class TreeVQAController:
    """Orchestrate tree-structured execution of a family of VQA tasks."""

    def __init__(
        self,
        tasks: list[VQATask],
        ansatz: Ansatz,
        config: TreeVQAConfig | None = None,
        *,
        initial_parameters: np.ndarray | dict[str, np.ndarray] | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        if not tasks:
            raise ValueError("tasks must be non-empty")
        names = [task.name for task in tasks]
        if len(set(names)) != len(names):
            raise ValueError("task names must be unique")
        qubit_counts = {task.num_qubits for task in tasks}
        if len(qubit_counts) != 1:
            raise ValueError("all tasks of an application must share the qubit count")
        if ansatz.num_qubits != tasks[0].num_qubits:
            raise ValueError("ansatz qubit count must match the tasks")

        self.tasks = list(tasks)
        self.ansatz = ansatz
        self.config = config or TreeVQAConfig()
        self._initial_parameters = initial_parameters
        # The program / measurement-plan caches are process-wide and shared
        # by every live controller and job.  A config knob may only *grow*
        # them here: silently shrinking would evict a concurrent run's
        # compiled entries mid-flight (only the cache owner — the process,
        # or a TreeVQAService — may shrink deliberately).  Stats are
        # snapshotted so result metadata reports this run's cache activity
        # as a delta, clamped and labelled below when runs overlap.
        if self.config.program_cache_size is not None:
            _apply_cache_limit_request(
                "program",
                self.config.program_cache_size,
                program_cache_stats()["limit"],
                set_program_cache_limit,
            )
        if self.config.measurement_plan_cache_size is not None:
            _apply_cache_limit_request(
                "measurement-plan",
                self.config.measurement_plan_cache_size,
                measurement_plan_cache_stats()["limit"],
                set_measurement_plan_cache_limit,
            )
        self._program_cache_baseline = program_cache_stats()
        self._measurement_plan_cache_baseline = measurement_plan_cache_stats()
        self._conjugation_cache_baseline = conjugation_cache_stats()
        self.estimator = self.config.make_estimator()
        #: Whether this controller created (and therefore closes) its
        #: backend.  A caller-supplied backend — the service's shared pool —
        #: is never closed by a finishing run.
        self.owns_backend = backend is None
        self.backend = self.config.make_backend() if backend is None else backend
        #: Fault-tolerance counter snapshot of a (possibly shared) worker
        #: pool at construction, so this run's transport metadata reports its
        #: own fault-handling events, not the pool's lifetime totals.
        self._transport_baseline = self._transport_counters()
        self.scheduler = RoundScheduler(
            self.backend,
            self.estimator,
            max_batch_size=self.config.max_batch_size,
            owns_backend=self.owns_backend,
        )
        self.ledger = ShotLedger(shots_per_term=self.config.shots_per_pauli_term)
        self.tree = ExecutionTree()
        self.trajectories: dict[str, TaskTrajectory] = {
            task.name: TaskTrajectory(task.name) for task in tasks
        }
        self._clusters = self._build_root_clusters()
        self._rounds_completed = 0
        self._has_run = False
        self._finalized = False
        _register_controller(self)
        #: Sticky flag: did another live controller overlap this run at any
        #: observed point?  Deltas over shared process-wide counters are not
        #: attributable to a single run then — metadata labels them.
        self._observed_shared = live_controller_count() > 1

    # -- setup -------------------------------------------------------------------

    def _resolve_initial_parameters(self, bitstring_key: str) -> np.ndarray:
        """Initial ansatz parameters for a root cluster."""
        provided = self._initial_parameters
        if provided is None:
            return self.ansatz.zero_parameters()
        if isinstance(provided, dict):
            if bitstring_key in provided:
                return np.asarray(provided[bitstring_key], dtype=float)
            return self.ansatz.zero_parameters()
        return np.asarray(provided, dtype=float)

    def _build_root_clusters(self) -> list[VQACluster]:
        """Group tasks by initial state into the level-1 clusters (§5.1)."""
        grouped: dict[str, list[VQATask]] = defaultdict(list)
        for task in self.tasks:
            grouped[task.resolved_initial_bitstring].append(task)
        clusters = []
        for root_index, (bitstring, group_tasks) in enumerate(sorted(grouped.items())):
            cluster = VQACluster(
                cluster_id=f"L1B{root_index + 1}",
                tasks=group_tasks,
                ansatz=self.ansatz,
                optimizer=self.config.make_optimizer(),
                estimator=self.estimator,
                config=self.config,
                initial_parameters=self._resolve_initial_parameters(bitstring),
            )
            clusters.append(cluster)
            self.tree.add_root(cluster.cluster_id, cluster.task_names)
        return clusters

    # -- execution ----------------------------------------------------------------

    @property
    def active_clusters(self) -> list[VQACluster]:
        """Clusters that are still optimising (not retired)."""
        return [cluster for cluster in self._clusters if not cluster.retired]

    @property
    def rounds_completed(self) -> int:
        """Rounds executed so far (for round-by-round drivers)."""
        return self._rounds_completed

    def _budget_exhausted(self) -> bool:
        budget = self.config.max_total_shots
        return budget is not None and self.ledger.total >= budget

    def run(self) -> TreeVQAResult:
        """Execute Algorithm 1 and return the per-task results.

        Controllers are run-once, so execution resources the backend may
        hold (the worker pool of a
        :class:`~repro.quantum.parallel.ParallelBackend` under
        ``execution_workers``) are released before returning — *if* this
        controller owns its backend; a caller-supplied (shared) backend is
        left running.  The backend object stays inspectable and would lazily
        respawn its pool if dispatched again.
        """
        if self._has_run or self._rounds_completed > 0 or self._finalized:
            raise RuntimeError("controller.run() may only be called once per instance")
        self._has_run = True
        try:
            while self.step_round() is not None:
                pass
            return self.finalize()
        finally:
            self.close()

    def step_round(self) -> RoundSnapshot | None:
        """Advance the run by exactly one round (the resumable primitive).

        Returns a :class:`RoundSnapshot` of the round's completed steps,
        splits, and shot charges — or ``None`` when the run is over (round
        limit reached or shot budget exhausted) and :meth:`finalize` should
        be called.  Unlike :meth:`run`, stepping never releases execution
        resources: an external driver (the job service) decides when shared
        backends close.
        """
        if self._finalized:
            raise RuntimeError("controller already finalized")
        if self._rounds_completed >= self.config.max_rounds or self._budget_exhausted():
            return None
        if not self._observed_shared and live_controller_count() > 1:
            self._observed_shared = True
        shots_before = self.ledger.total
        self._rounds_completed += 1
        records, splits = self._run_round()
        return RoundSnapshot(
            round_index=self._rounds_completed,
            records=tuple(record for _, record in records),
            splits=tuple(splits),
            shots_this_round=self.ledger.total - shots_before,
            total_shots=self.ledger.total,
            num_active_clusters=len(self.active_clusters),
        )

    def finalize(self) -> TreeVQAResult:
        """Run the §5.3 post-processing pass and assemble the result.

        May be called once, after :meth:`step_round` returned ``None`` (or
        early, to post-process a partially executed run — the job service
        does this for cancelled jobs when asked).  Does not release any
        execution resources; pair with :meth:`close`.
        """
        if self._finalized:
            raise RuntimeError("controller already finalized")
        self._finalized = True
        return self._assemble_result()

    def close(self) -> None:
        """Release owned execution resources and unregister (idempotent; also
        called at the end of :meth:`run` and on context-manager exit).  A
        caller-supplied backend is never closed — the scheduler's
        ``owns_backend`` flag keeps a finishing run from tearing a shared
        worker pool down under concurrent tenants."""
        self.scheduler.close()
        _unregister_controller(self)

    def __enter__(self) -> "TreeVQAController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_round(
        self,
    ) -> tuple[
        list[tuple[VQACluster, ClusterStepRecord]],
        list[tuple[str, tuple[str, ...]]],
    ]:
        """Step every active cluster once through one batched dispatch.

        The scheduler gathers all active clusters' asks, executes them as
        stacked backend batches, and reports completed steps back in cluster
        order — so shot charging, trajectory recording, and the budget break
        happen in exactly the order the sequential per-cluster loop used.
        Splits are applied after the round's steps complete (a split decision
        depends only on the splitting cluster's own state).  Returns the
        reported (cluster, record) pairs and the applied splits.
        """
        pending = list(self.active_clusters)

        def on_record(cluster: VQACluster, record) -> bool:
            self.ledger.charge(cluster.cluster_id, self._rounds_completed, record.shots)
            self.tree.record_iteration(cluster.cluster_id, record.shots)
            if self.config.record_trajectory:
                total = self.ledger.total
                for task_name, energy in record.individual_losses.items():
                    self.trajectories[task_name].record(total, energy)
            # A False return stops the round: clusters the scheduler has not
            # told yet stay un-stepped, like the sequential loop's break.
            return not self._budget_exhausted()

        completed = self.scheduler.run_round(pending, on_record=on_record)
        stepped = {cluster.cluster_id for cluster, _ in completed}
        splits: list[tuple[str, tuple[str, ...]]] = []
        next_clusters: list[VQACluster] = []
        for cluster in pending:
            if cluster.cluster_id not in stepped:
                # Not stepped this round (budget break); keep for finalize.
                next_clusters.append(cluster)
                continue
            decision = cluster.split_decision()
            if decision.should_split and cluster.num_tasks > 1:
                children = cluster.split()
                self.tree.mark_split(cluster.cluster_id, decision.reason)
                for child in children:
                    self.tree.add_child(cluster.cluster_id, child.cluster_id, child.task_names)
                next_clusters.extend(children)
                splits.append(
                    (cluster.cluster_id, tuple(child.cluster_id for child in children))
                )
            else:
                next_clusters.append(cluster)
        self._clusters = next_clusters
        return completed, splits

    def _cache_delta(self, stats: dict, baseline: dict) -> dict:
        """Per-run delta over shared cumulative cache counters.

        Counter deltas are clamped at ≥ 0: the counters are process-wide, so
        a concurrent run's evictions (or a cache clear) can drive a naive
        ``now - baseline`` negative.  When another live controller/job
        overlapped this run the delta also includes misses/hits that run
        caused — the entry is labelled ``"shared": True`` then, so consumers
        know the numbers describe the tenancy, not this run alone.
        """
        delta = {
            key: (
                max(stats[key] - baseline[key], 0)
                if key in _COUNTER_KEYS
                else stats[key]
            )
            for key in stats
        }
        if self._observed_shared or live_controller_count() > 1:
            delta["shared"] = True
        return delta

    def _program_cache_delta(self) -> dict[str, int | dict[str, int]]:
        """This run's program-cache activity (counters since construction;
        ``size``/``limit`` are reported as-is).  Under multi-process
        execution the backend's worker-pool program-shipping stats ride
        along under a ``"workers"`` sub-key, so cache behaviour on both
        sides of the process boundary lands in one metadata entry."""
        delta: dict = self._cache_delta(
            program_cache_stats(), self._program_cache_baseline
        )
        worker_stats = getattr(self.backend, "worker_cache_stats", None)
        if worker_stats is not None:
            delta["workers"] = worker_stats()
        return delta

    _TRANSPORT_COUNTERS = (
        "shard_retries",
        "worker_respawns",
        "deadline_timeouts",
        "fallback_shards",
        "fallback_batches",
    )

    def _transport_counters(self) -> dict[str, int] | None:
        """The backend pool's fault-tolerance counters (None when the backend
        has no worker pool)."""
        worker_stats = getattr(self.backend, "worker_cache_stats", None)
        if worker_stats is None:
            return None
        stats = worker_stats()
        return {key: stats.get(key, 0) for key in self._TRANSPORT_COUNTERS}

    def _transport_metadata(self) -> dict[str, int] | None:
        """This run's worker-fault handling (retries, respawns, deadline
        reaps, in-process fallbacks) as deltas against the construction-time
        snapshot, or None when the run saw no faults — the common case stays
        out of the metadata, and a shared service pool's earlier incidents
        are not billed to this job."""
        if self._transport_baseline is None:
            return None
        counters = self._transport_counters()
        delta = {
            key: max(counters[key] - self._transport_baseline[key], 0)
            for key in self._TRANSPORT_COUNTERS
        }
        if not any(delta.values()):
            return None
        return delta

    def _measurement_plan_cache_delta(self) -> dict[str, int] | None:
        """This run's measurement-plan-cache activity, or None when the run
        compiled and hit no plans (non-sampling estimators) — mirroring the
        program-cache entry's delta-vs-baseline reporting."""
        delta = self._cache_delta(
            measurement_plan_cache_stats(), self._measurement_plan_cache_baseline
        )
        if delta["hits"] == 0 and delta["misses"] == 0:
            return None
        return delta

    def _propagation_metadata(self) -> dict | None:
        """Propagation observability for the run, or None when nothing
        propagated: truncation counts summed from per-result metadata (which
        rides the wire, so the totals are worker-count independent) plus this
        run's conjugation-cache activity, mirroring the program-cache entry."""
        totals = dict(self.scheduler.backend_metadata_totals)
        backend_stats = getattr(self.backend, "propagation_stats", None)
        if not totals and backend_stats is None:
            return None
        totals["conjugation_cache"] = self._cache_delta(
            conjugation_cache_stats(), self._conjugation_cache_baseline
        )
        if backend_stats is not None:
            totals["backend"] = backend_stats()
        return totals

    def _assemble_result(self) -> TreeVQAResult:
        """Post-processing (§5.3) and result assembly."""
        final_clusters = self.active_clusters or self._clusters
        # Propagation-capable backends (pure propagation / width routing)
        # evaluate the §5.3 grid through their own term-vector payloads;
        # dense state preparation at 50+ qubits would defeat the point of
        # running them.  (The width router *does* provide states — on its
        # dense tier — but its wide tasks still need the state-free path.)
        selection_backend = (
            self.backend
            if (
                not getattr(self.backend, "provides_states", True)
                or getattr(self.backend, "accepts_propagation_config", False)
            )
            else None
        )
        selections = select_best_states(
            self.tasks, final_clusters, backend=selection_backend
        )
        outcomes = []
        for task, selection in zip(self.tasks, selections):
            outcomes.append(
                TaskOutcome(
                    task=task,
                    energy=selection.energy,
                    source=selection.cluster_id,
                    fidelity=task.fidelity(selection.energy),
                    error=task.error(selection.energy),
                )
            )
        return TreeVQAResult(
            outcomes=outcomes,
            trajectories=self.trajectories,
            ledger=self.ledger,
            total_rounds=self._rounds_completed,
            metadata={
                "num_final_clusters": len(final_clusters),
                "num_splits": self.tree.num_splits,
                "tree_depth_levels": self.tree.depth_levels(),
                "program_cache": self._program_cache_delta(),
                **(
                    {"measurement_plan_cache": plan_cache}
                    if (plan_cache := self._measurement_plan_cache_delta()) is not None
                    else {}
                ),
                **(
                    {"propagation": propagation}
                    if (propagation := self._propagation_metadata()) is not None
                    else {}
                ),
                **(
                    {"transport": transport}
                    if (transport := self._transport_metadata()) is not None
                    else {}
                ),
            },
            tree=self.tree,
        )
