"""Post-processing: pick the best final cluster state for every task (paper §5.3).

After the shot budget is exhausted, every task Hamiltonian is evaluated on
every final cluster's optimised state and the lowest energy wins.  Because the
clusters already logged per-Pauli-term expectation values during optimisation,
this evaluation is a classical recombination of stored values — the paper
charges no additional shots for it, and neither does this implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cluster import VQACluster
from .task import VQATask

__all__ = ["PostProcessSelection", "select_best_states"]


@dataclass(frozen=True)
class PostProcessSelection:
    """The winning cluster state for one task."""

    task_name: str
    cluster_id: str
    energy: float
    candidate_energies: dict[str, float]


def select_best_states(
    tasks: list[VQATask], clusters: list[VQACluster]
) -> list[PostProcessSelection]:
    """Evaluate every task on every final cluster state and keep the best.

    ``clusters`` should be the final (leaf) clusters of a run; retired parents
    may also be included, which can only improve the result.
    """
    if not clusters:
        raise ValueError("clusters must be non-empty")
    selections = []
    states = [(cluster.cluster_id, cluster.prepare_state()) for cluster in clusters]
    for task in tasks:
        candidates: dict[str, float] = {}
        for cluster_id, state in states:
            candidates[cluster_id] = state.expectation(task.hamiltonian)
        best_cluster = min(candidates, key=candidates.get)
        selections.append(
            PostProcessSelection(
                task_name=task.name,
                cluster_id=best_cluster,
                energy=candidates[best_cluster],
                candidate_energies=candidates,
            )
        )
    return selections
