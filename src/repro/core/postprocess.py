"""Post-processing: pick the best final cluster state for every task (paper §5.3).

After the shot budget is exhausted, every task Hamiltonian is evaluated on
every final cluster's optimised state and the lowest energy wins.  Because the
clusters already logged per-Pauli-term expectation values during optimisation,
this evaluation is a classical recombination of stored values — the paper
charges no additional shots for it, and neither does this implementation.

The evaluation is fully batched: one expectation engine is compiled over the
union term basis of all task Hamiltonians, every final cluster state is pushed
through it in a single batched call, and the (cluster × task) energy matrix is
one matrix product of the per-state term values with the per-task coefficient
vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quantum.backend import ExecutionBackend, ExecutionRequest
from ..quantum.engine import pauli_evaluator
from ..quantum.pauli import PauliOperator
from .cluster import VQACluster
from .task import VQATask

__all__ = ["PostProcessSelection", "select_best_states"]


@dataclass(frozen=True)
class PostProcessSelection:
    """The winning cluster state for one task."""

    task_name: str
    cluster_id: str
    energy: float
    candidate_energies: dict[str, float]


def _backend_term_values(
    backend: ExecutionBackend,
    clusters: list[VQACluster],
    basis: tuple,
    num_qubits: int,
) -> np.ndarray:
    """(cluster, term) expectation grid through an execution backend.

    The state-free evaluation path for backends that never materialize
    amplitudes (Pauli propagation / width routing): one request per final
    cluster over the union-basis operator, term vectors straight off the
    payloads.  Dense 2^n state preparation never happens, so §5.3 selection
    works at 50+ qubits.
    """
    union = PauliOperator.from_terms(
        [(pauli.label, 1.0) for pauli in basis], num_qubits=num_qubits
    )
    requests = [
        ExecutionRequest(
            circuit=None,
            operator=union,
            initial_bitstring=cluster.initial_bitstring,
            tag=cluster.cluster_id,
            program=cluster.ansatz.program(),
            parameters=cluster.parameters,
        )
        for cluster in clusters
    ]
    results = backend.run_batch(requests)
    return np.array([result.term_vector for result in results], dtype=np.float64)


def select_best_states(
    tasks: list[VQATask],
    clusters: list[VQACluster],
    *,
    backend: ExecutionBackend | None = None,
) -> list[PostProcessSelection]:
    """Evaluate every task on every final cluster state and keep the best.

    ``clusters`` should be the final (leaf) clusters of a run; retired parents
    may also be included, which can only improve the result.

    ``backend`` switches the evaluation from dense state preparation to the
    backend's own term-vector payloads — the controller passes its execution
    backend when it is a propagation/width-routed one, keeping selection
    state-free for systems no dense path can hold.
    """
    if not clusters:
        raise ValueError("clusters must be non-empty")
    if not tasks:
        return []
    cluster_ids = [cluster.cluster_id for cluster in clusters]
    # One engine over the union basis, one batched pass over all states, and
    # one matmul for the full (cluster, task) energy grid.
    basis = PauliOperator.term_superset([task.hamiltonian for task in tasks])
    coefficient_matrix = np.array(
        [task.hamiltonian.coefficient_vector(basis) for task in tasks]
    )
    if backend is not None:
        term_values = _backend_term_values(
            backend, clusters, basis, tasks[0].num_qubits
        )  # (clusters, terms)
    else:
        states = [cluster.prepare_state() for cluster in clusters]
        engine = pauli_evaluator(basis, num_qubits=tasks[0].num_qubits)
        term_values = engine.expectation_values_batch(states)  # (clusters, terms)
    energies = term_values @ coefficient_matrix.T  # (clusters, tasks)

    selections = []
    for task_index, task in enumerate(tasks):
        candidates = {
            cluster_id: float(energies[cluster_index, task_index])
            for cluster_index, cluster_id in enumerate(cluster_ids)
        }
        best_cluster = min(candidates, key=candidates.get)
        selections.append(
            PostProcessSelection(
                task_name=task.name,
                cluster_id=best_cluster,
                energy=candidates[best_cluster],
                candidate_energies=candidates,
            )
        )
    return selections
