"""Cluster split decisions and assignments (paper §5.2.3, §5.2.5).

A split is triggered when the windowed mixed-loss slope stalls
(|slope| < ε_split) or when any member Hamiltonian's loss is trending upward
(slope_i > 0).  The member Hamiltonians are then partitioned with spectral
clustering over the §5.2.4 similarity matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clustering import spectral_clustering
from .monitor import SlopeReport

__all__ = ["SplitDecision", "evaluate_split_condition", "assign_split_groups"]


@dataclass(frozen=True)
class SplitDecision:
    """Whether a cluster should split, and why."""

    should_split: bool
    reason: str
    mixed_slope: float = 0.0
    worst_individual_slope: float = 0.0

    @classmethod
    def no_split(cls, reason: str = "conditions not met") -> "SplitDecision":
        return cls(should_split=False, reason=reason)


def evaluate_split_condition(
    report: SlopeReport,
    epsilon_split: float,
    *,
    individual_slope_threshold: float = 0.0,
) -> SplitDecision:
    """Apply the §5.2.3 split conditions to a slope report.

    ``individual_slope_threshold`` relaxes the "any slope_i > 0" condition to
    "any slope_i > threshold" so that shot-noise fluctuations do not trigger
    spurious splits (the default 0.0 is the paper's condition).
    """
    if epsilon_split < 0:
        raise ValueError("epsilon_split must be non-negative")
    if not report.ready:
        return SplitDecision.no_split("monitor not ready (warm-up or window not filled)")
    worst = max(report.individual_slopes) if report.individual_slopes else 0.0
    if abs(report.mixed_slope) < epsilon_split:
        return SplitDecision(
            should_split=True,
            reason=(
                f"stalled: |mixed slope| {abs(report.mixed_slope):.3e} "
                f"< epsilon {epsilon_split:.3e}"
            ),
            mixed_slope=report.mixed_slope,
            worst_individual_slope=worst,
        )
    if worst > individual_slope_threshold:
        return SplitDecision(
            should_split=True,
            reason=f"divergence: individual slope {worst:.3e} > {individual_slope_threshold:.3e}",
            mixed_slope=report.mixed_slope,
            worst_individual_slope=worst,
        )
    return SplitDecision(
        should_split=False,
        reason="optimisation progressing",
        mixed_slope=report.mixed_slope,
        worst_individual_slope=worst,
    )


def assign_split_groups(
    similarity: np.ndarray, num_groups: int = 2, *, seed: int | None = None
) -> list[list[int]]:
    """Partition member indices into ``num_groups`` groups via spectral clustering.

    Returns a list of index lists, each non-empty, ordered by smallest member
    index for determinism.
    """
    similarity = np.asarray(similarity, dtype=float)
    num_items = similarity.shape[0]
    if num_items < 2:
        raise ValueError("cannot split a cluster with fewer than two tasks")
    num_groups = min(num_groups, num_items)
    labels = spectral_clustering(similarity, num_groups, seed=seed)
    groups: dict[int, list[int]] = {}
    for index, label in enumerate(labels):
        groups.setdefault(int(label), []).append(index)
    ordered = sorted(groups.values(), key=lambda group: group[0])
    return ordered
