"""Batched round scheduling: gather every cluster's asks, execute, tell back.

The paper's controller (§5.1, Algorithm 1) steps every active cluster once
per round.  The steps are independent, so instead of simulating each
cluster's objective evaluations one at a time, the :class:`RoundScheduler`
collects the :class:`~repro.quantum.backend.ExecutionRequest` lists emitted
by every cluster's :meth:`~repro.core.cluster.VQACluster.ask`, executes them
through a single :class:`~repro.quantum.backend.ExecutionBackend` batch
(chunked to ``max_batch_size``), converts the backend payloads into
:class:`~repro.quantum.sampling.EstimatorResult` objects via the shared
estimator's noise layer, and tells each cluster its slice.

Ask/tell micro-cycles repeat until every cluster's optimizer completes its
iteration: SPSA clusters finish in one cycle (their ± pair is asked at
once), COBYLA clusters ask one probe per cycle and therefore ride along in
batches of one request per cluster.

``max_batch_size=1`` is the sequential degenerate case — one request per
backend dispatch — and, because the batched statevector backend's stacked
``matmul`` is bit-identical per request regardless of grouping, batched and
sequential rounds produce bit-identical trajectories under the exact
estimator.

States-consuming estimators (the sampling estimator) batch too: the backend
attaches prepared states (``need_states=True``) and the whole
consumption-ordered slice is converted through one
:meth:`~repro.quantum.sampling.BaseEstimator.estimate_backend_results` call
— bit-identical to the per-result loop by the estimator's RNG-derivation
contract.  When the backend cannot attach states (``provides_states=False``,
e.g. pure Pauli propagation), the scheduler warns once, naming the backend,
and falls back per request.

Estimators that can consume neither term vectors nor prepared states
(custom scalar-only estimators) are driven through the legacy per-request
:meth:`~repro.quantum.sampling.BaseEstimator.estimate` path, so every
configuration keeps working — it just doesn't batch.  An estimator may also
*require* a specific backend (``requires_backend``): the density-matrix
estimator only consumes term vectors produced under its noise model by the
density-matrix backend, so noisy rounds batch when the configured backend
matches (same name, same noise model) and fall back to the always-correct
per-request path otherwise.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from ..quantum.backend import ExecutionBackend, ExecutionRequest
from ..quantum.sampling import BaseEstimator, EstimatorResult
from ..quantum.statevector import Statevector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster imports config)
    from .cluster import ClusterStepRecord, VQACluster

__all__ = ["RoundScheduler"]


#: Widest system for which per-request estimation may build a dense state
#: (matches the dense-reference discipline in :mod:`repro.core.task`).
_DENSE_STATE_QUBIT_LIMIT = 26


def _request_state(request: ExecutionRequest) -> Statevector | None:
    """Initial state for per-request estimation, honouring a bitstring-only
    request the same way the backend path's state preparation does.

    Raises on wide requests rather than attempting the 2^n allocation: the
    per-request path is a dense-regime fallback, and wide circuits belong on
    the term-vector (propagation) path.
    """
    if request.initial_state is not None or request.initial_bitstring is None:
        return request.initial_state
    if request.num_qubits > _DENSE_STATE_QUBIT_LIMIT:
        raise ValueError(
            f"per-request estimation cannot materialize a dense "
            f"2^{request.num_qubits} state (limit: {_DENSE_STATE_QUBIT_LIMIT} "
            "qubits); pair wide circuits with a term-vector estimator and the "
            "'pauli_propagation'/'auto' backend"
        )
    return Statevector.computational_basis(
        request.num_qubits, request.initial_bitstring
    )


class RoundScheduler:
    """Execute whole controller rounds through one batched backend."""

    def __init__(
        self,
        backend: ExecutionBackend,
        estimator: BaseEstimator,
        *,
        max_batch_size: int | None = None,
        owns_backend: bool = True,
    ) -> None:
        if max_batch_size is not None and max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1 when set")
        self.backend = backend
        self.estimator = estimator
        self.max_batch_size = max_batch_size
        #: Whether :meth:`close` may release the backend's execution
        #: resources.  ``False`` for backends owned by an outer layer (the
        #: job service's shared worker pool, which many schedulers
        #: multiplex): a finishing run must never tear the pool down under
        #: concurrent tenants.
        self.owns_backend = owns_backend
        #: Backend dispatches performed (0 when the estimator forces the
        #: per-request path; the backend never ran then).
        self.batches_executed = 0
        #: Requests whose results were consumed — converted through the
        #: estimator and told back.  After a mid-round budget stop this can
        #: be less than the backend's own request count: dispatched work
        #: whose consumer was aborted is never pushed through the estimator.
        self.requests_executed = 0
        #: Accumulated :attr:`~repro.quantum.backend.BackendResult.metadata`
        #: counters (the propagation backend's truncation counts), summed
        #: across every result seen — in-process, chunked, or from worker
        #: processes (metadata rides the wire, unlike backend-local
        #: counters).  Empty for backends that attach no metadata.
        self.backend_metadata_totals: dict[str, int] = {}
        self._states_fallback_warned = False

    # -- request execution ------------------------------------------------------

    def execute(self, requests: Sequence[ExecutionRequest]) -> list[EstimatorResult]:
        """Execute requests through the backend + estimator noise layer.

        Contract:

        * **Ordering** — results are returned in request order, one
          :class:`~repro.quantum.sampling.EstimatorResult` per request,
          regardless of how requests are chunked (``max_batch_size``),
          grouped by structure inside the backend, or sharded across worker
          processes (a :class:`~repro.quantum.parallel.ParallelBackend`).
        * **Estimator state** — the estimator's noise RNG and shot counters
          are touched exactly once per request, in request order, in this
          process; estimator-level noise is therefore independent of the
          backend's batching/sharding layout.
        * **Errors** — an invalid request raises from the dispatch (a
          worker-side failure surfaces as
          :class:`~repro.quantum.parallel.ParallelExecutionError`); no
          partial results are returned and the estimator never sees work
          that failed.
        * **Fallback** — estimators that cannot consume this backend's
          payloads (capability flags / ``requires_backend`` pin) are driven
          through their always-correct per-request ``estimate`` path; the
          backend is not touched then.
        """
        requests = list(requests)
        if not requests:
            return []
        return self._convert(requests, self._dispatch(requests))

    def _dispatch(self, requests: list[ExecutionRequest]):
        """Run requests through the backend (None when the estimator cannot
        consume this backend's payloads and must evaluate per request instead).

        Both sides of the pairing are checked: the estimator must be able to
        consume what the backend produces (term vectors, or prepared states
        the backend can actually attach), and the backend's physics must match
        the estimator's own — a noise-applying backend only serves estimators
        that pinned it via ``requires_backend``, and such estimators only
        batch when the pin matches.  Every rejected pairing falls back to the
        always-correct per-request path.
        """
        estimator = self.estimator
        consumes_term_vectors = getattr(estimator, "consumes_term_vectors", False)
        if not consumes_term_vectors and not getattr(estimator, "consumes_states", False):
            return None
        required = getattr(estimator, "requires_backend", None)
        if required is not None:
            if not self._backend_satisfies(required):
                return None
        elif not self._backend_is_exact():
            # The estimator's own physics is exact/pure-state; handing it a
            # noise-applying backend's payloads would silently report noisy
            # values as exact.
            return None
        if not consumes_term_vectors and not getattr(self.backend, "provides_states", True):
            # A states-consuming estimator over a backend that cannot attach
            # prepared states: nothing consumable would come back.  Warn once
            # — the fallback is correct but forfeits batched sampling.
            self._warn_states_fallback()
            return None
        backend_results = []
        for chunk in self._chunks(requests):
            backend_results.extend(
                self.backend.run_batch(chunk, need_states=not consumes_term_vectors)
            )
            self.batches_executed += 1
        self._accumulate_metadata(backend_results)
        return backend_results

    def _warn_states_fallback(self) -> None:
        """Actionable one-time notice that sampling rounds are not batching."""
        if self._states_fallback_warned:
            return
        self._states_fallback_warned = True
        backend_name = getattr(self.backend, "name", type(self.backend).__name__)
        warnings.warn(
            f"{type(self.estimator).__name__} consumes prepared states, but "
            f"backend {backend_name!r} advertises provides_states=False — "
            "falling back to the per-request estimate() path (correct, but "
            "rounds will not batch); configure a state-providing backend "
            "such as 'statevector', 'clifford', or 'auto' within its dense "
            "width limit to batch sampling rounds",
            RuntimeWarning,
            stacklevel=4,
        )

    def _accumulate_metadata(self, backend_results) -> None:
        totals = self.backend_metadata_totals
        for result in backend_results:
            metadata = getattr(result, "metadata", None)
            if not metadata:
                continue
            totals["requests"] = totals.get("requests", 0) + 1
            for key, value in metadata.items():
                if key in ("final_terms", "peak_terms"):
                    key = f"max_{key}"
                    totals[key] = max(totals.get(key, 0), int(value))
                else:
                    totals[key] = totals.get(key, 0) + int(value)

    def _backend_satisfies(self, required: str) -> bool:
        """Can this scheduler's backend produce payloads the estimator may
        consume?  The backend must carry the required name, and — when both
        sides execute under a noise model — the models must agree, otherwise
        batched results would differ from the estimator's own per-request
        physics.  A mismatch falls back to the always-correct per-request
        path rather than silently producing wrong numbers."""
        if getattr(self.backend, "name", None) != required:
            return False
        backend_noise = getattr(self.backend, "noise_model", None)
        estimator_noise = getattr(self.estimator, "noise_model", None)
        if backend_noise is None or estimator_noise is None:
            return True
        return bool(backend_noise == estimator_noise)

    def _backend_is_exact(self) -> bool:
        """True when the backend's payloads reflect exact (noiseless) physics
        — the only payloads an estimator without a ``requires_backend`` pin
        may consume."""
        noise = getattr(self.backend, "noise_model", None)
        return noise is None or bool(getattr(noise, "is_noiseless", False))

    def _convert(self, requests, backend_results) -> list[EstimatorResult]:
        """Turn backend payloads (or, lacking any, per-request evaluations)
        into estimator results.  This is the step that touches the estimator's
        noise model and shot counters, so callers invoke it per consumer in
        consumption order — never for work that ends up discarded."""
        estimator = self.estimator
        self.requests_executed += len(requests)
        if backend_results is None:
            # Per-request estimation needs actual circuits; program requests
            # materialise (and cache) theirs here — this path only runs for
            # estimators that cannot consume backend payloads.
            return [
                estimator.estimate(
                    request.resolve_circuit(), request.operator, _request_state(request)
                )
                for request in requests
            ]
        batch_convert = getattr(estimator, "estimate_backend_results", None)
        if batch_convert is not None:
            # One conversion call for the whole consumption-ordered slice:
            # estimators with a vectorized noise layer (sampling plans)
            # evaluate the slice in a few array ops, and the contract pins
            # the batched call bit-identical to the per-result loop below.
            return batch_convert(
                backend_results, [request.operator for request in requests]
            )
        return [
            estimator.estimate_backend_result(result, request.operator)
            for request, result in zip(requests, backend_results)
        ]

    def _chunks(self, requests: list[ExecutionRequest]) -> list[list[ExecutionRequest]]:
        size = self.max_batch_size
        if size is None or size >= len(requests):
            return [requests]
        return [requests[i : i + size] for i in range(0, len(requests), size)]

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Release backend-held execution resources (idempotent).

        Backends without a ``close`` method (every in-process backend) make
        this a no-op; a :class:`~repro.quantum.parallel.ParallelBackend`
        shuts its worker pool down.  The scheduler remains usable — such
        backends respawn lazily on the next dispatch.  Schedulers built over
        a backend they do not own (``owns_backend=False`` — the job
        service's shared pool) never touch it: closing would drop every
        co-tenant's warm worker program caches and in-flight shards.
        """
        if not self.owns_backend:
            return
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "RoundScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- round orchestration ----------------------------------------------------

    def run_round(
        self,
        clusters: Sequence["VQACluster"],
        *,
        on_record: Callable[["VQACluster", "ClusterStepRecord"], bool] | None = None,
    ) -> list[tuple["VQACluster", "ClusterStepRecord"]]:
        """Step every cluster once through batched execution.

        Contract: every cluster in ``clusters`` is stepped exactly once (or
        aborted un-stepped after a stop — never half-stepped), whatever mix
        of optimizers, batch sizes, backends, or worker counts is in play;
        the reported records are bit-identical to stepping the clusters one
        at a time through :meth:`~repro.core.cluster.VQACluster.step` — also
        under noisy estimators, whose RNG draws happen per record in the
        same strict consumption order (given the same estimator instance and
        seed).

        Completed steps are reported to ``on_record`` in strict cluster order
        — the order the sequential controller stepped them — buffering any
        cluster that finishes its optimizer iteration before a lower-indexed
        one (possible when optimizers take different numbers of micro-cycles,
        e.g. two COBYLA clusters whose scipy blocks terminate after different
        probe counts).  Estimator conversion (noise draws, shot counters)
        likewise happens per cluster in that order, just before the tell, so
        the shared estimator never sees work that ends up discarded.

        Returning False from ``on_record`` stops the round: clusters whose
        steps have not been told yet are aborted un-stepped, exactly like the
        sequential path's budget break.  With heterogeneous optimizers a
        buffered higher-indexed cluster may already have completed its
        iteration when the stop lands; that work happened — its optimizer
        advanced and its shots were consumed — so the buffered record is
        still reported (``on_record``'s return value is ignored for these
        post-stop charges) rather than silently dropping charged work.
        Returns the reported ``(cluster, record)`` pairs.
        """
        active = list(clusters)
        pending: dict[int, list[ExecutionRequest]] = {
            index: cluster.ask() for index, cluster in enumerate(active)
        }
        records: dict[int, ClusterStepRecord] = {}
        reported: list[tuple[VQACluster, ClusterStepRecord]] = []
        next_to_report = 0
        stopped = False

        def flush() -> None:
            # Report the completed prefix in cluster order.
            nonlocal next_to_report, stopped
            while not stopped and next_to_report in records:
                cluster, record = active[next_to_report], records[next_to_report]
                reported.append((cluster, record))
                next_to_report += 1
                if on_record is not None and not on_record(cluster, record):
                    stopped = True

        while pending and not stopped:
            ordered = sorted(pending)
            flat: list[ExecutionRequest] = []
            spans: dict[int, tuple[int, int]] = {}
            for index in ordered:
                spans[index] = (len(flat), len(flat) + len(pending[index]))
                flat.extend(pending[index])
            backend_results = self._dispatch(flat)
            next_pending: dict[int, list[ExecutionRequest]] = {}
            for index in ordered:
                if stopped:
                    active[index].abort_step()
                    continue
                low, high = spans[index]
                results = self._convert(
                    flat[low:high],
                    None if backend_results is None else backend_results[low:high],
                )
                record = active[index].tell(results)
                if record is None:
                    next_pending[index] = active[index].ask()
                else:
                    records[index] = record
                    flush()
            if stopped:
                for index in next_pending:
                    active[index].abort_step()
                break
            pending = next_pending
        # A stop can land while a higher-indexed cluster's completed step is
        # still buffered for in-order reporting.  Its optimizer has already
        # committed the iteration, so report (and thereby charge) it instead
        # of leaving consumed shots and advanced parameters unaccounted.
        for index in sorted(records):
            if index < next_to_report:
                continue
            cluster, record = active[index], records[index]
            reported.append((cluster, record))
            if on_record is not None:
                on_record(cluster, record)
        return reported
