"""Execution-tree bookkeeping (paper Fig. 2b, §9.1).

Every cluster is a node; splits create children.  The *tree critical depth*
(§9.1) is the longest root-to-leaf path, used as a proxy for split timing in
the window-size study of Fig. 14.  Both a level-count and an iteration-count
version are provided (the paper reports the latter as a percentage of the
total iteration budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TreeNode", "ExecutionTree"]


@dataclass
class TreeNode:
    """One cluster in the execution tree."""

    cluster_id: str
    level: int
    task_names: tuple[str, ...]
    parent: str | None = None
    children: list[str] = field(default_factory=list)
    iterations: int = 0
    shots: int = 0
    split_reason: str | None = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def num_tasks(self) -> int:
        return len(self.task_names)


class ExecutionTree:
    """The TreeVQA branching structure produced by one run."""

    def __init__(self) -> None:
        self._nodes: dict[str, TreeNode] = {}
        self._roots: list[str] = []

    # -- construction -----------------------------------------------------------

    def add_root(self, cluster_id: str, task_names: list[str]) -> TreeNode:
        """Register a level-1 root cluster."""
        node = TreeNode(cluster_id=cluster_id, level=1, task_names=tuple(task_names))
        self._insert(node)
        self._roots.append(cluster_id)
        return node

    def add_child(self, parent_id: str, cluster_id: str, task_names: list[str]) -> TreeNode:
        """Register a child created by splitting ``parent_id``."""
        parent = self.node(parent_id)
        node = TreeNode(
            cluster_id=cluster_id,
            level=parent.level + 1,
            task_names=tuple(task_names),
            parent=parent_id,
        )
        self._insert(node)
        parent.children.append(cluster_id)
        return node

    def _insert(self, node: TreeNode) -> None:
        if node.cluster_id in self._nodes:
            raise ValueError(f"duplicate cluster id {node.cluster_id!r}")
        self._nodes[node.cluster_id] = node

    # -- updates ---------------------------------------------------------------------

    def record_iteration(self, cluster_id: str, shots: int) -> None:
        """Account one iteration (and its shots) to a node."""
        node = self.node(cluster_id)
        node.iterations += 1
        node.shots += shots

    def mark_split(self, cluster_id: str, reason: str) -> None:
        """Record why a node was split."""
        self.node(cluster_id).split_reason = reason

    # -- queries --------------------------------------------------------------------

    def node(self, cluster_id: str) -> TreeNode:
        try:
            return self._nodes[cluster_id]
        except KeyError:
            raise KeyError(f"unknown cluster id {cluster_id!r}") from None

    def nodes(self) -> list[TreeNode]:
        return list(self._nodes.values())

    def roots(self) -> list[TreeNode]:
        return [self._nodes[root] for root in self._roots]

    def leaves(self) -> list[TreeNode]:
        return [node for node in self._nodes.values() if node.is_leaf]

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_splits(self) -> int:
        return sum(1 for node in self._nodes.values() if node.children)

    def depth_levels(self) -> int:
        """Maximum level over all nodes (1 for an unsplit tree)."""
        return max((node.level for node in self._nodes.values()), default=0)

    def critical_depth_iterations(self) -> int:
        """Longest root-to-leaf path measured in cluster iterations (§9.1)."""
        best = 0
        for leaf in self.leaves():
            total = 0
            current: TreeNode | None = leaf
            while current is not None:
                total += current.iterations
                current = self._nodes[current.parent] if current.parent else None
            best = max(best, total)
        return best

    def total_shots(self) -> int:
        """Total shots accounted across all nodes."""
        return sum(node.shots for node in self._nodes.values())

    def render(self) -> str:
        """ASCII rendering of the tree (roots first, children indented)."""
        lines: list[str] = []

        def visit(node: TreeNode, indent: int) -> None:
            tasks = ", ".join(node.task_names)
            lines.append(
                f"{'  ' * indent}{node.cluster_id} [level {node.level}, "
                f"{node.iterations} iters, {node.shots:.3e} shots] {{{tasks}}}"
            )
            for child in node.children:
                visit(self._nodes[child], indent + 1)

        for root in self.roots():
            visit(root, 0)
        return "\n".join(lines)
