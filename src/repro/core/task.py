"""VQA task definition (paper terminology, Fig. 1).

A *task* is one Hamiltonian to be solved to its ground state — e.g. a
molecule at one bond length, a spin chain at one field strength, or one
MaxCut graph instance.  An *application* is a list of tasks whose solutions
form the energy landscape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..quantum.exact import ground_state
from ..quantum.pauli import PauliOperator
from ..quantum.statevector import Statevector

__all__ = ["VQATask"]

# Widest system for which on-demand exact diagonalisation is attempted when a
# task carries no explicit reference energy.  Beyond this, error/fidelity are
# NaN: the 50–100 qubit band served by the propagation backend has no exact
# reference unless the caller supplies one.
_EXACT_REFERENCE_QUBIT_LIMIT = 24

# Widest system for which a dense 2^n reference state may be materialized
# (2^26 complex amplitudes = 1 GiB).  Wider tasks run on the propagation
# backend, which prepares from the bitstring label and never needs this.
_DENSE_STATE_QUBIT_LIMIT = 26


@dataclass
class VQATask:
    """One VQA task: a Hamiltonian plus execution metadata.

    Attributes:
        name: Human-readable identifier (e.g. ``"LiH@1.595"``).
        hamiltonian: The task Hamiltonian as a Pauli sum.
        scan_parameter: The application's scan coordinate (bond length, field
            strength, load scale); used only for reporting.
        initial_bitstring: Reference computational-basis state (e.g. the
            Hartree–Fock determinant).  Tasks sharing a bitstring start in
            the same root cluster (paper §5.1).
        reference_energy: Known exact ground-state energy.  When ``None`` it
            is computed on demand by exact diagonalisation and cached.
        metadata: Free-form extra information.
    """

    name: str
    hamiltonian: PauliOperator
    scan_parameter: float | None = None
    initial_bitstring: str | None = None
    reference_energy: float | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.initial_bitstring is not None:
            if len(self.initial_bitstring) != self.hamiltonian.num_qubits:
                raise ValueError(
                    f"initial_bitstring length {len(self.initial_bitstring)} does not match "
                    f"the {self.hamiltonian.num_qubits}-qubit Hamiltonian of task {self.name!r}"
                )
            if set(self.initial_bitstring) - {"0", "1"}:
                raise ValueError("initial_bitstring must contain only '0' and '1'")

    @property
    def num_qubits(self) -> int:
        return self.hamiltonian.num_qubits

    @property
    def resolved_initial_bitstring(self) -> str:
        """The initial bitstring with ``None`` normalized to all zeros.

        Clustering boundaries compare this normalized form, so a task with
        ``initial_bitstring=None`` and one with an explicit ``"0" * n`` land
        in (and validate as) the same root group.
        """
        if self.initial_bitstring is None:
            return "0" * self.num_qubits
        return self.initial_bitstring

    @property
    def num_pauli_terms(self) -> int:
        return self.hamiltonian.num_terms

    def exact_ground_energy(self) -> float:
        """Exact ground-state energy (computed once and cached).

        Beyond :data:`_EXACT_REFERENCE_QUBIT_LIMIT` qubits no exact
        diagonalisation is feasible; without an explicit
        ``reference_energy`` the reference is NaN (and so are the derived
        error/fidelity figures) rather than an attempted 2^n solve —
        wide-system runs on the propagation backend supply their reference
        energies explicitly or report NaN fidelity.
        """
        if self.reference_energy is None:
            if self.num_qubits > _EXACT_REFERENCE_QUBIT_LIMIT:
                return float("nan")
            self.reference_energy = ground_state(self.hamiltonian).energy
        return self.reference_energy

    def initial_state(self) -> Statevector:
        """The reference computational-basis state (|0...0> when unspecified).

        Raises beyond :data:`_DENSE_STATE_QUBIT_LIMIT` qubits: wide tasks
        are served by the propagation backend, which prepares from
        :attr:`resolved_initial_bitstring` without a dense state.
        """
        if self.num_qubits > _DENSE_STATE_QUBIT_LIMIT:
            raise ValueError(
                f"cannot materialize a dense 2^{self.num_qubits} initial state "
                f"(limit: {_DENSE_STATE_QUBIT_LIMIT} qubits); use "
                "backend='pauli_propagation' or 'auto', which prepare from "
                "the bitstring label"
            )
        return Statevector.computational_basis(
            self.num_qubits, self.resolved_initial_bitstring
        )

    def error(self, energy: float) -> float:
        """Relative error |E_gs − E| / |E_gs| (paper §7.2); NaN without a
        feasible reference energy."""
        reference = self.exact_ground_energy()
        if math.isnan(reference):
            return float("nan")
        if reference == 0:
            return abs(energy - reference)
        return abs(reference - energy) / abs(reference)

    def fidelity(self, energy: float) -> float:
        """Fidelity F = 1 − error (paper §7.2), clipped to [0, 1]; NaN
        without a feasible reference energy."""
        error = self.error(energy)
        if math.isnan(error):
            return float("nan")
        return float(max(0.0, min(1.0, 1.0 - error)))

    def __repr__(self) -> str:
        return (
            f"VQATask(name={self.name!r}, qubits={self.num_qubits}, "
            f"terms={self.num_pauli_terms}, scan={self.scan_parameter})"
        )
