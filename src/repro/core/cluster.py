"""The VQA cluster: joint optimisation of a set of similar tasks (paper §5.2).

A cluster owns a subset of the application's tasks, their mixed Hamiltonian,
one optimizer instance, and a slope monitor.  One VQA iteration on the mixed
Hamiltonian (Algorithm 2 line 5) is driven ask/tell: :meth:`VQACluster.ask`
emits the :class:`~repro.quantum.backend.ExecutionRequest` list for the
parameter points its optimizer wants evaluated, and :meth:`VQACluster.tell`
consumes the estimator results — recombining the measured Pauli-term
expectation values into every member task's loss at zero extra quantum cost
(line 6), feeding the slope monitor, and reporting the shot charge — once
the optimizer's iteration completes.  The round scheduler batches many
clusters' asks into single backend dispatches; :meth:`VQACluster.step` keeps
the self-contained sequential form (emitted requests are evaluated one at a
time through the cluster's own estimator).  :meth:`VQACluster.split`
performs the spectral-clustering split of §5.2.5 with parameter inheritance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ansatz.base import Ansatz
from ..optimizers.base import IterativeOptimizer, OptimizerStep
from ..quantum.backend import ExecutionRequest
from ..quantum.density_matrix import validate_density_matrix_qubits
from ..quantum.sampling import BaseEstimator, EstimatorResult
from ..quantum.statevector import Statevector
from .config import TreeVQAConfig
from .mixed_hamiltonian import MixedHamiltonian, build_mixed_hamiltonian
from .monitor import SlopeMonitor, SlopeReport
from .shots import shots_per_evaluation
from .similarity import similarity_matrix
from .splitting import SplitDecision, assign_split_groups, evaluate_split_condition
from .task import VQATask

__all__ = ["ClusterStepRecord", "VQACluster", "step_recombination_weights"]


def step_recombination_weights(values: np.ndarray, optimizer_loss: float) -> np.ndarray:
    """Weights over a step's objective evaluations matching the optimizer's loss.

    The recombined cluster loss should agree with the loss estimate the
    optimizer itself reports for the step: when the reported loss is the mean
    of the evaluations (SPSA reports the mean of its ± perturbation pair),
    the evaluations are averaged; otherwise the single evaluation closest to
    the reported loss is used (COBYLA reports its accepted best probe).
    Either way ``weights @ values == optimizer_loss`` for the optimizers
    shipped with the framework, so the per-task losses decompose the exact
    quantity the optimizer observed — with zero extra quantum cost.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 1 or np.isclose(values.mean(), optimizer_loss, rtol=1e-9, atol=1e-12):
        return np.full(values.size, 1.0 / values.size)
    weights = np.zeros(values.size)
    weights[np.argmin(np.abs(values - optimizer_loss))] = 1.0
    return weights


@dataclass(frozen=True)
class ClusterStepRecord:
    """Outcome of one cluster iteration.

    ``individual_losses`` are the member-task energies recombined classically
    from the per-term expectation values the optimizer's objective
    evaluations measured during the step (paper §5.2.2/§5.3 — no additional
    quantum cost, and no extra state preparation): the measured term vectors
    are combined with :func:`step_recombination_weights` so that
    ``mixed_loss`` — the cluster average of the individual losses — agrees
    with ``optimizer_loss``, the optimizer's own loss estimate for the step
    (the mean of SPSA's two perturbed evaluations; COBYLA's accepted best
    probe).  ``evaluated_parameters`` are the parameter vectors of the step's
    evaluations and ``recombination_weights`` the weights applied to their
    term vectors; ``parameters`` are the *updated* parameters θ_t the
    optimizer returned.
    """

    cluster_id: str
    iteration: int
    mixed_loss: float
    individual_losses: dict[str, float]
    shots: int
    num_evaluations: int
    optimizer_loss: float = 0.0
    parameters: np.ndarray | None = field(repr=False, default=None)
    evaluated_parameters: tuple[np.ndarray, ...] | None = field(repr=False, default=None)
    recombination_weights: np.ndarray | None = field(repr=False, default=None)


class VQACluster:
    """Jointly optimise a shared ansatz state over a set of task Hamiltonians."""

    def __init__(
        self,
        cluster_id: str,
        tasks: list[VQATask],
        ansatz: Ansatz,
        optimizer: IterativeOptimizer,
        estimator: BaseEstimator,
        config: TreeVQAConfig,
        initial_parameters: np.ndarray,
        *,
        level: int = 1,
    ) -> None:
        if not tasks:
            raise ValueError("a cluster needs at least one task")
        qubit_counts = {task.num_qubits for task in tasks}
        if len(qubit_counts) != 1:
            raise ValueError("all tasks in a cluster must share the qubit count")
        if ansatz.num_qubits != tasks[0].num_qubits:
            raise ValueError("ansatz qubit count must match the tasks")
        # Normalized comparison: a task with initial_bitstring=None and one
        # with an explicit all-zeros bitstring share the same initial state.
        bitstrings = {task.resolved_initial_bitstring for task in tasks}
        if len(bitstrings) != 1:
            raise ValueError("all tasks in a cluster must share the initial state")
        if (config.backend == "density_matrix" and config.backend_factory is None) or (
            config.estimator == "density_matrix" and config.estimator_factory is None
        ):
            # Either density-matrix path (batched backend or per-request
            # estimator): fail at cluster wiring time with an actionable
            # message instead of deep inside evolution (or after a huge
            # allocation) on the first round.
            validate_density_matrix_qubits(ansatz.num_qubits)

        self.cluster_id = cluster_id
        self.tasks = list(tasks)
        self.ansatz = ansatz
        self.optimizer = optimizer
        self.estimator = estimator
        self.config = config
        self.level = level
        self.retired = False
        self.iterations = 0
        self.shots_used = 0

        self.mixed: MixedHamiltonian = build_mixed_hamiltonian(
            [task.hamiltonian for task in tasks]
        )
        self.monitor = SlopeMonitor(
            num_tasks=len(tasks),
            window_size=config.window_size,
            warmup_iterations=config.warmup_iterations,
        )
        self._similarity = (
            similarity_matrix([task.hamiltonian for task in tasks]) if len(tasks) > 1 else None
        )
        # The dense initial state is materialized lazily: requests carry only
        # the bitstring (request_initial_amplitudes rebuilds the identical
        # computational-basis amplitudes on demand), so wide-system runs on
        # the propagation backend never allocate 2^n amplitudes here.
        self._initial_state: Statevector | None = None
        self._initial_bitstring = tasks[0].resolved_initial_bitstring
        # Compile the ansatz once into a reusable execution program (cached
        # persistently on the circuit structure): ask() then ships
        # (program, parameter-row) payloads instead of freshly bound circuits.
        self._program = ansatz.program() if config.use_circuit_programs else None
        self._shots_per_evaluation = shots_per_evaluation(
            self.mixed.operator, config.shots_per_pauli_term
        )
        self._step_evaluations: list[tuple[np.ndarray, EstimatorResult]] = []
        self._asked: list[np.ndarray] | None = None
        self._step_in_progress = False
        self._parameters = np.asarray(initial_parameters, dtype=float).copy()
        if self._parameters.size != ansatz.num_parameters:
            raise ValueError(
                f"expected {ansatz.num_parameters} initial parameters, got {self._parameters.size}"
            )
        self.optimizer.reset(self._parameters)

    # -- properties -------------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def task_names(self) -> list[str]:
        return [task.name for task in self.tasks]

    @property
    def parameters(self) -> np.ndarray:
        """Current ansatz parameters."""
        return self._parameters.copy()

    @property
    def similarity(self) -> np.ndarray | None:
        """Pairwise similarity matrix of the member Hamiltonians (None for singletons)."""
        return None if self._similarity is None else self._similarity.copy()

    @property
    def initial_state(self) -> Statevector:
        if self._initial_state is None:
            self._initial_state = self.tasks[0].initial_state()
        return self._initial_state

    @property
    def initial_bitstring(self) -> str:
        """The shared computational-basis label (never materializes a state)."""
        return self._initial_bitstring

    def shots_per_evaluation(self) -> int:
        """Shot cost of one mixed-Hamiltonian evaluation (cached; the mixed
        operator is immutable for the lifetime of the cluster)."""
        return self._shots_per_evaluation

    def prepare_state(self, parameters: np.ndarray | None = None) -> Statevector:
        """|psi(theta)> for the cluster's current (or given) parameters."""
        values = self._parameters if parameters is None else np.asarray(parameters, dtype=float)
        return self.ansatz.prepare_state(values, self.initial_state)

    # -- optimisation --------------------------------------------------------------

    def ask(self) -> list[ExecutionRequest]:
        """Execution requests for the parameter points the optimizer wants next.

        The first ask of an iteration opens a new step; keep alternating with
        :meth:`tell` until it returns a completed :class:`ClusterStepRecord`
        (SPSA completes in one ask/tell exchange, COBYLA asks one probe at a
        time).  Requests carry the cluster's mixed operator and shared
        initial-state bitstring (backends rebuild the identical basis
        amplitudes on demand, so wide propagation runs never ship or allocate
        a dense state), so any execution backend can serve them — including
        across process boundaries: the payload (shared compiled program,
        per-point parameter row, initial bitstring, mixed operator) pickles
        cheaply, which is what lets
        :class:`~repro.quantum.parallel.ParallelBackend` shard a round's
        asks over worker processes without rebuilding any cluster state.
        """
        if self.retired:
            raise RuntimeError(f"cluster {self.cluster_id} is retired")
        if self._asked is not None:
            raise RuntimeError("ask() called again before telling the previous results")
        if not self._step_in_progress:
            self._step_evaluations = []
            self._step_in_progress = True
        points = self.optimizer.ask()
        self._asked = points
        if self._program is not None:
            return [
                ExecutionRequest(
                    circuit=None,
                    operator=self.mixed.operator,
                    initial_state=None,
                    initial_bitstring=self._initial_bitstring,
                    tag=(self.cluster_id, self.iterations + 1, index),
                    program=self._program,
                    parameters=point,
                )
                for index, point in enumerate(points)
            ]
        return [
            ExecutionRequest(
                circuit=self.ansatz.bound_circuit(point),
                operator=self.mixed.operator,
                initial_state=None,
                initial_bitstring=self._initial_bitstring,
                tag=(self.cluster_id, self.iterations + 1, index),
            )
            for index, point in enumerate(points)
        ]

    def tell(self, results: list[EstimatorResult]) -> ClusterStepRecord | None:
        """Report estimator results for the last ask, in request order.

        Returns the completed step record, or None when the optimizer needs
        more evaluations to finish its iteration.
        """
        if self._asked is None:
            raise RuntimeError("tell() called without a preceding ask()")
        if len(results) != len(self._asked):
            raise ValueError(f"expected {len(self._asked)} results, got {len(results)}")
        points, self._asked = self._asked, None
        for point, result in zip(points, results):
            self._step_evaluations.append((np.asarray(point, dtype=float).copy(), result))
        step = self.optimizer.tell([float(result.value) for result in results])
        if step is None:
            return None
        self._step_in_progress = False
        return self._complete_step(step)

    def abort_step(self) -> None:
        """Abandon an in-progress step (e.g. the round's shot budget ran out).

        The optimizer's pending iteration is cancelled and the cluster's
        parameters stay at their last completed value, matching the
        sequential controller's behaviour for clusters it never stepped.
        """
        self.optimizer.cancel()
        self._asked = None
        self._step_in_progress = False
        self._step_evaluations = []

    def _evaluation_term_vector(self, result: EstimatorResult) -> np.ndarray | None:
        """Basis-ordered term vector from an estimator result.

        Returns None when the result carries no term data (a custom estimator
        built against the scalar-only API) — the caller then falls back to an
        exact recombination from a freshly prepared state.
        """
        if result.term_basis == self.mixed.basis:
            return np.asarray(result.term_vector, dtype=float)
        if not result.term_basis:
            return None
        # Custom estimators may report a different term order; fall back to
        # the dictionary recombination.
        return self.mixed.term_vector(result.term_values)

    def _individual_energies(self) -> np.ndarray:
        """Member-task energies at the current parameters.

        One shared state is prepared, every basis Pauli term is evaluated in
        one vectorized engine pass, and the per-task energies are a single
        ``coefficient_matrix @ term_vector`` product (the §5.3 recombination;
        zero shot cost).  :meth:`step` avoids even this state preparation by
        reusing the objective's measured term vector.
        """
        state = self.prepare_state()
        return self.mixed.individual_values(self.mixed.engine.expectation_values(state))

    def step(self) -> ClusterStepRecord:
        """One VQA iteration on the mixed Hamiltonian (Algorithm 2, lines 5-10).

        Self-contained sequential form of the ask/tell cycle: each emitted
        request is evaluated through the cluster's own estimator, one state
        preparation per objective evaluation.  (The controller instead
        batches many clusters' requests through the round scheduler.)  The
        member-task losses are recombined from the term vectors measured by
        the optimizer's own objective evaluations (weighted to match the
        optimizer's reported loss), so one step performs exactly
        ``num_evaluations`` state preparations — the separate
        individual-energy simulation of the per-term implementation is gone.
        """
        while True:
            requests = self.ask()
            results = [
                self.estimator.estimate(
                    request.resolve_circuit(), request.operator, self.initial_state
                )
                for request in requests
            ]
            record = self.tell(results)
            if record is not None:
                return record

    def _complete_step(self, step: OptimizerStep) -> ClusterStepRecord:
        """Recombine, monitor, and account a completed optimizer iteration."""
        self._parameters = np.asarray(step.parameters, dtype=float)
        term_vectors = [
            self._evaluation_term_vector(result) for _, result in self._step_evaluations
        ]
        if term_vectors and all(vector is not None for vector in term_vectors):
            evaluated_parameters = tuple(
                parameters for parameters, _ in self._step_evaluations
            )
            weights = step_recombination_weights(
                np.array([result.value for _, result in self._step_evaluations]),
                step.loss,
            )
            individual = self.mixed.individual_values(weights @ np.stack(term_vectors))
        else:
            # Defensive: an optimizer that never called the objective, or a
            # custom estimator without term data — recombine exactly from a
            # freshly prepared state instead.
            evaluated_parameters = (self._parameters.copy(),)
            weights = np.ones(1)
            individual = self._individual_energies()
        mixed_loss = float(np.mean(individual))
        self.monitor.record(mixed_loss, individual)
        shots = step.num_evaluations * self.shots_per_evaluation()
        self.iterations += 1
        self.shots_used += shots
        return ClusterStepRecord(
            cluster_id=self.cluster_id,
            iteration=self.iterations,
            mixed_loss=mixed_loss,
            individual_losses=dict(zip(self.task_names, individual.tolist())),
            shots=shots,
            num_evaluations=step.num_evaluations,
            optimizer_loss=step.loss,
            parameters=self._parameters.copy(),
            evaluated_parameters=evaluated_parameters,
            recombination_weights=weights,
        )

    # -- splitting -----------------------------------------------------------------

    def slope_report(self) -> SlopeReport:
        """Current sliding-window slope report."""
        return self.monitor.report()

    def split_decision(self) -> SplitDecision:
        """Evaluate the §5.2.3 split conditions for this cluster."""
        if self.num_tasks <= self.config.min_cluster_size:
            return SplitDecision.no_split("cluster at minimum size")
        if self.config.forced_split_iteration is not None:
            # Forced splits (the §9.1 split-timing study) apply to root-level
            # clusters only, so exactly one split happens per root.
            if self.level > 1:
                return SplitDecision.no_split("forced splits apply to root clusters only")
            if self.iterations >= self.config.forced_split_iteration:
                return SplitDecision(True, f"forced split at iteration {self.iterations}")
            return SplitDecision.no_split("before forced split point")
        if self.config.disable_automatic_splits:
            return SplitDecision.no_split("automatic splits disabled")
        if self.iterations % self.config.split_check_every != 0:
            return SplitDecision.no_split("not a split-check iteration")
        return evaluate_split_condition(
            self.monitor.report(),
            self.config.epsilon_split,
            individual_slope_threshold=self.config.individual_slope_threshold,
        )

    def split(self, *, seed: int | None = None) -> list["VQACluster"]:
        """Split into child clusters via spectral clustering (§5.2.5).

        Children inherit the parent's parameters (warm start) and level + 1;
        the parent is marked retired.
        """
        if self.num_tasks < 2:
            raise ValueError("cannot split a singleton cluster")
        assert self._similarity is not None
        groups = assign_split_groups(
            self._similarity,
            num_groups=min(self.config.num_split_children, self.num_tasks),
            seed=self.config.seed if seed is None else seed,
        )
        children = []
        for child_index, indices in enumerate(groups):
            child_tasks = [self.tasks[i] for i in indices]
            child = VQACluster(
                cluster_id=f"{self.cluster_id}.{child_index}",
                tasks=child_tasks,
                ansatz=self.ansatz,
                optimizer=self.config.make_optimizer(),
                estimator=self.estimator,
                config=self.config,
                initial_parameters=self._parameters,
                level=self.level + 1,
            )
            children.append(child)
        self.retired = True
        return children

    def __repr__(self) -> str:
        return (
            f"VQACluster(id={self.cluster_id!r}, tasks={self.num_tasks}, "
            f"level={self.level}, iterations={self.iterations}, retired={self.retired})"
        )
