"""TreeVQA configuration (paper §5, §7.3, §9.1).

All tunables of the framework live here: the shot ledger rate (4096 per Pauli
term per evaluation), the slope monitor's warm-up and window size, the split
threshold ε_split, the optimizer and estimator choices, and the knobs used by
the hyper-parameter studies of §9.1 (forced split timing, disabled automatic
splits).
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable
from dataclasses import dataclass, field
from functools import partial

from ..optimizers import COBYLA, SPSA, IterativeOptimizer
from ..quantum.backend import BACKEND_REGISTRY, ExecutionBackend, make_execution_backend
from ..quantum.noise import NoiseModel, get_backend_profile
from ..quantum.parallel import ParallelBackend
from ..quantum.sampling import (
    BaseEstimator,
    DensityMatrixEstimator,
    ExactEstimator,
    SamplingEstimator,
    ShotNoiseEstimator,
)
from .shots import DEFAULT_SHOTS_PER_PAULI_TERM

__all__ = ["TreeVQAConfig"]

_OPTIMIZERS: dict[str, type[IterativeOptimizer]] = {"spsa": SPSA, "cobyla": COBYLA}
_ESTIMATORS: dict[str, type[BaseEstimator]] = {
    "exact": ExactEstimator,
    "shot_noise": ShotNoiseEstimator,
    "sampling": SamplingEstimator,
    "density_matrix": DensityMatrixEstimator,
}


@dataclass
class TreeVQAConfig:
    """Execution configuration shared by TreeVQA and the baseline.

    Attributes:
        max_total_shots: Global shot budget S_max (Algorithm 1).  ``None``
            (default) means "until max_rounds"; must be ≥ 1 when set.  A
            budget break lands mid-round in the same strict cluster order
            regardless of ``max_batch_size``/``execution_workers``.
        max_rounds: Maximum number of controller rounds (each active cluster
            performs one VQA iteration per round).  Default 200; must be
            ≥ 1.
        shots_per_pauli_term: Shots charged per Pauli term per evaluation
            (§7.3; 4096 by default, must be ≥ 1).  Also the variance scale
            of the ``shot_noise`` estimator and the per-basis sample count
            of the ``sampling`` estimator.
        warmup_iterations: Iterations before the slope monitor may trigger a
            split (§5.2.2).  Default 20; must be ≥ 0.
        window_size: Sliding-window length W for the slope regressions.
            Default 10; must be ≥ 2 (a slope needs two points).
        epsilon_split: Stall threshold ε_split on the mixed-loss slope.
            Default 1e-3; must be ≥ 0.  Meaningful only relative to the
            loss scale of the task family; the §9.1 knobs
            (``forced_split_iteration`` / ``disable_automatic_splits``)
            bypass it.
        individual_slope_threshold: Threshold on per-task slopes (default
            0.0, which reproduces the paper's "any slope_i > 0" condition).
            Must be finite: a NaN would silently disable divergence-based
            splits (``slope > nan`` is always False), so non-finite values
            are rejected at construction time.
        split_check_every: Check the split condition every k iterations.
            Default 1; must be ≥ 1.
        num_split_children: Number of children per split (default 2, as in
            the paper; must be ≥ 2 and is capped at the cluster size when a
            split fires).
        min_cluster_size: Clusters at or below this size never split.
            Default 1 (singletons never split regardless); must be ≥ 1.
        optimizer: ``"spsa"`` (default) or ``"cobyla"``; validated against
            the registry unless ``optimizer_factory`` is supplied (a factory
            makes the name moot).
        optimizer_kwargs: Keyword arguments forwarded to the optimizer
            constructor (default ``{}``).  SPSA additionally receives
            ``seed`` from the config unless the kwargs override it.
        optimizer_factory: Optional callable overriding optimizer creation;
            called once per cluster (and per baseline task), so it must
            return a *fresh* optimizer each call.
        estimator: ``"exact"`` (default), ``"shot_noise"``, ``"sampling"``
            or ``"density_matrix"`` (noisy simulation under the resolved
            noise model); validated against the registry unless
            ``estimator_factory`` is supplied.  Interaction:
            ``noise_model``/``noise_profile`` require a noise-consuming
            estimator (``"density_matrix"`` or a factory), and the
            ``"density_matrix"`` estimator only *batches* when the backend
            is ``"density_matrix"`` with the same noise model — any other
            pairing falls back to per-request estimation.
        estimator_factory: Optional callable overriding estimator creation
            (one shared instance per controller; its RNG stream is consumed
            in strict cluster order, which is what keeps noisy trajectories
            independent of batching and worker count).
        backend: Execution backend for batched state preparation:
            ``"statevector"`` (dense, batched), ``"clifford"`` (stabilizer
            fast path for π/2-multiple angles, dense fallback otherwise),
            ``"density_matrix"`` (batched noisy ``U ρ U†`` execution under
            the resolved noise model — pair it with
            ``estimator="density_matrix"`` so noisy rounds batch),
            ``"pauli_propagation"`` (vectorized Heisenberg propagation with
            truncation — no state is ever materialized, opening the
            50–100 qubit band) or ``"auto"`` (width-routed: dense below the
            ~20-qubit statevector cap, propagation above).
        propagation_max_weight / propagation_coefficient_threshold /
            propagation_max_terms: Truncation knobs for the
            ``"pauli_propagation"``/``"auto"`` backends (defaults: the
            paper's weight-8 truncation, threshold 1e-8, 200k terms).
            Rejected for backends that do not propagate.
        backend_factory: Optional callable overriding backend creation.  Must
            build a *fresh* backend per call: with ``execution_workers`` set
            it also runs once inside every worker process (so under the
            ``spawn`` start method it must be picklable).
        noise_model: Explicit :class:`~repro.quantum.noise.NoiseModel` for the
            density-matrix backend/estimator (exclusive with
            ``noise_profile``; None means noiseless).
        noise_profile: Name of a synthetic backend calibration profile
            (``"hanoi"``, ``"cairo"``, ...; see
            :data:`~repro.quantum.noise.BACKEND_PROFILES`) converted to a
            noise model at construction time.
        max_batch_size: Cap on requests per backend dispatch.  ``None``
            (default) executes each round's full request set in one batch;
            ``1`` is the sequential degenerate case (bit-identical
            trajectories under the exact estimator either way).  Interacts
            with ``execution_workers``: each chunk is what gets sharded
            across the pool, so a cap far below
            ``workers x per-worker batch`` serialises the round — leave it
            ``None`` unless peak memory (``batch x 2^n`` amplitudes, or
            ``batch x 2^n x 2^n`` with ``noise_model``) forces a cap.
        execution_workers: Number of worker processes for multi-process
            execution sharding (validated ≥ 1 when set).  ``None`` (default)
            executes in-process; any value wraps the configured backend in a
            :class:`~repro.quantum.parallel.ParallelBackend` whose merged
            results are bit-identical to in-process dispatch for every
            worker count (``1`` is the exact degenerate case), for every
            backend — including ``"density_matrix"``, whose per-request cost
            dominates and parallelises best.  Shot-noise RNG streams live in
            the estimator layer of the parent process, so noisy trajectories
            are also worker-count independent.  When unset, the
            ``REPRO_EXECUTION_WORKERS`` environment variable supplies the
            value (the CI parallel smoke uses this); ``0`` there forces
            in-process execution, so an env-driven matrix can express the
            workers-off leg.  Jobs submitted to a
            :class:`~repro.service.TreeVQAService` must leave this unset —
            the service owns the one shared pool all jobs multiplex onto,
            and sizes it at service construction.
        worker_timeout_s: Deadline in seconds for each worker shard reply
            (validated > 0 when set); requires ``execution_workers``.
            ``None`` (default) waits indefinitely — the safe choice for
            arbitrarily large batches — while a value bounds every reply
            wait, so a hung (not dead) worker is reaped, respawned, and its
            shard rerouted within that many seconds instead of deadlocking
            the round.  Results are unaffected either way (rerouted and
            original execution are bit-identical); size it generously above
            the slowest expected shard (e.g. several minutes for
            density-matrix workloads) so slow-but-healthy workers are never
            reaped.  Jobs submitted to a service must leave this unset too —
            the deadline is a property of the shared pool, set at service
            construction.
        use_circuit_programs: Compile each cluster's ansatz once into a
            reusable :class:`~repro.quantum.program.CircuitProgram` and ask
            with (program, parameter-row) payloads instead of freshly bound
            circuits (bit-identical results; set False to force the legacy
            bound-circuit request path).
        program_cache_size: LRU capacity of the persistent (process-wide)
            circuit-program cache.  ``None`` (default) leaves the current
            process-wide limit untouched; a value *grows* the limit via
            :func:`~repro.quantum.program.set_program_cache_limit` when a
            controller is constructed.  The cache is shared by every live
            controller and job in the process, so a controller never
            *shrinks* it (that would evict a concurrent run's compiled
            programs mid-flight): a value below the current limit is ignored
            with an actionable ``RuntimeWarning`` — shrink deliberately via
            ``set_program_cache_limit`` or by sizing the cache on the owning
            :class:`~repro.service.TreeVQAService`.  See
            :func:`~repro.quantum.program.program_cache_stats` for hit/miss
            statistics (a per-run delta is attached to every controller
            result under ``metadata["program_cache"]``; with overlapping
            runs the delta is clamped at ≥ 0 and labelled ``"shared"``).
        measurement_plan_cache_size: LRU capacity of the persistent
            (process-wide) measurement-plan cache used by the ``sampling``
            estimator (compile-once QWC grouping, basis rotations, and
            support masks per operator fingerprint).  ``None`` (default)
            leaves the current process-wide limit untouched; a value grows
            the limit via
            :func:`~repro.quantum.measurement.set_measurement_plan_cache_limit`
            at controller construction — never shrinks it, with the same
            shared-cache warning semantics as ``program_cache_size`` — and a
            per-run stats delta is attached under
            ``metadata["measurement_plan_cache"]`` when the run used plans.
        forced_split_iteration: §9.1 study — force exactly one split (per
            root cluster) at this cluster iteration.  Default ``None``
            (condition-based splitting); must be ≥ 1 when set (the trigger
            compares against 1-based cluster iterations, so 0 or negative
            values would force the split before any optimization happened).
        disable_automatic_splits: §9.1 study — suppress condition-based
            splits (default False).
        record_trajectory: Record per-task energy/shots trajectories
            (default True; needed by every figure; disable only for
            micro-benchmarks).
        seed: Seed for optimizers, estimators and spectral clustering
            (default 0; ``None`` draws fresh OS entropy — runs are then not
            reproducible and the parity guarantees above become
            distributional rather than bitwise between repeats).  Must be
            ≥ 0 when set: ``np.random.SeedSequence`` rejects negative
            entropy, and validating here fails at configuration time rather
            than deep inside the first sampling round.
    """

    max_total_shots: int | None = None
    max_rounds: int = 200
    shots_per_pauli_term: int = DEFAULT_SHOTS_PER_PAULI_TERM
    warmup_iterations: int = 20
    window_size: int = 10
    epsilon_split: float = 1e-3
    individual_slope_threshold: float = 0.0
    split_check_every: int = 1
    num_split_children: int = 2
    min_cluster_size: int = 1
    optimizer: str = "spsa"
    optimizer_kwargs: dict = field(default_factory=dict)
    optimizer_factory: Callable[[], IterativeOptimizer] | None = None
    estimator: str = "exact"
    estimator_factory: Callable[[], BaseEstimator] | None = None
    backend: str = "statevector"
    backend_factory: Callable[[], ExecutionBackend] | None = None
    noise_model: NoiseModel | None = None
    noise_profile: str | None = None
    propagation_max_weight: int | None = None
    propagation_coefficient_threshold: float | None = None
    propagation_max_terms: int | None = None
    max_batch_size: int | None = None
    execution_workers: int | None = None
    worker_timeout_s: float | None = None
    use_circuit_programs: bool = True
    program_cache_size: int | None = None
    measurement_plan_cache_size: int | None = None
    forced_split_iteration: int | None = None
    disable_automatic_splits: bool = False
    record_trajectory: bool = True
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.max_total_shots is not None and self.max_total_shots < 1:
            raise ValueError("max_total_shots must be positive when set")
        if self.shots_per_pauli_term < 1:
            raise ValueError("shots_per_pauli_term must be >= 1")
        if self.window_size < 2:
            raise ValueError("window_size must be >= 2")
        if self.warmup_iterations < 0:
            raise ValueError("warmup_iterations must be >= 0")
        if self.epsilon_split < 0:
            raise ValueError("epsilon_split must be >= 0")
        if not math.isfinite(self.individual_slope_threshold):
            # A NaN here would silently disable divergence splits: every
            # ``slope > threshold`` comparison is False against NaN.
            raise ValueError("individual_slope_threshold must be finite")
        if self.num_split_children < 2:
            raise ValueError("num_split_children must be >= 2")
        if self.min_cluster_size < 1:
            raise ValueError("min_cluster_size must be >= 1")
        if self.split_check_every < 1:
            raise ValueError("split_check_every must be >= 1")
        if self.forced_split_iteration is not None and self.forced_split_iteration < 1:
            raise ValueError("forced_split_iteration must be >= 1 when set")
        if self.seed is not None and self.seed < 0:
            # np.random.SeedSequence rejects negative entropy; fail at
            # configuration time instead of inside the first sampling round.
            raise ValueError("seed must be >= 0 when set (or None for OS entropy)")
        if self.optimizer_factory is None and self.optimizer not in _OPTIMIZERS:
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}; choose from {sorted(_OPTIMIZERS)}"
            )
        # Like the optimizer path, a supplied factory makes the name moot.
        if self.estimator_factory is None and self.estimator not in _ESTIMATORS:
            raise ValueError(
                f"unknown estimator {self.estimator!r}; choose from {sorted(_ESTIMATORS)}"
            )
        if self.backend_factory is None and self.backend not in BACKEND_REGISTRY:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {sorted(BACKEND_REGISTRY)}"
            )
        if self.noise_model is not None and self.noise_profile is not None:
            raise ValueError("give noise_model or noise_profile, not both")
        if self.noise_profile is not None:
            # Resolve eagerly: an unknown profile fails here, at configuration
            # time, with the available names listed.
            get_backend_profile(self.noise_profile)
        if self.noise_model is not None or self.noise_profile is not None:
            # Only the density-matrix *estimator* ever consumes the noise
            # model (the scheduler keeps noisy backend payloads away from
            # exact estimators), so without one the run would silently be
            # noiseless.  Factories are trusted to read resolve_noise_model().
            noise_aware_estimator = (
                self.estimator_factory is not None or self.estimator == "density_matrix"
            )
            if not noise_aware_estimator:
                raise ValueError(
                    "noise_model/noise_profile have no effect with "
                    f"estimator={self.estimator!r}; use "
                    "estimator='density_matrix' (plus backend='density_matrix' "
                    "to batch noisy rounds)"
                )
        if self.max_batch_size is not None and self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1 when set")
        propagation_knobs = (
            self.propagation_max_weight,
            self.propagation_coefficient_threshold,
            self.propagation_max_terms,
        )
        if any(knob is not None for knob in propagation_knobs):
            propagation_capable = self.backend_factory is not None or getattr(
                BACKEND_REGISTRY.get(self.backend), "accepts_propagation_config", False
            )
            if not propagation_capable:
                raise ValueError(
                    "propagation_* knobs have no effect with "
                    f"backend={self.backend!r}; use backend='pauli_propagation' "
                    "or backend='auto'"
                )
            # Delegate range validation (and error wording) to the config type.
            self.resolve_propagation_config()
        if self.execution_workers is None:
            env = os.environ.get("REPRO_EXECUTION_WORKERS")
            if env:
                try:
                    workers = int(env)
                except ValueError:
                    raise ValueError(
                        f"REPRO_EXECUTION_WORKERS must be an integer, got {env!r}"
                    ) from None
                if workers < 0:
                    raise ValueError(
                        "REPRO_EXECUTION_WORKERS must be >= 0 "
                        f"(0 forces in-process execution), got {workers}"
                    )
                # 0 means "force in-process" so an env-driven test matrix can
                # express the workers-off leg; > 0 supplies the pool size.
                if workers > 0:
                    self.execution_workers = workers
        if self.execution_workers is not None and self.execution_workers < 1:
            raise ValueError("execution_workers must be >= 1 when set")
        if self.worker_timeout_s is not None:
            if not self.worker_timeout_s > 0:
                raise ValueError("worker_timeout_s must be > 0 when set")
            if self.execution_workers is None:
                raise ValueError(
                    "worker_timeout_s requires execution_workers (the deadline "
                    "bounds worker shard replies; in-process execution has none)"
                )
        if self.program_cache_size is not None and self.program_cache_size < 1:
            raise ValueError("program_cache_size must be >= 1 when set")
        if (
            self.measurement_plan_cache_size is not None
            and self.measurement_plan_cache_size < 1
        ):
            raise ValueError("measurement_plan_cache_size must be >= 1 when set")

    # -- factories -------------------------------------------------------------

    def make_optimizer(self) -> IterativeOptimizer:
        """Construct a fresh optimizer instance (one per cluster / baseline task)."""
        if self.optimizer_factory is not None:
            return self.optimizer_factory()
        kwargs = dict(self.optimizer_kwargs)
        if self.optimizer == "spsa" and "seed" not in kwargs:
            kwargs["seed"] = self.seed
        return _OPTIMIZERS[self.optimizer](**kwargs)

    def resolve_noise_model(self) -> NoiseModel | None:
        """The configured noise model: explicit, profile-derived, or None."""
        if self.noise_model is not None:
            return self.noise_model
        if self.noise_profile is not None:
            return get_backend_profile(self.noise_profile).to_noise_model()
        return None

    def resolve_propagation_config(self):
        """The Pauli-propagation truncation policy for propagation-capable
        backends — configured knobs override the paper defaults (weight 8,
        threshold 1e-8, 200k terms)."""
        from ..quantum.pauli_propagation import PauliPropagationConfig

        defaults = PauliPropagationConfig()
        return PauliPropagationConfig(
            max_weight=(
                defaults.max_weight
                if self.propagation_max_weight is None
                else self.propagation_max_weight
            ),
            coefficient_threshold=(
                defaults.coefficient_threshold
                if self.propagation_coefficient_threshold is None
                else self.propagation_coefficient_threshold
            ),
            max_terms=(
                defaults.max_terms
                if self.propagation_max_terms is None
                else self.propagation_max_terms
            ),
        )

    def make_estimator(self) -> BaseEstimator:
        """Construct the expectation-value estimator."""
        if self.estimator_factory is not None:
            return self.estimator_factory()
        if self.estimator == "density_matrix":
            return DensityMatrixEstimator(
                self.resolve_noise_model() or NoiseModel(),
                shots_per_term=self.shots_per_pauli_term,
                seed=self.seed,
            )
        return _ESTIMATORS[self.estimator](
            shots_per_term=self.shots_per_pauli_term, seed=self.seed
        )

    def _inner_backend_factory(self) -> Callable[[], ExecutionBackend]:
        """Zero-argument factory for the configured (inner) backend.

        The factory — not a backend instance — is what multi-process
        execution needs: every worker process builds its own backend from it.
        The resolved noise model is forwarded to noise-capable backends
        (``"density_matrix"``); purely unitary backends are constructed
        without it, so a noise model configured for a per-request noisy
        estimator does not break a statevector-backend run.
        """
        if self.backend_factory is not None:
            return self.backend_factory
        backend_cls = BACKEND_REGISTRY[self.backend]
        if getattr(backend_cls, "accepts_noise_model", False):
            return partial(
                make_execution_backend, self.backend, noise_model=self.resolve_noise_model()
            )
        if getattr(backend_cls, "accepts_propagation_config", False):
            # The frozen config pickles into each worker, which compiles its
            # own conjugation structures once (like programs, shipped by id).
            return partial(
                make_execution_backend,
                self.backend,
                propagation=self.resolve_propagation_config(),
            )
        return partial(make_execution_backend, self.backend)

    def make_backend(self) -> ExecutionBackend:
        """Construct the execution backend for batched rounds.

        With ``execution_workers`` set, the configured backend is wrapped in
        a :class:`~repro.quantum.parallel.ParallelBackend` that shards every
        dispatch across that many worker processes (bit-identical results;
        the pool spawns lazily and is released by
        :meth:`~repro.core.controller.TreeVQAController.close` /
        ``ParallelBackend.close``).
        """
        factory = self._inner_backend_factory()
        if self.execution_workers is None:
            return factory()
        return ParallelBackend(
            factory,
            workers=self.execution_workers,
            worker_timeout_s=self.worker_timeout_s,
        )
