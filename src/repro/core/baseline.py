"""Conventional VQA baseline: every task optimised independently (paper §7.3).

Each task receives its own optimizer instance and an equal share of the shot
budget.  Shot accounting uses the same 4096-per-Pauli-term rule as TreeVQA,
applied to the *task's own* Hamiltonian, so the savings ratio between the two
runs is exactly the paper's metric.

Because the tasks are logically independent, shots-to-threshold analyses sum
the per-task costs rather than reading a single interleaved ledger — see
:class:`IndependentBaselineResult`.
"""

from __future__ import annotations

import numpy as np

from ..ansatz.base import Ansatz
from ..quantum.sampling import BaseEstimator
from .config import TreeVQAConfig
from .results import BaselineResult, TaskOutcome, TaskTrajectory
from .shots import ShotLedger, shots_per_evaluation
from .task import VQATask

__all__ = ["IndependentBaselineResult", "IndependentVQABaseline"]


class IndependentBaselineResult(BaselineResult):
    """Baseline result with per-task (rather than interleaved) shot analyses."""

    def shots_to_reach_fidelity(self, threshold: float) -> int | None:
        """Sum over tasks of the shots each needs to reach ``threshold``."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        total = 0
        for outcome in self.outcomes:
            task = outcome.task
            trajectory = self.trajectories.get(task.name)
            if trajectory is None or not trajectory.energies:
                return None
            reference = task.exact_ground_energy()
            target_energy = reference + (1.0 - threshold) * abs(reference)
            shots = trajectory.shots_to_reach_energy(target_energy)
            if shots is None:
                return None
            total += shots
        return total

    def fidelity_at_shots(self, shot_budget: int) -> float:
        """Minimum task fidelity when the budget is split equally across tasks."""
        if not self.outcomes:
            return 0.0
        per_task_budget = shot_budget // len(self.outcomes)
        fidelities = []
        for outcome in self.outcomes:
            trajectory = self.trajectories.get(outcome.task_name)
            best = trajectory.best_energy_within(per_task_budget) if trajectory else None
            fidelities.append(0.0 if best is None else outcome.task.fidelity(best))
        return min(fidelities)

    def mean_fidelity_at_shots(self, shot_budget: int) -> float:
        """Mean task fidelity when the budget is split equally across tasks."""
        if not self.outcomes:
            return 0.0
        per_task_budget = shot_budget // len(self.outcomes)
        fidelities = []
        for outcome in self.outcomes:
            trajectory = self.trajectories.get(outcome.task_name)
            best = trajectory.best_energy_within(per_task_budget) if trajectory else None
            fidelities.append(0.0 if best is None else outcome.task.fidelity(best))
        return float(np.mean(fidelities))


class IndependentVQABaseline:
    """Run every task as its own conventional VQA with equal shot allocation."""

    def __init__(
        self,
        tasks: list[VQATask],
        ansatz: Ansatz,
        config: TreeVQAConfig | None = None,
        *,
        initial_parameters: np.ndarray | dict[str, np.ndarray] | None = None,
    ) -> None:
        if not tasks:
            raise ValueError("tasks must be non-empty")
        self.tasks = list(tasks)
        self.ansatz = ansatz
        self.config = config or TreeVQAConfig()
        self._initial_parameters = initial_parameters
        self.estimator: BaseEstimator = self.config.make_estimator()
        self.ledger = ShotLedger(shots_per_term=self.config.shots_per_pauli_term)
        self.trajectories: dict[str, TaskTrajectory] = {
            task.name: TaskTrajectory(task.name) for task in tasks
        }

    # -- helpers -------------------------------------------------------------------

    def _initial_parameters_for(self, task: VQATask) -> np.ndarray:
        provided = self._initial_parameters
        if provided is None:
            return self.ansatz.zero_parameters()
        if isinstance(provided, dict):
            key = task.initial_bitstring or "0" * task.num_qubits
            if task.name in provided:
                return np.asarray(provided[task.name], dtype=float)
            if key in provided:
                return np.asarray(provided[key], dtype=float)
            return self.ansatz.zero_parameters()
        return np.asarray(provided, dtype=float)

    def _iterations_for(self, task: VQATask, iterations_per_task: int | None) -> int:
        """Iteration budget: explicit, or derived from the equal shot split."""
        if iterations_per_task is not None:
            return iterations_per_task
        config = self.config
        if config.max_total_shots is None:
            return config.max_rounds
        per_task_budget = config.max_total_shots // len(self.tasks)
        optimizer = config.make_optimizer()
        per_iteration = optimizer.evaluations_per_step * shots_per_evaluation(
            task.hamiltonian, config.shots_per_pauli_term
        )
        return max(1, min(config.max_rounds, per_task_budget // max(per_iteration, 1)))

    # -- execution ------------------------------------------------------------------

    def run(self, iterations_per_task: int | None = None) -> IndependentBaselineResult:
        """Optimise every task independently and assemble a comparable result."""
        outcomes = []
        for task in self.tasks:
            outcome = self._run_task(task, self._iterations_for(task, iterations_per_task))
            outcomes.append(outcome)
        return IndependentBaselineResult(
            outcomes=outcomes,
            trajectories=self.trajectories,
            ledger=self.ledger,
            total_rounds=max(
                (len(t.energies) for t in self.trajectories.values()), default=0
            ),
            metadata={"iterations_per_task": iterations_per_task},
        )

    def _run_task(self, task: VQATask, num_iterations: int) -> TaskOutcome:
        optimizer = self.config.make_optimizer()
        optimizer.reset(self._initial_parameters_for(task))
        initial_state = task.initial_state()
        trajectory = self.trajectories[task.name]
        per_evaluation = shots_per_evaluation(task.hamiltonian, self.config.shots_per_pauli_term)
        task_shots = 0
        best_energy = np.inf
        best_parameters = optimizer.parameters

        def objective(parameters: np.ndarray) -> float:
            circuit = self.ansatz.bound_circuit(parameters)
            return self.estimator.estimate(circuit, task.hamiltonian, initial_state).value

        for iteration in range(num_iterations):
            step = optimizer.run_step(objective)
            shots = step.num_evaluations * per_evaluation
            task_shots += shots
            self.ledger.charge(task.name, iteration + 1, shots)
            # The optimizer's own loss estimate for the step, derived from the
            # objective evaluations it already charged — the same
            # no-extra-state-preparation bookkeeping as the TreeVQA clusters
            # (whose recombined mixed loss equals this same quantity).
            energy = step.loss
            if self.config.record_trajectory:
                trajectory.record(task_shots, energy)
            if energy < best_energy:
                best_energy = energy
                best_parameters = step.parameters
            if self._task_budget_exhausted(task_shots):
                break

        # Final exact evaluation at the best parameters (classical
        # bookkeeping, no charge).  Not clamped to ``best_energy``: with a
        # noisy estimator the running minimum is biased low and corresponds to
        # no actual parameter vector.
        final_state = self.ansatz.prepare_state(best_parameters, initial_state)
        final_energy = final_state.expectation(task.hamiltonian)
        return TaskOutcome(
            task=task,
            energy=final_energy,
            source="baseline",
            fidelity=task.fidelity(final_energy),
            error=task.error(final_energy),
        )

    def _task_budget_exhausted(self, task_shots: int) -> bool:
        budget = self.config.max_total_shots
        if budget is None:
            return False
        return task_shots >= budget // len(self.tasks)
