"""TreeVQA core: clusters, controller, baseline, similarity, shot accounting."""

from .baseline import IndependentBaselineResult, IndependentVQABaseline
from .cluster import ClusterStepRecord, VQACluster
from .config import TreeVQAConfig
from .controller import RoundSnapshot, TreeVQAController, live_controller_count
from .mixed_hamiltonian import MixedHamiltonian, build_mixed_hamiltonian
from .monitor import SlopeMonitor, SlopeReport, linear_regression_slope
from .postprocess import PostProcessSelection, select_best_states
from .results import BaselineResult, RunResult, TaskOutcome, TaskTrajectory, TreeVQAResult
from .scheduler import RoundScheduler
from .shots import (
    DEFAULT_SHOTS_PER_PAULI_TERM,
    ShotLedger,
    ShotRecord,
    shots_for_run,
    shots_per_evaluation,
)
from .similarity import (
    coefficient_l1_distance,
    distance_matrix,
    gaussian_similarity,
    ground_state_overlap_matrix,
    normalize_matrix,
    similarity_matrix,
)
from .splitting import SplitDecision, assign_split_groups, evaluate_split_condition
from .task import VQATask
from .tree import ExecutionTree, TreeNode

__all__ = [
    "IndependentBaselineResult",
    "IndependentVQABaseline",
    "ClusterStepRecord",
    "VQACluster",
    "TreeVQAConfig",
    "TreeVQAController",
    "RoundSnapshot",
    "live_controller_count",
    "MixedHamiltonian",
    "build_mixed_hamiltonian",
    "SlopeMonitor",
    "SlopeReport",
    "linear_regression_slope",
    "PostProcessSelection",
    "select_best_states",
    "BaselineResult",
    "RunResult",
    "TaskOutcome",
    "TaskTrajectory",
    "TreeVQAResult",
    "RoundScheduler",
    "DEFAULT_SHOTS_PER_PAULI_TERM",
    "ShotLedger",
    "ShotRecord",
    "shots_for_run",
    "shots_per_evaluation",
    "coefficient_l1_distance",
    "distance_matrix",
    "gaussian_similarity",
    "ground_state_overlap_matrix",
    "normalize_matrix",
    "similarity_matrix",
    "SplitDecision",
    "assign_split_groups",
    "evaluate_split_condition",
    "VQATask",
    "ExecutionTree",
    "TreeNode",
]
