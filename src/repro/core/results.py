"""Result records and fidelity/shot analyses shared by TreeVQA and the baseline.

Every run — TreeVQA or conventional VQA — produces a :class:`RunResult` with
the same shape: one :class:`TaskOutcome` per task, a per-task
:class:`TaskTrajectory` of (cumulative shots, energy estimate) samples, and a
shot ledger.  The figure-level analyses of §8 are all derived from these:

* Fig. 6 — ``shots_to_reach_fidelity(T)`` for a sweep of thresholds;
* Fig. 7 — ``fidelity_at_shots(budget)`` for a sweep of budgets;
* Fig. 8/9/11/12 — savings ratios between two results at matched fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .shots import ShotLedger
from .task import VQATask
from .tree import ExecutionTree

__all__ = ["TaskTrajectory", "TaskOutcome", "RunResult", "TreeVQAResult", "BaselineResult"]


@dataclass
class TaskTrajectory:
    """Energy-estimate samples of one task over the course of a run."""

    task_name: str
    cumulative_shots: list[int] = field(default_factory=list)
    energies: list[float] = field(default_factory=list)

    def record(self, cumulative_shots: int, energy: float) -> None:
        if self.cumulative_shots and cumulative_shots < self.cumulative_shots[-1]:
            raise ValueError("cumulative shots must be non-decreasing")
        self.cumulative_shots.append(int(cumulative_shots))
        self.energies.append(float(energy))

    @property
    def num_samples(self) -> int:
        return len(self.energies)

    def best_energy_so_far(self) -> np.ndarray:
        """Running minimum of the energy estimates (variational best-so-far)."""
        if not self.energies:
            return np.array([])
        return np.minimum.accumulate(np.asarray(self.energies))

    def best_energy_within(self, shot_budget: int) -> float | None:
        """Lowest energy estimate recorded at or below ``shot_budget`` shots."""
        best: float | None = None
        for shots, energy in zip(self.cumulative_shots, self.energies):
            if shots > shot_budget:
                break
            if best is None or energy < best:
                best = energy
        return best

    def shots_to_reach_energy(self, target_energy: float) -> int | None:
        """Smallest cumulative shot count whose estimate is <= ``target_energy``."""
        for shots, energy in zip(self.cumulative_shots, self.energies):
            if energy <= target_energy:
                return shots
        return None


@dataclass
class TaskOutcome:
    """Final per-task answer after post-processing."""

    task: VQATask
    energy: float
    source: str
    fidelity: float
    error: float

    @property
    def task_name(self) -> str:
        return self.task.name


@dataclass
class RunResult:
    """Common result type for TreeVQA and the independent baseline."""

    outcomes: list[TaskOutcome]
    trajectories: dict[str, TaskTrajectory]
    ledger: ShotLedger
    total_rounds: int
    metadata: dict = field(default_factory=dict)

    # -- headline numbers ---------------------------------------------------------

    @property
    def total_shots(self) -> int:
        return self.ledger.total

    @property
    def tasks(self) -> list[VQATask]:
        return [outcome.task for outcome in self.outcomes]

    def final_energies(self) -> dict[str, float]:
        return {outcome.task_name: outcome.energy for outcome in self.outcomes}

    def final_fidelities(self) -> dict[str, float]:
        return {outcome.task_name: outcome.fidelity for outcome in self.outcomes}

    def min_fidelity(self) -> float:
        """The application-level fidelity (the paper's ∀ F_i ≥ T definition)."""
        return min(outcome.fidelity for outcome in self.outcomes)

    def mean_fidelity(self) -> float:
        return float(np.mean([outcome.fidelity for outcome in self.outcomes]))

    def max_reported_fidelity(self) -> float:
        """Highest fidelity threshold every task reaches along its trajectory.

        Deliberately restricted to the recorded trajectories (not the
        post-processed final energies) so that any threshold at or below this
        value is guaranteed to have a finite ``shots_to_reach_fidelity``.
        """
        per_task = []
        for outcome in self.outcomes:
            trajectory = self.trajectories.get(outcome.task_name)
            if trajectory is not None and trajectory.energies:
                best = float(np.min(trajectory.energies))
            else:
                best = outcome.energy
            per_task.append(outcome.task.fidelity(best))
        return min(per_task) if per_task else 0.0

    # -- figure-level analyses -----------------------------------------------------

    def shots_to_reach_fidelity(self, threshold: float) -> int | None:
        """Shots needed until *every* task's best-so-far fidelity is ≥ ``threshold``.

        Returns ``None`` if some task never reaches the threshold during the
        recorded run (the hatched bars of Fig. 9).
        """
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        worst = 0
        for outcome in self.outcomes:
            task = outcome.task
            trajectory = self.trajectories.get(task.name)
            if trajectory is None or not trajectory.energies:
                return None
            reference = task.exact_ground_energy()
            # fidelity >= T  <=>  energy <= E_gs + (1-T)|E_gs|
            target_energy = reference + (1.0 - threshold) * abs(reference)
            shots = trajectory.shots_to_reach_energy(target_energy)
            if shots is None:
                return None
            worst = max(worst, shots)
        return worst

    def fidelity_at_shots(self, shot_budget: int) -> float:
        """Minimum task fidelity achievable within ``shot_budget`` shots."""
        fidelities = []
        for outcome in self.outcomes:
            trajectory = self.trajectories.get(outcome.task_name)
            if trajectory is None:
                return 0.0
            best = trajectory.best_energy_within(shot_budget)
            if best is None:
                return 0.0
            fidelities.append(outcome.task.fidelity(best))
        return min(fidelities) if fidelities else 0.0

    def mean_fidelity_at_shots(self, shot_budget: int) -> float:
        """Mean task fidelity achievable within ``shot_budget`` shots."""
        fidelities = []
        for outcome in self.outcomes:
            trajectory = self.trajectories.get(outcome.task_name)
            best = trajectory.best_energy_within(shot_budget) if trajectory else None
            fidelities.append(0.0 if best is None else outcome.task.fidelity(best))
        return float(np.mean(fidelities)) if fidelities else 0.0

    def fidelity_variance(self) -> float:
        """Variance of final task fidelities (the §8.2 variance observation)."""
        return float(np.var([outcome.fidelity for outcome in self.outcomes]))

    def summary(self) -> str:
        """One-paragraph plain-text summary."""
        lines = [
            f"tasks: {len(self.outcomes)}  total shots: {self.total_shots:.3e}  "
            f"min fidelity: {self.min_fidelity():.4f}  mean fidelity: {self.mean_fidelity():.4f}",
        ]
        for outcome in self.outcomes:
            lines.append(
                f"  {outcome.task_name:<24} E = {outcome.energy:+.6f}  "
                f"F = {outcome.fidelity:.4f}  ({outcome.source})"
            )
        return "\n".join(lines)


@dataclass
class TreeVQAResult(RunResult):
    """TreeVQA run result: adds the execution tree."""

    tree: ExecutionTree = field(default_factory=ExecutionTree)


@dataclass
class BaselineResult(RunResult):
    """Conventional (independent-task) VQA run result."""
