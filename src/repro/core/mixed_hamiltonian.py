"""Cluster mixed-Hamiltonian construction (paper §5.2.1).

A cluster handling Hamiltonians {H_1 … H_N} first finds the superset of their
Pauli terms, zero-pads every Hamiltonian onto it, and optimises the average

    H_mixed = (1/N) Σ_i H_i^padded.

The padded basis is kept alongside the mixed operator because the individual
task losses are later recombined classically from the per-term expectation
values measured for the mixed Hamiltonian (§5.2.2, §5.3).  The recombination
is a single matrix-vector product: ``coefficient_matrix @ term_vector``,
where the term vector follows the basis order — the same order the compiled
expectation engine and every :class:`~repro.quantum.sampling.EstimatorResult`
use.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..quantum.engine import CompiledPauliOperator, compiled_pauli_operator
from ..quantum.pauli import PauliOperator, PauliString

__all__ = ["MixedHamiltonian", "build_mixed_hamiltonian"]


@dataclass(frozen=True)
class MixedHamiltonian:
    """The mixed operator plus the shared padded term basis.

    ``coefficient_matrix[i, j]`` is task ``i``'s (real) coefficient of basis
    term ``j``; the mixed operator's terms are stored in basis order, so a
    term-value vector measured for the mixed operator recombines into all
    member-task energies with one matmul (:meth:`individual_values`).
    """

    operator: PauliOperator
    basis: tuple[PauliString, ...]
    coefficient_matrix: np.ndarray  # shape (num_tasks, num_terms)

    @property
    def num_tasks(self) -> int:
        return self.coefficient_matrix.shape[0]

    @property
    def num_terms(self) -> int:
        return len(self.basis)

    @cached_property
    def engine(self) -> CompiledPauliOperator:
        """Compiled expectation engine over the mixed operator (basis order)."""
        engine = compiled_pauli_operator(self.operator)
        if engine.paulis != self.basis:  # pragma: no cover - construction invariant
            raise RuntimeError("compiled term order diverged from the padded basis")
        return engine

    def term_vector(self, term_values: Mapping[PauliString, float]) -> np.ndarray:
        """Basis-ordered value vector from a ``{pauli: value}`` mapping.

        Missing terms contribute their identity value when they are the
        identity and zero otherwise (they were not measured because their
        mixed coefficient is zero).
        """
        return np.array(
            [
                term_values.get(pauli, 1.0 if pauli.is_identity else 0.0)
                for pauli in self.basis
            ],
            dtype=float,
        )

    def _coerce_vector(
        self, term_values: Mapping[PauliString, float] | np.ndarray
    ) -> np.ndarray:
        if isinstance(term_values, Mapping):
            return self.term_vector(term_values)
        vector = np.asarray(term_values, dtype=float)
        if vector.shape != (self.num_terms,):
            raise ValueError(
                f"term vector has shape {vector.shape}, expected ({self.num_terms},)"
            )
        return vector

    def individual_value(
        self, task_index: int, term_values: Mapping[PauliString, float] | np.ndarray
    ) -> float:
        """Recombine stored per-term expectation values into one task's energy.

        This is the classical recombination of §5.3: no quantum cost.
        ``term_values`` may be a basis-ordered vector or a ``{pauli: value}``
        mapping.
        """
        if not 0 <= task_index < self.num_tasks:
            raise IndexError("task_index out of range")
        return float(self.coefficient_matrix[task_index] @ self._coerce_vector(term_values))

    def individual_values(
        self, term_values: Mapping[PauliString, float] | np.ndarray
    ) -> np.ndarray:
        """Energies of every member task from one set of term values.

        A single ``coefficient_matrix @ term_vector`` product — the vectorized
        form of the per-task recombination loops.
        """
        return self.coefficient_matrix @ self._coerce_vector(term_values)

    def mixed_value(self, term_values: Mapping[PauliString, float] | np.ndarray) -> float:
        """The mixed-Hamiltonian energy (mean of the member-task energies)."""
        return float(np.mean(self.individual_values(term_values)))


def build_mixed_hamiltonian(hamiltonians: list[PauliOperator]) -> MixedHamiltonian:
    """Pad the Hamiltonians to a shared term basis and average them."""
    if not hamiltonians:
        raise ValueError("hamiltonians must be non-empty")
    num_qubits = hamiltonians[0].num_qubits
    for hamiltonian in hamiltonians:
        if hamiltonian.num_qubits != num_qubits:
            raise ValueError("all Hamiltonians in a cluster must share the qubit count")
    basis = tuple(PauliOperator.term_superset(hamiltonians))
    coefficient_matrix = np.array(
        [hamiltonian.coefficient_vector(list(basis)) for hamiltonian in hamiltonians]
    )
    mean_coefficients = coefficient_matrix.mean(axis=0)
    operator = PauliOperator(
        num_qubits,
        {pauli: coefficient for pauli, coefficient in zip(basis, mean_coefficients)},
    )
    return MixedHamiltonian(
        operator=operator, basis=basis, coefficient_matrix=coefficient_matrix
    )
