"""Cluster mixed-Hamiltonian construction (paper §5.2.1).

A cluster handling Hamiltonians {H_1 … H_N} first finds the superset of their
Pauli terms, zero-pads every Hamiltonian onto it, and optimises the average

    H_mixed = (1/N) Σ_i H_i^padded.

The padded basis is kept alongside the mixed operator because the individual
task losses are later recombined classically from the per-term expectation
values measured for the mixed Hamiltonian (§5.2.2, §5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quantum.pauli import PauliOperator, PauliString

__all__ = ["MixedHamiltonian", "build_mixed_hamiltonian"]


@dataclass(frozen=True)
class MixedHamiltonian:
    """The mixed operator plus the shared padded term basis."""

    operator: PauliOperator
    basis: tuple[PauliString, ...]
    coefficient_matrix: np.ndarray  # shape (num_tasks, num_terms)

    @property
    def num_tasks(self) -> int:
        return self.coefficient_matrix.shape[0]

    @property
    def num_terms(self) -> int:
        return len(self.basis)

    def individual_value(self, task_index: int, term_values: dict[PauliString, float]) -> float:
        """Recombine stored per-term expectation values into one task's energy.

        This is the classical recombination of §5.3: no quantum cost.
        Missing terms (not measured because their mixed coefficient is zero)
        contribute their identity value when they are the identity and zero
        otherwise.
        """
        if not 0 <= task_index < self.num_tasks:
            raise IndexError("task_index out of range")
        total = 0.0
        coefficients = self.coefficient_matrix[task_index]
        for coefficient, pauli in zip(coefficients, self.basis):
            if coefficient == 0.0:
                continue
            if pauli in term_values:
                total += coefficient * term_values[pauli]
            elif pauli.is_identity:
                total += coefficient
        return total

    def individual_values(self, term_values: dict[PauliString, float]) -> np.ndarray:
        """Energies of every member task from one set of term values."""
        return np.array(
            [self.individual_value(i, term_values) for i in range(self.num_tasks)]
        )


def build_mixed_hamiltonian(hamiltonians: list[PauliOperator]) -> MixedHamiltonian:
    """Pad the Hamiltonians to a shared term basis and average them."""
    if not hamiltonians:
        raise ValueError("hamiltonians must be non-empty")
    num_qubits = hamiltonians[0].num_qubits
    for hamiltonian in hamiltonians:
        if hamiltonian.num_qubits != num_qubits:
            raise ValueError("all Hamiltonians in a cluster must share the qubit count")
    basis = tuple(PauliOperator.term_superset(hamiltonians))
    coefficient_matrix = np.array(
        [hamiltonian.coefficient_vector(list(basis)) for hamiltonian in hamiltonians]
    )
    mean_coefficients = coefficient_matrix.mean(axis=0)
    operator = PauliOperator(
        num_qubits,
        {pauli: coefficient for pauli, coefficient in zip(basis, mean_coefficients)},
    )
    return MixedHamiltonian(
        operator=operator, basis=basis, coefficient_matrix=coefficient_matrix
    )
