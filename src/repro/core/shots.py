"""Shot accounting (paper §2.2, §7.3).

The paper charges ``4096 × (number of Pauli terms)`` shots per objective
evaluation and ``N_overall = iterations × evals-per-iteration × N_per_eval``
for a full run.  TreeVQA's savings come from charging a *cluster* of N tasks
one mixed-Hamiltonian evaluation instead of N separate evaluations, so the
ledger tracks shots per cluster and per iteration to let the evaluation code
reconstruct savings curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..quantum.pauli import PauliOperator

__all__ = [
    "DEFAULT_SHOTS_PER_PAULI_TERM",
    "shots_per_evaluation",
    "shots_for_run",
    "ShotRecord",
    "ShotLedger",
]

#: §7.3: every Pauli term is sampled 4096 times per evaluation.
DEFAULT_SHOTS_PER_PAULI_TERM = 4096


def shots_per_evaluation(
    operator: PauliOperator | int, shots_per_term: int = DEFAULT_SHOTS_PER_PAULI_TERM
) -> int:
    """N_per_eval = shots_per_term × (number of Pauli terms)."""
    if isinstance(operator, PauliOperator):
        num_terms = sum(1 for p, c in operator.items() if c != 0 and not p.is_identity)
        num_terms = max(num_terms, 1)
    else:
        num_terms = int(operator)
        if num_terms < 1:
            raise ValueError("number of Pauli terms must be >= 1")
    if shots_per_term < 1:
        raise ValueError("shots_per_term must be >= 1")
    return shots_per_term * num_terms


def shots_for_run(
    num_iterations: int,
    evaluations_per_iteration: int,
    operator: PauliOperator | int,
    shots_per_term: int = DEFAULT_SHOTS_PER_PAULI_TERM,
) -> int:
    """N_overall = iterations × evals/iter × N_per_eval (paper §2.2)."""
    if num_iterations < 0 or evaluations_per_iteration < 1:
        raise ValueError("invalid iteration or evaluation count")
    per_evaluation = shots_per_evaluation(operator, shots_per_term)
    return num_iterations * evaluations_per_iteration * per_evaluation


@dataclass(frozen=True)
class ShotRecord:
    """Shots charged by one cluster (or one baseline task) at one iteration."""

    source: str
    iteration: int
    shots: int


@dataclass
class ShotLedger:
    """Accumulates shot charges and exposes per-source / cumulative totals.

    A running total is maintained incrementally, so :attr:`total` and
    :meth:`charge` are O(1) — the controller consults the total after every
    recorded charge (budget checks, trajectory x-axes), which made the old
    sum-over-records implementation quadratic over a run.
    """

    shots_per_term: int = DEFAULT_SHOTS_PER_PAULI_TERM
    records: list[ShotRecord] = field(default_factory=list)
    _total: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        self._total = sum(record.shots for record in self.records)

    @property
    def total(self) -> int:
        """Total shots charged so far."""
        return self._total

    def charge(self, source: str, iteration: int, shots: int) -> int:
        """Record a charge and return the new total."""
        if shots < 0:
            raise ValueError("shots must be non-negative")
        self.records.append(ShotRecord(source=source, iteration=iteration, shots=shots))
        self._total += shots
        return self._total

    def charge_evaluations(
        self, source: str, iteration: int, operator: PauliOperator | int, num_evaluations: int
    ) -> int:
        """Charge ``num_evaluations`` evaluations of ``operator`` and return the new total."""
        shots = num_evaluations * shots_per_evaluation(operator, self.shots_per_term)
        return self.charge(source, iteration, shots)

    def total_for(self, source: str) -> int:
        """Total shots charged by one source."""
        return sum(record.shots for record in self.records if record.source == source)

    def sources(self) -> list[str]:
        """All distinct sources, in first-charge order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.source, None)
        return list(seen)

    def cumulative_totals(self) -> list[int]:
        """Running total after each recorded charge."""
        totals = []
        running = 0
        for record in self.records:
            running += record.shots
            totals.append(running)
        return totals
