"""Generic energy-landscape applications (paper §2.3).

Beyond molecular PES scans the paper motivates phase-diagram scans of spin
models and load-scenario scans of power-grid MaxCut problems.  These helpers
wrap the benchmark suites into a single call that runs TreeVQA (or the
baseline) and returns the landscape — one (scan parameter, energy) pair per
task — plus the shot cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import IndependentVQABaseline, RunResult, TreeVQAConfig, TreeVQAController
from ..hamiltonians.catalog import BenchmarkSuite

__all__ = ["LandscapePoint", "EnergyLandscape", "run_landscape"]


@dataclass(frozen=True)
class LandscapePoint:
    """One solved task of the landscape."""

    scan_parameter: float
    energy: float
    exact_energy: float
    fidelity: float


@dataclass
class EnergyLandscape:
    """The solved application landscape and its cost."""

    name: str
    method: str
    points: list[LandscapePoint]
    total_shots: int
    min_fidelity: float

    def scan_parameters(self) -> np.ndarray:
        return np.array([point.scan_parameter for point in self.points])

    def energies(self) -> np.ndarray:
        return np.array([point.energy for point in self.points])

    def exact_energies(self) -> np.ndarray:
        return np.array([point.exact_energy for point in self.points])


def run_landscape(
    suite: BenchmarkSuite,
    *,
    config: TreeVQAConfig | None = None,
    method: str = "treevqa",
) -> EnergyLandscape:
    """Solve every task of a suite and return the resulting energy landscape."""
    config = config or TreeVQAConfig(max_rounds=150)
    if method == "treevqa":
        result: RunResult = TreeVQAController(suite.tasks, suite.ansatz, config).run()
    elif method == "baseline":
        result = IndependentVQABaseline(suite.tasks, suite.ansatz, config).run()
    else:
        raise ValueError("method must be 'treevqa' or 'baseline'")
    points = []
    for outcome in result.outcomes:
        points.append(
            LandscapePoint(
                scan_parameter=float(outcome.task.scan_parameter or 0.0),
                energy=outcome.energy,
                exact_energy=outcome.task.exact_ground_energy(),
                fidelity=outcome.fidelity,
            )
        )
    points.sort(key=lambda point: point.scan_parameter)
    return EnergyLandscape(
        name=suite.name,
        method=method,
        points=points,
        total_shots=result.total_shots,
        min_fidelity=result.min_fidelity(),
    )
