"""Application-level wrappers: PES scans and generic energy landscapes."""

from .landscape import EnergyLandscape, LandscapePoint, run_landscape
from .pes import PESCurve, PESPoint, build_pes_tasks, run_pes_scan

__all__ = [
    "EnergyLandscape",
    "LandscapePoint",
    "run_landscape",
    "PESCurve",
    "PESPoint",
    "build_pes_tasks",
    "run_pes_scan",
]
