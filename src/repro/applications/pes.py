"""Potential-energy-surface (PES) scan applications (paper §2.3).

A PES scan is the canonical multi-task VQA application: one VQA task per
molecular geometry, whose ground-state energies trace the dissociation curve.
These helpers build task families at a chosen precision (bond-length step
size), run TreeVQA and/or the baseline, and assemble the resulting curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ansatz import HardwareEfficientAnsatz
from ..core import IndependentVQABaseline, RunResult, TreeVQAConfig, TreeVQAController, VQATask
from ..hamiltonians.molecular import MolecularFamily, get_molecule
from ..quantum.exact import ground_state_energy

__all__ = ["PESPoint", "PESCurve", "build_pes_tasks", "run_pes_scan"]


@dataclass(frozen=True)
class PESPoint:
    """One point of the potential energy surface."""

    bond_length: float
    energy: float
    exact_energy: float

    @property
    def error(self) -> float:
        return abs(self.energy - self.exact_energy)


@dataclass
class PESCurve:
    """A computed potential energy surface."""

    molecule: str
    points: list[PESPoint]
    total_shots: int
    method: str

    def equilibrium(self) -> PESPoint:
        """The scan point with the lowest computed energy."""
        return min(self.points, key=lambda point: point.energy)

    def max_error(self) -> float:
        return max(point.error for point in self.points)

    def energies(self) -> np.ndarray:
        return np.array([point.energy for point in self.points])


def build_pes_tasks(
    molecule: str,
    *,
    precision: float = 0.03,
    bond_range: tuple[float, float] | None = None,
) -> tuple[list[VQATask], MolecularFamily]:
    """Tasks for a PES scan at the requested precision (bond-length step, Å).

    Smaller ``precision`` means more tasks over the same range — the Fig. 8
    knob.
    """
    if precision <= 0:
        raise ValueError("precision must be positive")
    spec = get_molecule(molecule)
    family = MolecularFamily(spec)
    low, high = bond_range if bond_range is not None else spec.bond_range
    if high < low:
        raise ValueError("bond_range must be increasing")
    num_points = max(2, int(round((high - low) / precision)) + 1)
    lengths = np.linspace(low, high, num_points)
    bitstring = family.hartree_fock_bitstring()
    tasks = [
        VQATask(
            name=f"{spec.name}@{length:.4f}",
            hamiltonian=family.hamiltonian(float(length)),
            scan_parameter=float(length),
            initial_bitstring=bitstring,
            metadata={"molecule": spec.name, "bond_length": float(length), "precision": precision},
        )
        for length in lengths
    ]
    return tasks, family


def run_pes_scan(
    molecule: str,
    *,
    precision: float = 0.03,
    bond_range: tuple[float, float] | None = None,
    config: TreeVQAConfig | None = None,
    method: str = "treevqa",
    ansatz_layers: int = 2,
) -> PESCurve:
    """Compute a PES with TreeVQA (default) or the independent baseline."""
    tasks, family = build_pes_tasks(molecule, precision=precision, bond_range=bond_range)
    config = config or TreeVQAConfig(max_rounds=150)
    ansatz = HardwareEfficientAnsatz(
        family.num_qubits,
        num_layers=ansatz_layers,
        initial_bitstring=family.hartree_fock_bitstring(),
    )
    if method == "treevqa":
        result: RunResult = TreeVQAController(tasks, ansatz, config).run()
    elif method == "baseline":
        result = IndependentVQABaseline(tasks, ansatz, config).run()
    else:
        raise ValueError("method must be 'treevqa' or 'baseline'")
    points = []
    for outcome in result.outcomes:
        exact = ground_state_energy(outcome.task.hamiltonian)
        points.append(
            PESPoint(
                bond_length=float(outcome.task.scan_parameter or 0.0),
                energy=outcome.energy,
                exact_energy=exact,
            )
        )
    points.sort(key=lambda point: point.bond_length)
    return PESCurve(
        molecule=molecule, points=points, total_shots=result.total_shots, method=method
    )
