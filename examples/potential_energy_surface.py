"""Example: compute a molecular potential energy surface (PES) with TreeVQA.

This mirrors the paper's core chemistry use case (§2.3): one VQE task per
bond length, all sharing the Hartree–Fock reference, solved jointly by
TreeVQA.  The script prints the resulting dissociation curve, the equilibrium
geometry it finds, and the total shot cost, then compares against the exact
curve from dense diagonalisation.

Run with:  python examples/potential_energy_surface.py [molecule]
"""

from __future__ import annotations

import sys

from repro.applications import run_pes_scan
from repro.core import TreeVQAConfig
from repro.evaluation.reporting import format_table


def main(molecule: str = "LiH") -> None:
    config = TreeVQAConfig(
        max_rounds=80,
        warmup_iterations=12,
        window_size=6,
        epsilon_split=1.5e-3,
        optimizer_kwargs={"learning_rate": 0.35, "perturbation": 0.15},
        seed=2,
    )
    curve = run_pes_scan(molecule, precision=0.06, config=config, ansatz_layers=2)

    rows = [
        [point.bond_length, point.energy, point.exact_energy, point.error]
        for point in curve.points
    ]
    print(format_table(
        ["bond length (Å)", "TreeVQA energy", "exact energy", "abs. error"],
        rows,
        title=f"Potential energy surface for {molecule}",
    ))
    equilibrium = curve.equilibrium()
    print(f"\nEquilibrium geometry found at {equilibrium.bond_length:.3f} Å "
          f"(energy {equilibrium.energy:.4f})")
    print(f"Largest absolute error across the scan: {curve.max_error():.4f}")
    print(f"Total shots charged: {curve.total_shots:.3e}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "LiH")
