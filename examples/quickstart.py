"""Quickstart: solve a small family of related VQA tasks with TreeVQA.

Builds five transverse-field Ising tasks (the same spin chain at five field
strengths), runs TreeVQA and the conventional independent baseline from the
same random initial parameters, and prints the shot savings at the highest
fidelity both methods reach.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import IndependentVQABaseline, TreeVQAConfig, TreeVQAController, VQATask
from repro.evaluation.metrics import savings_at_threshold
from repro.hamiltonians import transverse_field_ising_chain


def main() -> None:
    # 1. The application: one task per field strength.
    num_sites = 4
    fields = np.linspace(0.7, 1.3, 5)
    tasks = [
        VQATask(
            name=f"TFIM@h={field:.2f}",
            hamiltonian=transverse_field_ising_chain(num_sites, float(field)),
            scan_parameter=float(field),
        )
        for field in fields
    ]

    # 2. A shared ansatz and a TreeVQA configuration.
    ansatz = HardwareEfficientAnsatz(num_sites, num_layers=1)
    config = TreeVQAConfig(
        max_rounds=120,
        warmup_iterations=15,
        window_size=8,
        epsilon_split=2e-3,
        optimizer_kwargs={"learning_rate": 0.3, "perturbation": 0.15},
        seed=1,
    )
    initial = np.random.default_rng(1).normal(0.0, 0.7, ansatz.num_parameters)

    # 3. TreeVQA: shared execution with adaptive branching.
    treevqa = TreeVQAController(tasks, ansatz, config, initial_parameters=initial).run()
    print("TreeVQA result")
    print(treevqa.summary())
    print("\nExecution tree:")
    print(treevqa.tree.render())

    # 4. The conventional baseline: every task independently.
    baseline = IndependentVQABaseline(tasks, ansatz, config, initial_parameters=initial).run(
        iterations_per_task=config.max_rounds
    )
    print("\nBaseline result")
    print(baseline.summary())

    # 5. The paper's headline metric: shots to reach the same fidelity.
    threshold, savings = savings_at_threshold(treevqa, baseline)
    print(f"\nFidelity target reached by both methods: {threshold:.3f}")
    if savings is not None:
        print(f"Shot savings (baseline / TreeVQA): {savings:.1f}x")
    else:
        print("One of the methods did not reach the common threshold.")


if __name__ == "__main__":
    main()
