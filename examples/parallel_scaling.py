"""Multi-process execution sharding: the same workload at 1, 2 and 4 workers.

Runs one 16-task transverse-field Ising workload through the controller at
``execution_workers`` ∈ {1, 2, 4}, prints the per-round wall time of each
configuration, and asserts that every final task energy is **identical**
across worker counts — parallel dispatch shards work, never numbers (the
bit-identical invariant, see docs/ARCHITECTURE.md).

Speedups need real cores: on a single-CPU machine the extra processes only
add dispatch overhead (the printout says so), which is exactly why
``execution_workers`` defaults to off.

Run with:  PYTHONPATH=src python examples/parallel_scaling.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import TreeVQAConfig, TreeVQAController, VQATask
from repro.hamiltonians import transverse_field_ising_chain
from repro.quantum import default_worker_count

NUM_TASKS = 16
NUM_QUBITS = 6
ROUNDS = 8
WORKER_COUNTS = (1, 2, 4)


def make_tasks() -> list[VQATask]:
    """16 TFIM tasks spread over four initial states.

    Tasks sharing an initial bitstring share a root cluster (§5.1), so four
    distinct bitstrings give the controller four concurrently-optimising
    clusters — a round wide enough for the worker pool to shard.
    """
    fields = np.linspace(0.6, 1.4, NUM_TASKS)
    bitstrings = ["0" * NUM_QUBITS, "000111", "010101", "001100"]
    return [
        VQATask(
            name=f"TFIM@h={field:.3f}",
            hamiltonian=transverse_field_ising_chain(NUM_QUBITS, float(field)),
            scan_parameter=float(field),
            initial_bitstring=bitstrings[index % len(bitstrings)],
        )
        for index, field in enumerate(fields)
    ]


def run_once(tasks, ansatz, workers: int | None):
    config = TreeVQAConfig(
        max_rounds=ROUNDS,
        warmup_iterations=4,
        window_size=4,
        disable_automatic_splits=True,
        seed=2,
        execution_workers=workers,
        # Reply deadline per worker shard: a hung (not merely slow) worker is
        # reaped, respawned, and its shard rerouted within this many seconds
        # instead of stalling the round forever.  Size it far above the
        # slowest expected shard — reaping a healthy-but-busy worker costs a
        # respawn and a retry (results stay bit-identical either way).
        worker_timeout_s=120.0,
    )
    controller = TreeVQAController(tasks, ansatz, config)
    start = time.perf_counter()
    result = controller.run()  # run() releases the worker pool on return
    elapsed = time.perf_counter() - start
    return result, elapsed


def main() -> None:
    tasks = make_tasks()
    ansatz = HardwareEfficientAnsatz(NUM_QUBITS, num_layers=2)
    print(
        f"Workload: {NUM_TASKS} tasks x {NUM_QUBITS} qubits, {ROUNDS} rounds "
        f"(machine has {default_worker_count()} available CPU core(s))\n"
    )

    losses: dict[int, dict[str, float]] = {}
    for workers in WORKER_COUNTS:
        result, elapsed = run_once(tasks, ansatz, workers)
        losses[workers] = {
            outcome.task.name: outcome.energy for outcome in result.outcomes
        }
        stats = result.metadata["program_cache"].get("workers", {})
        print(
            f"execution_workers={workers}: {1e3 * elapsed / ROUNDS:7.1f} ms/round "
            f"({elapsed:6.2f} s total; {stats.get('shards_dispatched', 0)} shards, "
            f"{stats.get('programs_shipped', 0)} program pickles, "
            f"{stats.get('program_reuses', 0)} warm-cache reuses)"
        )

    # The headline invariant: worker count shards the work, not the numbers.
    reference = losses[WORKER_COUNTS[0]]
    for workers in WORKER_COUNTS[1:]:
        assert losses[workers] == reference, (
            f"final losses at execution_workers={workers} differ from "
            f"execution_workers={WORKER_COUNTS[0]} — the bit-identical "
            "invariant is broken"
        )
    print(
        f"\nFinal losses identical across execution_workers={WORKER_COUNTS}: "
        "parallel dispatch is bit-identical to sequential execution."
    )
    if default_worker_count() < 2:
        print(
            "(Single-CPU machine: expect no speedup — more workers just add "
            "inter-process dispatch overhead here.)"
        )


if __name__ == "__main__":
    main()
