"""Example: scanning a spin chain across its phase transition with TreeVQA.

Condensed-matter use case from §2.3: the transverse-field Ising chain is
solved at many field strengths spanning its quantum critical point (h = J).
TreeVQA starts all tasks in one cluster and branches as the ordered- and
disordered-phase tasks diverge; the example prints the energy landscape, the
execution tree, and where the splits happened relative to the critical point.

Run with:  python examples/spin_chain_phase_scan.py
"""

from __future__ import annotations

import numpy as np

from repro.applications import run_landscape
from repro.core import TreeVQAConfig, TreeVQAController
from repro.evaluation.reporting import format_table
from repro.hamiltonians import tfim_suite


def main() -> None:
    fields = list(np.linspace(0.6, 1.4, 7))
    suite = tfim_suite(num_sites=5, fields=fields, num_ansatz_layers=2)
    config = TreeVQAConfig(
        max_rounds=100,
        warmup_iterations=15,
        window_size=8,
        epsilon_split=2e-3,
        optimizer_kwargs={"learning_rate": 0.3, "perturbation": 0.15},
        seed=3,
    )

    # Full landscape via the application wrapper.
    landscape = run_landscape(suite, config=config)
    rows = [
        [point.scan_parameter, point.energy, point.exact_energy, point.fidelity]
        for point in landscape.points
    ]
    print(format_table(
        ["field h", "TreeVQA energy", "exact energy", "fidelity"],
        rows,
        title=f"Transverse-field Ising landscape ({suite.num_qubits} sites)",
    ))
    print(f"\nTotal shots: {landscape.total_shots:.3e}; "
          f"minimum task fidelity: {landscape.min_fidelity:.3f}")

    # Re-run through the controller directly to inspect the tree structure.
    controller = TreeVQAController(suite.tasks, suite.ansatz, config)
    result = controller.run()
    print("\nExecution tree (tasks near the critical point h=1 stay together longest):")
    print(result.tree.render())


if __name__ == "__main__":
    main()
