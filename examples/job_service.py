"""Job service: four concurrent TreeVQA runs on one shared worker pool.

Submits four task families — three different TFIM scans plus one run on the
finite-shot sampling estimator — to a single :class:`TreeVQAService`, streams
every job's rounds as they interleave (fair-share round-robin on the shared
two-worker pool), and then verifies the service's core contract: each job's
trajectory is bit-identical to running that job alone.

Run with:  python examples/job_service.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import TreeVQAConfig, TreeVQAController, VQATask
from repro.hamiltonians import transverse_field_ising_chain
from repro.service import TreeVQAService

NUM_SITES = 4
ROUNDS = 8


def make_tasks(label: str, low: float, high: float) -> list[VQATask]:
    return [
        VQATask(
            name=f"{label}@h={field:.2f}",
            hamiltonian=transverse_field_ising_chain(NUM_SITES, float(field)),
            scan_parameter=float(field),
        )
        for field in np.linspace(low, high, 3)
    ]


def make_config(seed: int, estimator: str = "exact") -> TreeVQAConfig:
    extra = {"shots_per_pauli_term": 256} if estimator == "sampling" else {}
    return TreeVQAConfig(
        max_rounds=ROUNDS,
        warmup_iterations=3,
        window_size=4,
        epsilon_split=2e-3,
        optimizer_kwargs={"learning_rate": 0.3, "perturbation": 0.15},
        seed=seed,
        estimator=estimator,
        **extra,
    )


#: (job id, task family, config) for the four tenants.
JOB_SPECS = [
    ("ordered", make_tasks("ordered", 0.55, 0.75), make_config(seed=11)),
    ("critical", make_tasks("critical", 0.90, 1.10), make_config(seed=22)),
    ("disordered", make_tasks("disordered", 1.25, 1.45), make_config(seed=33)),
    ("sampled", make_tasks("sampled", 0.80, 1.20), make_config(seed=44, estimator="sampling")),
]


def trajectory_of(result) -> dict[str, tuple[float, ...]]:
    return {name: tuple(t.energies) for name, t in result.trajectories.items()}


async def stream(job) -> None:
    """Print one line per completed round as the jobs interleave."""
    async for update in job.updates:
        best = min(update.individual_losses.values())
        print(
            f"  [{update.job_id:>10}] round {update.round_index}/{ROUNDS}  "
            f"clusters={update.num_active_clusters}  best E={best:+.4f}  "
            f"shots={update.total_shots:,}"
        )


async def main() -> None:
    ansatz = HardwareEfficientAnsatz(NUM_SITES, num_layers=1)

    print(f"Submitting {len(JOB_SPECS)} jobs to one shared 2-worker pool...\n")
    async with TreeVQAService(workers=2) as service:
        jobs = [
            await service.submit(tasks, ansatz, config, job_id=job_id)
            for job_id, tasks, config in JOB_SPECS
        ]
        results = (
            await asyncio.gather(
                *(job.result() for job in jobs), *(stream(job) for job in jobs)
            )
        )[: len(jobs)]

        stats = service.stats()
        print(f"\nService totals: {stats['total_shots']:,} shots across "
              f"{len(jobs)} jobs; shared pool stats: {stats['backend_pool']}")

    # The contract: concurrency changed nothing.  Re-run each job alone and
    # compare trajectories bit-for-bit.
    print("\nVerifying bit-identity against solo runs...")
    for (job_id, tasks, config), result in zip(JOB_SPECS, results):
        solo = TreeVQAController(tasks, ansatz, config).run()
        identical = trajectory_of(solo) == trajectory_of(result)
        print(f"  {job_id:>10}: {'bit-identical' if identical else 'DIVERGED'}")
        assert identical, f"job {job_id} diverged from its solo run"


if __name__ == "__main__":
    asyncio.run(main())
