"""Example: power-grid MaxCut scenarios on the IEEE 14-bus system with QAOA.

The paper's combinatorial benchmark (§8.8): a family of weighted MaxCut
instances derived from the IEEE 14-bus network under different load
conditions, solved jointly with multi-angle QAOA, Red-QAOA-style
initialisation shared across the (isomorphic) instances, and TreeVQA's
tree-structured execution.

Run with:  python examples/smart_grid_maxcut.py
"""

from __future__ import annotations

from repro.core import IndependentVQABaseline, TreeVQAConfig, TreeVQAController
from repro.evaluation.metrics import savings_at_threshold
from repro.evaluation.reporting import format_table
from repro.hamiltonians import max_cut_brute_force, maxcut_ieee14_suite
from repro.initialization import red_qaoa_initialization


def main() -> None:
    # Ten load-scaled graph instances in the "typical operational variations" range.
    suite = maxcut_ieee14_suite("0.8:1.2", num_instances=5, qaoa_layers=1)
    print(f"Suite: {suite.name} — {suite.num_tasks} MaxCut instances on "
          f"{suite.num_qubits} buses, edge-weight variance "
          f"{suite.metadata['edge_weight_variance']:.1f}")

    # Shared Red-QAOA-style initialisation (all instances are isomorphic).
    reference_graph = suite.tasks[0].metadata["graph"]
    initialization = red_qaoa_initialization(reference_graph, num_layers=1)
    initial_parameters = initialization.broadcast(suite.ansatz)

    config = TreeVQAConfig(
        max_rounds=60,
        warmup_iterations=10,
        window_size=6,
        optimizer_kwargs={"learning_rate": 0.3, "perturbation": 0.15},
        seed=4,
    )
    treevqa = TreeVQAController(
        suite.tasks, suite.ansatz, config, initial_parameters=initial_parameters
    ).run()
    baseline = IndependentVQABaseline(
        suite.tasks, suite.ansatz, config, initial_parameters=initial_parameters
    ).run(iterations_per_task=config.max_rounds)

    rows = []
    for outcome in treevqa.outcomes:
        graph = outcome.task.metadata["graph"]
        best_cut, _bits = max_cut_brute_force(graph)
        # The minimisation Hamiltonian's value is the negative of the cut weight.
        rows.append([outcome.task_name, -outcome.energy, best_cut, outcome.fidelity])
    print(format_table(
        ["instance", "TreeVQA cut value", "optimal cut", "fidelity"],
        rows,
        title="MaxCut quality per load instance",
    ))

    threshold, savings = savings_at_threshold(treevqa, baseline)
    print(f"\nShots — TreeVQA: {treevqa.total_shots:.3e}, baseline: {baseline.total_shots:.3e}")
    print(f"Fidelity target reached by both: {threshold:.3f}")
    if savings is not None:
        print(f"Shot savings at that target: {savings:.1f}x")


if __name__ == "__main__":
    main()
