"""Micro-benchmark: batched measurement sampling vs. per-request estimation.

Tracks the speedup of the sampling estimator's batched path — states stacked
into one ``(B, 2**n)`` array, one compiled measurement plan evaluated over
the whole batch with vectorized inverse-CDF draws — over the per-request
``estimate()`` path that simulates and samples one circuit at a time.  The
workload is the reference shape from the round-throughput benchmark: an
8-qubit, 16-task application (16 singleton clusters, so every round asks
32 SPSA evaluations).

The per-request reference is the scheduler's own fallback (an estimator that
does not advertise ``consumes_states``), and the RNG derivation rule keys
each request's draws to its consumption ordinal — so both modes produce
bit-identical step records, asserted below: the speedup is measured on
provably identical work.

Results are appended to ``BENCH_sampling.json`` at the repo root so CI can
upload them as a machine-readable artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import RoundScheduler, TreeVQAConfig, VQACluster, VQATask
from repro.hamiltonians import transverse_field_ising_chain
from repro.quantum import StatevectorBackend
from repro.quantum.sampling import SamplingEstimator

_RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_sampling.json"

NUM_QUBITS = 8
NUM_TASKS = 16
NUM_LAYERS = 3
ROUNDS = 4
SHOTS_PER_TERM = 512
MIN_SPEEDUP = 3.0


def _record(key: str, payload: dict) -> None:
    """Merge one benchmark's numbers into the shared JSON artifact."""
    existing = {}
    if _RESULTS_PATH.exists():
        existing = json.loads(_RESULTS_PATH.read_text())
    existing[key] = payload
    _RESULTS_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


class PerRequestSampling(SamplingEstimator):
    """Identical physics and RNG derivation, minus the batched capability:
    the scheduler routes it through per-request ``estimate()``."""

    consumes_states = False


def _make_tasks() -> list[VQATask]:
    fields = np.linspace(0.6, 1.4, NUM_TASKS)
    return [
        VQATask(
            name=f"tfim@{field:.3f}",
            hamiltonian=transverse_field_ising_chain(NUM_QUBITS, float(field)),
            scan_parameter=float(field),
        )
        for field in fields
    ]


def _make_clusters(tasks: list[VQATask], ansatz, estimator) -> list[VQACluster]:
    config = TreeVQAConfig(
        max_rounds=ROUNDS, warmup_iterations=0, window_size=2,
        shots_per_pauli_term=SHOTS_PER_TERM,
        disable_automatic_splits=True, seed=0,
    )
    return [
        VQACluster(
            cluster_id=f"bench-{index}",
            tasks=[task],
            ansatz=ansatz,
            optimizer=config.make_optimizer(),
            estimator=estimator,
            config=config,
            initial_parameters=ansatz.zero_parameters(),
        )
        for index, task in enumerate(tasks)
    ]


def _run_rounds(scheduler: RoundScheduler, clusters: list[VQACluster]):
    records = []
    for _ in range(ROUNDS):
        records.extend(record for _, record in scheduler.run_round(clusters))
    return records


def test_batched_sampling_at_least_3x_per_request():
    tasks = _make_tasks()
    ansatz = HardwareEfficientAnsatz(NUM_QUBITS, num_layers=NUM_LAYERS)

    # Warm-up: compile every task's measurement plan and circuit program
    # (both cached process-wide, shared by the timed runs below).
    warm_estimator = SamplingEstimator(shots_per_term=SHOTS_PER_TERM, seed=0)
    warm = _make_clusters(tasks, ansatz, warm_estimator)
    RoundScheduler(StatevectorBackend(), warm_estimator).run_round(warm)

    sequential_estimator = PerRequestSampling(
        shots_per_term=SHOTS_PER_TERM, seed=0
    )
    sequential = RoundScheduler(StatevectorBackend(), sequential_estimator)
    sequential_clusters = _make_clusters(tasks, ansatz, sequential_estimator)
    start = time.perf_counter()
    sequential_records = _run_rounds(sequential, sequential_clusters)
    sequential_seconds = time.perf_counter() - start

    batched_estimator = SamplingEstimator(shots_per_term=SHOTS_PER_TERM, seed=0)
    batched = RoundScheduler(StatevectorBackend(), batched_estimator)
    batched_clusters = _make_clusters(tasks, ansatz, batched_estimator)
    start = time.perf_counter()
    batched_records = _run_rounds(batched, batched_clusters)
    batched_seconds = time.perf_counter() - start

    # Same seed, same consumption ordinals: the timed runs drew identical
    # samples, so the speedup is measured on bit-identical work.
    assert len(batched_records) == len(sequential_records) == ROUNDS * NUM_TASKS
    for left, right in zip(batched_records, sequential_records):
        assert left.mixed_loss == right.mixed_loss
        assert left.shots == right.shots
        np.testing.assert_array_equal(left.parameters, right.parameters)
    assert (
        batched_estimator.total_shots == sequential_estimator.total_shots
    )
    assert batched.batches_executed > 0
    assert sequential.batches_executed == 0  # the fallback path never batches

    speedup = sequential_seconds / batched_seconds
    per_round_sequential = 1e3 * sequential_seconds / ROUNDS
    per_round_batched = 1e3 * batched_seconds / ROUNDS
    print(
        f"\nsampling throughput ({NUM_TASKS} tasks x {NUM_QUBITS} qubits, "
        f"{SHOTS_PER_TERM} shots/term, {ROUNDS} rounds): "
        f"per-request {per_round_sequential:.1f} ms/round, "
        f"batched {per_round_batched:.1f} ms/round, speedup {speedup:.1f}x"
    )
    _record(
        "sampling_rounds_8q16t",
        {
            "num_qubits": NUM_QUBITS,
            "num_tasks": NUM_TASKS,
            "rounds": ROUNDS,
            "shots_per_term": SHOTS_PER_TERM,
            "per_request_seconds_per_round": sequential_seconds / ROUNDS,
            "batched_seconds_per_round": batched_seconds / ROUNDS,
            "speedup": speedup,
            "floor": MIN_SPEEDUP,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched sampling only {speedup:.2f}x faster than per-request "
        f"(expected >= {MIN_SPEEDUP}x)"
    )
