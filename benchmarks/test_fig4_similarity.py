"""Benchmark: regenerate Fig. 4 (task-similarity motivation heatmaps)."""

from __future__ import annotations

import pytest

#: Experiment-figure regeneration dominates the tier-1 wall-clock; the
#: default CI job skips these (-m "not slow") and a scheduled full-suite
#: job runs everything.
pytestmark = pytest.mark.slow

import numpy as np

from repro.evaluation.experiments import format_figure4, run_figure4


def test_fig4_similarity(benchmark):
    result = benchmark.pedantic(
        run_figure4, kwargs={"bond_lengths": (1.4, 1.5, 1.6, 1.8, 2.0, 2.2, 2.4)},
        rounds=1, iterations=1,
    )
    print()
    print(format_figure4(result))
    overlap = result.overlap_matrix
    similarity = result.hamiltonian_similarity
    # Neighbouring bond lengths overlap more than distant ones (Fig. 4b shape).
    assert overlap[0, 1] > overlap[0, -1]
    assert similarity[0, 1] > similarity[0, -1]
    # The coefficient-space metric tracks the ground-state overlap structure (Fig. 4c claim).
    assert result.correlation() > 0.3
    np.testing.assert_allclose(np.diag(overlap), 1.0)
