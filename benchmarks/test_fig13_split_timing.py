"""Benchmark: regenerate Fig. 13 (impact of split timing)."""

from __future__ import annotations

import pytest

#: Experiment-figure regeneration dominates the tier-1 wall-clock; the
#: default CI job skips these (-m "not slow") and a scheduled full-suite
#: job runs everything.
pytestmark = pytest.mark.slow

from repro.evaluation.experiments import format_figure13, run_figure13

BENCHMARKS = ("H2", "TFIM")
SPLIT_POINTS = (25, 50, 75)


def test_fig13_split_timing(benchmark, preset):
    result = benchmark.pedantic(
        run_figure13,
        kwargs={
            "preset": preset,
            "benchmarks": BENCHMARKS,
            "split_percentages": SPLIT_POINTS,
            "seed": 7,
        },
        rounds=1, iterations=1,
    )
    print()
    print(format_figure13(result))
    assert len(result.points) == len(BENCHMARKS) * len(SPLIT_POINTS)
    for name in BENCHMARKS:
        points = result.for_benchmark(name)
        assert len(points) == len(SPLIT_POINTS)
        assert all(point.mean_error_percent >= 0 for point in points)
        # The sweep produces a best split point — the figure's takeaway is that
        # the timing matters (errors differ across split points).
        errors = [point.mean_error_percent for point in points]
        assert max(errors) >= min(errors)
        assert result.best_split_percent(name) in [float(p) for p in SPLIT_POINTS]
