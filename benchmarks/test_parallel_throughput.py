"""Micro-benchmark: multi-process execution sharding vs. single-process rounds.

Tracks the round throughput of dispatching a controller round through a
:class:`~repro.quantum.parallel.ParallelBackend` worker pool against the
identical single-process path.  The workload is the reference round shape
(16 singleton clusters so every round asks 32 SPSA evaluations) at a width
heavy enough for per-request compute to dominate the inter-process payload.

Parallel and single-process execution are bit-identical, so the timed runs
are asserted to produce identical step records — the speedup is measured on
provably identical work.  The ≥1.5x throughput assertion only applies on a
multi-core runner: on constrained single-core machines (like some CI boxes)
extra worker processes cannot beat one core, so the benchmark reports the
measured ratio informationally and still enforces the parity contract.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import RoundScheduler, TreeVQAConfig, VQACluster, VQATask
from repro.hamiltonians import transverse_field_ising_chain
from repro.quantum import ParallelBackend, StatevectorBackend, default_worker_count
from repro.quantum.sampling import ExactEstimator

NUM_QUBITS = 10
NUM_TASKS = 16
NUM_LAYERS = 3
ROUNDS = 4
MIN_SPEEDUP = 1.5
WORKERS = min(4, default_worker_count())


def _make_clusters(estimator):
    fields = np.linspace(0.6, 1.4, NUM_TASKS)
    ansatz = HardwareEfficientAnsatz(NUM_QUBITS, num_layers=NUM_LAYERS)
    config = TreeVQAConfig(
        max_rounds=ROUNDS, warmup_iterations=0, window_size=2,
        disable_automatic_splits=True, seed=0,
    )
    return [
        VQACluster(
            cluster_id=f"bench-{index}",
            tasks=[
                VQATask(
                    name=f"tfim@{field:.3f}",
                    hamiltonian=transverse_field_ising_chain(NUM_QUBITS, float(field)),
                    scan_parameter=float(field),
                )
            ],
            ansatz=ansatz,
            optimizer=config.make_optimizer(),
            estimator=estimator,
            config=config,
            initial_parameters=ansatz.zero_parameters(),
        )
        for index, field in enumerate(fields)
    ]


def _run_rounds(scheduler, clusters):
    records = []
    for _ in range(ROUNDS):
        records.extend(record for _, record in scheduler.run_round(clusters))
    return records


@pytest.mark.timeout(600)
def test_parallel_rounds_throughput():
    estimator = ExactEstimator(seed=0)

    # Warm-up: compile programs/engines shared by both timed runs.
    RoundScheduler(StatevectorBackend(), estimator).run_round(_make_clusters(estimator))

    single = RoundScheduler(StatevectorBackend(), estimator)
    single_clusters = _make_clusters(estimator)
    start = time.perf_counter()
    single_records = _run_rounds(single, single_clusters)
    single_seconds = time.perf_counter() - start

    with RoundScheduler(
        ParallelBackend(StatevectorBackend, workers=WORKERS), estimator
    ) as parallel:
        parallel_clusters = _make_clusters(estimator)
        # Spawn the pool and ship the program outside the timed window (the
        # single-process run got the same warm-up treatment above).
        parallel.run_round(_make_clusters(estimator))
        start = time.perf_counter()
        parallel_records = _run_rounds(parallel, parallel_clusters)
        parallel_seconds = time.perf_counter() - start

    # Bit-identical work: sharding may never change the records.
    assert len(parallel_records) == len(single_records) == ROUNDS * NUM_TASKS
    for ours, reference in zip(parallel_records, single_records):
        assert ours.mixed_loss == reference.mixed_loss
        np.testing.assert_array_equal(ours.parameters, reference.parameters)

    speedup = single_seconds / parallel_seconds
    cores = default_worker_count()
    print(
        f"\nparallel round throughput ({NUM_TASKS} tasks x {NUM_QUBITS} qubits, "
        f"{ROUNDS} rounds, {WORKERS} workers on {cores} core(s)): "
        f"single-process {1e3 * single_seconds / ROUNDS:.1f} ms/round, "
        f"parallel {1e3 * parallel_seconds / ROUNDS:.1f} ms/round, "
        f"speedup {speedup:.2f}x"
    )
    if cores >= 2 and WORKERS >= 2:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel rounds only {speedup:.2f}x faster than single-process "
            f"on a {cores}-core runner (expected >= {MIN_SPEEDUP}x)"
        )
    else:
        print(
            f"(constrained runner: {cores} core(s) — ≥{MIN_SPEEDUP}x assertion "
            "skipped, parity still enforced)"
        )
