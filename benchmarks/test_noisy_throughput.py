"""Micro-benchmark: batched noisy rounds vs. the per-request density path.

Tracks the speedup of executing noisy controller rounds through the
density-matrix backend (whole request batches evolving as stacked
``U ρ U†`` arrays with batch-wide superoperator channels) over the
per-request path the density-matrix estimator used before (one sequential
simulator run per objective evaluation).  The workload follows the Table 2
shape: a family of tasks under a synthetic IBM-backend noise profile.

Batched noisy execution is bit-identical to the per-request path, so the two
timed runs are asserted to produce identical step records — the speedup is
measured on provably identical work.  The full-size variant is ``slow``
(like the other experiment regenerations); a shrunken smoke variant keeps
the fast CI tier covering the batched noisy path end to end.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import RoundScheduler, TreeVQAConfig, VQACluster, VQATask
from repro.hamiltonians import transverse_field_ising_chain
from repro.quantum import DensityMatrixBackend, DensityMatrixEstimator, StatevectorBackend
from repro.quantum.noise import get_backend_profile

#: Table 2-style workload: ≥8 tasks at a density-matrix-tractable width
#: (the Table 2 presets run 4- and 6-qubit LiH analogues).
NUM_QUBITS = 5
NUM_TASKS = 8
NUM_LAYERS = 2
ROUNDS = 3
MIN_SPEEDUP = 2.0

NOISE = get_backend_profile("hanoi").to_noise_model()


def _make_clusters(num_tasks, num_qubits, num_layers, estimator):
    fields = np.linspace(0.6, 1.4, num_tasks)
    ansatz = HardwareEfficientAnsatz(num_qubits, num_layers=num_layers)
    config = TreeVQAConfig(
        max_rounds=ROUNDS, warmup_iterations=0, window_size=2,
        disable_automatic_splits=True, seed=0,
    )
    return [
        VQACluster(
            cluster_id=f"bench-{index}",
            tasks=[
                VQATask(
                    name=f"tfim@{field:.3f}",
                    hamiltonian=transverse_field_ising_chain(num_qubits, float(field)),
                    scan_parameter=float(field),
                )
            ],
            ansatz=ansatz,
            optimizer=config.make_optimizer(),
            estimator=estimator,
            config=config,
            initial_parameters=ansatz.zero_parameters(),
        )
        for index, field in enumerate(fields)
    ]


def _run_rounds(scheduler, clusters, rounds):
    records = []
    for _ in range(rounds):
        records.extend(record for _, record in scheduler.run_round(clusters))
    return records


def _compare_modes(num_tasks, num_qubits, num_layers, rounds):
    """Run the workload batched and per-request; return records + timings."""
    # Warm-up: compile programs and expectation engines (both caches are
    # shared by the timed runs) and warm the NumPy dispatch paths.
    warm_estimator = DensityMatrixEstimator(NOISE, seed=0)
    _run_rounds(
        RoundScheduler(DensityMatrixBackend(NOISE), warm_estimator),
        _make_clusters(num_tasks, num_qubits, num_layers, warm_estimator),
        1,
    )

    # Per-request baseline: a statevector backend cannot satisfy the noisy
    # estimator's requires_backend, so the scheduler drives every request
    # through sequential estimate() — exactly the pre-batching noisy path.
    per_request_estimator = DensityMatrixEstimator(NOISE, seed=0)
    per_request = RoundScheduler(StatevectorBackend(), per_request_estimator)
    per_request_clusters = _make_clusters(
        num_tasks, num_qubits, num_layers, per_request_estimator
    )
    start = time.perf_counter()
    per_request_records = _run_rounds(per_request, per_request_clusters, rounds)
    per_request_seconds = time.perf_counter() - start
    assert per_request.batches_executed == 0  # really the per-request path

    batched_estimator = DensityMatrixEstimator(NOISE, seed=0)
    batched = RoundScheduler(DensityMatrixBackend(NOISE), batched_estimator)
    batched_clusters = _make_clusters(num_tasks, num_qubits, num_layers, batched_estimator)
    start = time.perf_counter()
    batched_records = _run_rounds(batched, batched_clusters, rounds)
    batched_seconds = time.perf_counter() - start
    assert batched.batches_executed > 0

    # Same seeds, bit-identical noisy execution: identical work was timed.
    assert len(batched_records) == len(per_request_records) == rounds * num_tasks
    for left, right in zip(batched_records, per_request_records):
        assert left.mixed_loss == right.mixed_loss
        np.testing.assert_array_equal(left.parameters, right.parameters)
    return per_request_seconds, batched_seconds


@pytest.mark.slow
def test_batched_noisy_rounds_at_least_2x_per_request():
    per_request_seconds, batched_seconds = _compare_modes(
        NUM_TASKS, NUM_QUBITS, NUM_LAYERS, ROUNDS
    )
    speedup = per_request_seconds / batched_seconds
    print(
        f"\nnoisy round throughput ({NUM_TASKS} tasks x {NUM_QUBITS} qubits, "
        f"{ROUNDS} rounds, {NOISE.name} noise): per-request "
        f"{1e3 * per_request_seconds / ROUNDS:.1f} ms/round, batched "
        f"{1e3 * batched_seconds / ROUNDS:.1f} ms/round, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched noisy rounds only {speedup:.2f}x faster than per-request "
        f"(expected >= {MIN_SPEEDUP}x)"
    )


@pytest.mark.timeout(120)
def test_batched_noisy_rounds_smoke():
    """Fast-tier variant: shrunken workload, parity asserted, no timing bar."""
    per_request_seconds, batched_seconds = _compare_modes(4, 3, 1, 2)
    assert per_request_seconds > 0 and batched_seconds > 0
