"""Benchmark: regenerate Fig. 11 (untuned TreeVQA with the COBYLA optimizer)."""

from __future__ import annotations

import pytest

#: Experiment-figure regeneration dominates the tier-1 wall-clock; the
#: default CI job skips these (-m "not slow") and a scheduled full-suite
#: job runs everything.
pytestmark = pytest.mark.slow

from repro.evaluation.experiments import format_figure11, run_figure11

PANELS = ("LiH", "TFIM")


def test_fig11_cobyla(benchmark, preset):
    result = benchmark.pedantic(
        run_figure11, kwargs={"preset": preset, "benchmarks": PANELS, "seed": 7},
        rounds=1, iterations=1,
    )
    print()
    print(format_figure11(result))
    assert len(result.bars) == len(PANELS)
    savings = [bar.savings_ratio for bar in result.bars if bar.savings_ratio is not None]
    assert savings, "COBYLA comparison must produce at least one savings ratio"
    # Plug-and-play claim: TreeVQA still saves shots with an untuned alternate optimizer.
    assert max(savings) > 1.0
