"""Macro-benchmark: the job service's shared pool vs. back-to-back runs.

Measures what :class:`~repro.service.TreeVQAService` exists for: N jobs
multiplexed onto **one** shared two-worker pool amortize the per-job
execution setup — worker-process spawn (a fresh interpreter importing numpy
and the repro stack under the ``spawn`` start method), program shipping, and
worker-side compile caches — that back-to-back runs pay N times over.  Both
legs run the *same* four jobs on identical two-worker pools under the same
start method; only the pool lifetime differs (one shared pool vs. one fresh
pool per job), so the measured ratio is pure amortization, not a different
amount of physics.

The legs must also be provably the same work: every job's outcome is
asserted bit-identical between the service leg and the back-to-back leg
(the shared-tenancy bit-identity contract, measured here on 4 jobs).

Results are appended to ``BENCH_service.json`` at the repo root so CI can
upload them as a machine-readable artifact.
"""

from __future__ import annotations

import asyncio
import json
import time
from functools import partial
from pathlib import Path

import numpy as np

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import TreeVQAConfig, TreeVQAController, VQATask
from repro.hamiltonians import transverse_field_ising_chain
from repro.quantum.backend import make_execution_backend
from repro.quantum.parallel import ParallelBackend
from repro.service import TreeVQAService

_RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

NUM_QUBITS = 8
NUM_TASKS = 4
NUM_LAYERS = 2
ROUNDS = 3
NUM_JOBS = 4
WORKERS = 2
#: Worker processes are spawned (not forked) so each pays the honest
#: fresh-interpreter import cost the service amortizes across jobs.
START_METHOD = "spawn"
MIN_SPEEDUP = 1.5


def _record(key: str, payload: dict) -> None:
    """Merge one benchmark's numbers into the shared JSON artifact."""
    existing = {}
    if _RESULTS_PATH.exists():
        existing = json.loads(_RESULTS_PATH.read_text())
    existing[key] = payload
    _RESULTS_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def _make_tasks() -> list[VQATask]:
    fields = np.linspace(0.7, 1.3, NUM_TASKS)
    return [
        VQATask(
            name=f"tfim@{field:.3f}",
            hamiltonian=transverse_field_ising_chain(NUM_QUBITS, float(field)),
            scan_parameter=float(field),
        )
        for field in fields
    ]


def _make_config(seed: int) -> TreeVQAConfig:
    return TreeVQAConfig(
        max_rounds=ROUNDS,
        warmup_iterations=2,
        window_size=2,
        epsilon_split=1e-3,
        optimizer_kwargs={"learning_rate": 0.3, "perturbation": 0.15},
        seed=seed,
    )


def _fingerprint(result) -> dict:
    return {
        outcome.task.name: (
            outcome.energy,
            outcome.source,
            tuple(result.trajectories[outcome.task.name].energies),
        )
        for outcome in result.outcomes
    }


def _run_back_to_back(ansatz, seeds):
    """Each job sequentially, each on its own fresh two-worker pool."""
    fingerprints = []
    start = time.perf_counter()
    for seed in seeds:
        backend = ParallelBackend(
            partial(make_execution_backend, "statevector"),
            workers=WORKERS,
            start_method=START_METHOD,
        )
        try:
            controller = TreeVQAController(
                _make_tasks(), ansatz, _make_config(seed), backend=backend
            )
            fingerprints.append(_fingerprint(controller.run()))
        finally:
            backend.close()
    return time.perf_counter() - start, fingerprints


def _run_service(ansatz, seeds):
    """The same jobs concurrently, multiplexed onto one shared pool."""

    async def scenario():
        async with TreeVQAService(
            workers=WORKERS, start_method=START_METHOD
        ) as service:
            jobs = [
                await service.submit(_make_tasks(), ansatz, _make_config(seed))
                for seed in seeds
            ]
            results = await asyncio.gather(*(job.result() for job in jobs))
        return [_fingerprint(result) for result in results]

    start = time.perf_counter()
    fingerprints = asyncio.run(scenario())
    return time.perf_counter() - start, fingerprints


def test_shared_pool_service_at_least_1_5x_back_to_back():
    ansatz = HardwareEfficientAnsatz(NUM_QUBITS, num_layers=NUM_LAYERS)
    seeds = list(range(3, 3 + NUM_JOBS))

    # Warm the parent-process program cache so both legs start from the same
    # compiled state and the measured difference is pool lifetime only.
    TreeVQAController(_make_tasks(), ansatz, _make_config(seeds[0])).run()

    sequential_seconds, sequential_fps = _run_back_to_back(ansatz, seeds)
    service_seconds, service_fps = _run_service(ansatz, seeds)

    # Identical work: every job bit-identical across the two legs.
    assert service_fps == sequential_fps

    speedup = sequential_seconds / service_seconds
    print(
        f"\nservice throughput ({NUM_JOBS} jobs x {NUM_TASKS} tasks x "
        f"{NUM_QUBITS} qubits, {ROUNDS} rounds, {WORKERS}-worker pool, "
        f"{START_METHOD}): back-to-back {sequential_seconds:.2f} s, "
        f"service {service_seconds:.2f} s, speedup {speedup:.1f}x"
    )
    _record(
        "service_shared_pool_4jobs",
        {
            "num_jobs": NUM_JOBS,
            "num_tasks": NUM_TASKS,
            "num_qubits": NUM_QUBITS,
            "rounds": ROUNDS,
            "workers": WORKERS,
            "start_method": START_METHOD,
            "back_to_back_seconds": sequential_seconds,
            "service_seconds": service_seconds,
            "speedup": speedup,
            "floor": MIN_SPEEDUP,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"shared-pool service only {speedup:.2f}x faster than back-to-back "
        f"(expected >= {MIN_SPEEDUP}x)"
    )
