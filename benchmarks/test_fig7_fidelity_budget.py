"""Benchmark: regenerate Fig. 7 (fidelity gain at a fixed shot budget)."""

from __future__ import annotations

import pytest

#: Experiment-figure regeneration dominates the tier-1 wall-clock; the
#: default CI job skips these (-m "not slow") and a scheduled full-suite
#: job runs everything.
pytestmark = pytest.mark.slow

import numpy as np

from repro.evaluation.experiments import format_figure7, run_figure7

PANELS = ("LiH", "TFIM")


def test_fig7_fidelity_budget(benchmark, preset):
    result = benchmark.pedantic(
        run_figure7, kwargs={"preset": preset, "benchmarks": PANELS, "seed": 7},
        rounds=1, iterations=1,
    )
    print()
    print(format_figure7(result))
    assert len(result.panels) == len(PANELS)
    for panel in result.panels:
        # TreeVQA achieves at least the baseline's fidelity on average across budgets.
        assert panel.advantage() > -0.02
        # Fidelity is non-decreasing in the budget for both methods.
        assert np.all(np.diff(panel.treevqa_fidelities) >= -1e-9)
        assert np.all(np.diff(panel.baseline_fidelities) >= -1e-9)
    # At least one panel shows a clear TreeVQA advantage under a fixed budget.
    assert max(panel.advantage() for panel in result.panels) > 0.0
