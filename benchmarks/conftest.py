"""Shared configuration for the benchmark harness.

Every benchmark regenerates one paper table or figure with the experiment
runners from :mod:`repro.evaluation.experiments`, prints the same rows/series
the paper reports, and asserts the qualitative shape (who wins, roughly by how
much).  Runs use reduced "bench" presets so the whole harness finishes on a
laptop; pass ``--preset=fast`` or ``--preset=full`` for larger runs.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import Preset

#: Benchmark-sized preset: small enough that the full harness runs in minutes.
BENCH_PRESET = Preset(
    name="fast",  # reuses the "fast" code paths (scaled suites, inferred bars)
    num_tasks=4,
    max_rounds=70,
    baseline_iterations=70,
    chemistry_qubits_cap=8,
    spin_sites=4,
    warmup_iterations=10,
    window_size=6,
)


def pytest_addoption(parser):
    parser.addoption(
        "--preset",
        action="store",
        default="bench",
        help="experiment size: 'bench' (default), 'fast', or 'full'",
    )


@pytest.fixture(scope="session")
def preset(request) -> Preset:
    name = request.config.getoption("--preset")
    if name == "bench":
        return BENCH_PRESET
    from repro.evaluation.experiments import get_preset

    return get_preset(name)
