"""Benchmark: regenerate Fig. 12 (QAOA / MaxCut on the IEEE 14-bus system)."""

from __future__ import annotations

import pytest

#: Experiment-figure regeneration dominates the tier-1 wall-clock; the
#: default CI job skips these (-m "not slow") and a scheduled full-suite
#: job runs everything.
pytestmark = pytest.mark.slow

from repro.evaluation.experiments import Preset, format_figure12, run_figure12

# ma-QAOA on 14 qubits is the most expensive statevector benchmark; keep the
# bench run small (the runner accepts the larger presets unchanged).
QAOA_PRESET = Preset(
    name="fast", num_tasks=4, max_rounds=50, baseline_iterations=50,
    chemistry_qubits_cap=8, spin_sites=4, warmup_iterations=8, window_size=5,
)


def test_fig12_qaoa(benchmark):
    result = benchmark.pedantic(
        run_figure12,
        kwargs={"preset": QAOA_PRESET, "scenarios": ("0.5:1.5", "0.9:1.1"), "seed": 7},
        rounds=1, iterations=1,
    )
    print()
    print(format_figure12(result))
    assert len(result.bars) == 2
    by_name = {bar.scenario: bar for bar in result.bars}
    # Narrower load ranges produce more similar instances (lower edge-weight variance).
    assert by_name["0.9:1.1"].edge_weight_variance < by_name["0.5:1.5"].edge_weight_variance
    savings = [bar.savings_ratio for bar in result.bars if bar.savings_ratio is not None]
    assert savings, "QAOA comparison must produce savings ratios"
    # TreeVQA's benefit extends to combinatorial optimisation (Fig. 12 claim).
    assert max(savings) > 1.0
