"""Benchmark: regenerate Fig. 8 (shot savings versus task precision)."""

from __future__ import annotations

import pytest

#: Experiment-figure regeneration dominates the tier-1 wall-clock; the
#: default CI job skips these (-m "not slow") and a scheduled full-suite
#: job runs everything.
pytestmark = pytest.mark.slow

from repro.evaluation.experiments import format_figure8, run_figure8


def test_fig8_precision(benchmark, preset):
    result = benchmark.pedantic(
        run_figure8,
        kwargs={
            "preset": preset,
            "molecules": ("HF",),
            "precisions": (0.1, 0.05, 0.03),
            "seed": 7,
            "max_tasks": 10,
        },
        rounds=1, iterations=1,
    )
    print()
    print(format_figure8(result))
    measured = [p for p in result.for_molecule("HF") if not p.inferred]
    assert len(measured) == 3
    # Finer precision means more tasks over the same bond range.
    counts = [p.num_tasks for p in sorted(measured, key=lambda p: -p.precision)]
    assert counts == sorted(counts)
    # Savings at the finest measured precision are at least those at the coarsest (Fig. 8 trend).
    ordered = sorted(measured, key=lambda p: -p.precision)
    assert ordered[0].savings_ratio is not None and ordered[-1].savings_ratio is not None
    assert ordered[-1].savings_ratio >= 0.8 * ordered[0].savings_ratio
    # The paper's finest setting is inferred from the measured trend (shaded bar).
    inferred = [p for p in result.for_molecule("HF") if p.inferred]
    assert len(inferred) == 1 and inferred[0].precision == 0.001
