"""Benchmark: regenerate Fig. 9 (large-scale problems via Pauli propagation)."""

from __future__ import annotations

import pytest

#: Experiment-figure regeneration dominates the tier-1 wall-clock; the
#: default CI job skips these (-m "not slow") and a scheduled full-suite
#: job runs everything.
pytestmark = pytest.mark.slow

from repro.evaluation.experiments import format_figure9, run_figure9


def test_fig9_large_scale(benchmark):
    result = benchmark.pedantic(
        run_figure9,
        kwargs={
            "preset": "fast",
            "benchmarks": ("Ising25", "C2H2"),
            "include_noisy": True,
            "seed": 11,
        },
        rounds=1, iterations=1,
    )
    print()
    print(format_figure9(result))
    # Four bar groups: {Ising, C2H2} × {noiseless, noisy}.
    assert len(result.benchmarks) == 4
    by_key = {(b.benchmark, b.noisy): b for b in result.benchmarks}
    for (_, _), group in by_key.items():
        assert group.tasks, "every benchmark must produce per-task bars"
        assert all(task.savings_ratio > 0 for task in group.tasks)
    # TreeVQA shows shot savings on the large-scale Ising benchmark (noiseless).
    assert by_key[("Ising25", False)].mean_savings() > 1.0
    # Noise reduces but does not eliminate the savings (Fig. 9 observation).
    assert by_key[("Ising25", True)].mean_savings() > 0.5
