"""Micro-benchmark: compiled engine vs. naive per-term Pauli evaluation.

Tracks the speedup of the compile-once vectorized expectation engine over the
per-term ``Statevector.pauli_expectation`` loop it replaced — the hot path of
every optimizer step of every cluster.
"""

from __future__ import annotations

import time

import numpy as np

from repro.quantum.engine import compiled_pauli_operator
from repro.quantum.pauli import PAULI_LABELS, PauliOperator
from repro.quantum.statevector import Statevector

NUM_QUBITS = 10
NUM_TERMS = 50
REPEATS = 30


def _random_problem(seed: int = 0):
    rng = np.random.default_rng(seed)
    labels = set()
    while len(labels) < NUM_TERMS:
        labels.add("".join(rng.choice(list(PAULI_LABELS), size=NUM_QUBITS)))
    operator = PauliOperator(
        NUM_QUBITS, dict(zip(sorted(labels), rng.normal(size=NUM_TERMS)))
    )
    amplitudes = rng.normal(size=2 ** NUM_QUBITS) + 1j * rng.normal(size=2 ** NUM_QUBITS)
    state = Statevector(amplitudes / np.linalg.norm(amplitudes))
    return operator, state


def _naive_term_values(state: Statevector, operator: PauliOperator) -> np.ndarray:
    return np.array([state.pauli_expectation(pauli) for pauli in operator.paulis()])


def test_engine_speedup_over_naive_loop():
    operator, state = _random_problem()
    engine = compiled_pauli_operator(operator)  # compile once, outside the loop

    # Warm-up + correctness guard.
    np.testing.assert_allclose(
        engine.expectation_values(state), _naive_term_values(state, operator), atol=1e-10
    )

    start = time.perf_counter()
    for _ in range(REPEATS):
        _naive_term_values(state, operator)
    naive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(REPEATS):
        engine.expectation_values(state)
    engine_seconds = time.perf_counter() - start

    speedup = naive_seconds / engine_seconds
    per_eval_naive = 1e3 * naive_seconds / REPEATS
    per_eval_engine = 1e3 * engine_seconds / REPEATS
    print()
    print(
        f"engine speedup on {NUM_QUBITS}-qubit, {NUM_TERMS}-term operator: "
        f"{speedup:.1f}x ({per_eval_naive:.3f} ms naive -> {per_eval_engine:.3f} ms engine)"
    )
    assert speedup >= 5.0, f"engine speedup {speedup:.1f}x below the 5x floor"
