"""Micro-benchmark: compile-once circuit programs vs. the PR 2 batched path.

The PR 2 round scheduler already stacked a whole round into per-gate GEMMs,
but rebuilt its inputs every round: one freshly bound circuit per parameter
point (``ansatz.bound_circuit`` in ``VQACluster.ask``), one structure-key
recomputation and regrouping pass per dispatch, and one per-gate Python scan
over the batch to stack gate matrices.  The program path compiles the ansatz
once — instruction tape, parameter-slot mapping, per-gate dispatch plan —
and executes each round straight from the stacked parameter matrix.

The baseline below is the *frozen PR 2 implementation* (the backend's
``run_batch``/``_prepare_group``/``_stacked_matrices`` as merged in PR 2,
kept verbatim as a reference class) driven by legacy bound-circuit requests
(``use_circuit_programs=False``), i.e. exactly the per-round work the PR 2
scheduler performed.  Since both paths are bit-identical per request, the
speedup is measured on provably identical work — asserted below.

Workload: the ISSUE's reference shape, a 16-task × 8-qubit application
(16 singleton SPSA clusters, 32 evaluations per round).
"""

from __future__ import annotations

import time

import numpy as np

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import RoundScheduler, TreeVQAConfig, VQACluster, VQATask
from repro.hamiltonians import transverse_field_ising_chain
from repro.quantum import ExecutionBackend, StatevectorBackend
from repro.quantum.backend import request_initial_amplitudes
from repro.quantum.engine import compiled_pauli_operator
from repro.quantum.gates import batched_rotation_matrices, gate_matrix
from repro.quantum.program import apply_gate_batched
from repro.quantum.sampling import ExactEstimator
from repro.quantum.statevector import Statevector

NUM_QUBITS = 8
NUM_TASKS = 16
NUM_LAYERS = 3
ROUNDS = 6
MIN_SPEEDUP = 1.5


class PR2StatevectorBackend(ExecutionBackend):
    """The PR 2 batched backend, frozen verbatim as the benchmark baseline.

    Per dispatch it re-derives every request's structure tuple, regroups,
    and scans the batch per gate position to stack matrices — the work the
    program path precomputes once.  Kept here (not in the library) so the
    benchmark keeps measuring against the same baseline as the programs
    layer evolves.
    """

    name = "statevector-pr2"

    def __init__(self) -> None:
        self.batches_run = 0
        self.requests_run = 0

    def run_batch(self, requests, *, need_states=False):
        requests = list(requests)
        results = [None] * len(requests)
        groups = {}
        for index, request in enumerate(requests):
            if not request.circuit.is_bound():
                raise ValueError("execution requests need fully bound circuits")
            structure = tuple(
                (inst.gate, inst.qubits) for inst in request.circuit.instructions
            )
            groups.setdefault((request.circuit.num_qubits, structure), []).append(index)
        for (num_qubits, _), indices in groups.items():
            states = self._prepare_group([requests[i] for i in indices], num_qubits)
            for row, index in enumerate(indices):
                request = requests[index]
                engine = compiled_pauli_operator(request.operator)
                vector = engine.expectation_values(states[row])
                vector[engine.identity_mask] = 1.0
                from repro.quantum.backend import BackendResult

                results[index] = BackendResult(
                    term_basis=engine.paulis,
                    term_vector=vector,
                    state=Statevector(states[row]) if need_states else None,
                    backend_name=self.name,
                    tag=request.tag,
                )
        self.batches_run += 1
        self.requests_run += len(requests)
        return results

    def _prepare_group(self, group, num_qubits):
        batch = len(group)
        dim = 1 << num_qubits
        states = np.zeros((batch, dim), dtype=complex)
        for row, request in enumerate(group):
            states[row] = request_initial_amplitudes(request, num_qubits)
        tensor = states.reshape((batch,) + (2,) * num_qubits)
        instructions = [request.circuit.instructions for request in group]
        for position, first in enumerate(instructions[0]):
            matrices = self._stacked_matrices(instructions, position, batch)
            tensor = apply_gate_batched(tensor, matrices, first.qubits)
        return tensor.reshape(batch, dim)

    @staticmethod
    def _stacked_matrices(instructions, position, batch):
        first = instructions[0][position]
        if len(first.params) == 1:
            same = all(
                insts[position].params == first.params for insts in instructions
            )
            thetas = (
                np.asarray([first.params[0]], dtype=float)
                if same
                else np.fromiter(
                    (insts[position].params[0] for insts in instructions),
                    dtype=float,
                    count=batch,
                )
            )
            matrices = batched_rotation_matrices(first.gate, thetas)
            if matrices is not None:
                if same:
                    return np.repeat(matrices, batch, axis=0)
                return matrices
        if not first.params or all(
            insts[position].params == first.params for insts in instructions
        ):
            matrix = gate_matrix(first.gate, *first.params)
            return np.repeat(matrix[None, :, :], batch, axis=0)
        return np.stack(
            [
                gate_matrix(insts[position].gate, *insts[position].params)
                for insts in instructions
            ]
        )


def _make_tasks() -> list[VQATask]:
    fields = np.linspace(0.6, 1.4, NUM_TASKS)
    return [
        VQATask(
            name=f"tfim@{field:.3f}",
            hamiltonian=transverse_field_ising_chain(NUM_QUBITS, float(field)),
            scan_parameter=float(field),
        )
        for field in fields
    ]


def _make_clusters(tasks, ansatz, estimator, *, use_programs: bool):
    config = TreeVQAConfig(
        max_rounds=ROUNDS, warmup_iterations=0, window_size=2,
        disable_automatic_splits=True, seed=0, use_circuit_programs=use_programs,
    )
    return [
        VQACluster(
            cluster_id=f"bench-{index}",
            tasks=[task],
            ansatz=ansatz,
            optimizer=config.make_optimizer(),
            estimator=estimator,
            config=config,
            initial_parameters=ansatz.zero_parameters(),
        )
        for index, task in enumerate(tasks)
    ]


def _run_rounds(scheduler: RoundScheduler, clusters: list[VQACluster]):
    records = []
    for _ in range(ROUNDS):
        records.extend(record for _, record in scheduler.run_round(clusters))
    return records


def _timed(backend, tasks, ansatz, estimator, *, use_programs: bool):
    clusters = _make_clusters(tasks, ansatz, estimator, use_programs=use_programs)
    scheduler = RoundScheduler(backend, estimator)
    start = time.perf_counter()
    records = _run_rounds(scheduler, clusters)
    return time.perf_counter() - start, records


def test_program_rounds_at_least_1_5x_pr2_batched():
    tasks = _make_tasks()
    ansatz = HardwareEfficientAnsatz(NUM_QUBITS, num_layers=NUM_LAYERS)
    estimator = ExactEstimator(seed=0)

    # Warm-up: compile the expectation engines, the circuit program, and
    # JIT-warm the NumPy paths for both backends.
    _timed(PR2StatevectorBackend(), tasks, ansatz, estimator, use_programs=False)
    _timed(StatevectorBackend(), tasks, ansatz, estimator, use_programs=True)

    # Best-of-3 per mode to shield the asserted ratio from scheduler jitter.
    pr2_seconds, pr2_records = min(
        (
            _timed(PR2StatevectorBackend(), tasks, ansatz, estimator, use_programs=False)
            for _ in range(3)
        ),
        key=lambda pair: pair[0],
    )
    program_seconds, program_records = min(
        (
            _timed(StatevectorBackend(), tasks, ansatz, estimator, use_programs=True)
            for _ in range(3)
        ),
        key=lambda pair: pair[0],
    )

    # Same seeds, bit-identical execution: the timed runs did identical work.
    assert len(program_records) == len(pr2_records) == ROUNDS * NUM_TASKS
    for left, right in zip(program_records, pr2_records):
        assert left.mixed_loss == right.mixed_loss
        np.testing.assert_array_equal(left.parameters, right.parameters)

    speedup = pr2_seconds / program_seconds
    print(
        f"\nprogram-cache round throughput ({NUM_TASKS} tasks x {NUM_QUBITS} "
        f"qubits, {ROUNDS} rounds): PR2 batched "
        f"{1e3 * pr2_seconds / ROUNDS:.1f} ms/round, program path "
        f"{1e3 * program_seconds / ROUNDS:.1f} ms/round, speedup {speedup:.2f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"program path only {speedup:.2f}x faster than the PR 2 batched path "
        f"(expected >= {MIN_SPEEDUP}x)"
    )
