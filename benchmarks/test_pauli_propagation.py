"""Benchmark: vectorized Pauli propagation vs. the legacy dict evaluator.

Two checks guard the 50–100 qubit band the propagation backend opens:

* a Fig. 9-style 28-qubit TFIM workload must run at least 10x faster through
  :class:`~repro.quantum.pauli_propagation.CompiledPropagation` than through
  the per-term ``PauliPropagationSimulator`` dict loop it replaces, at equal
  values (same truncation rules, both paths);
* a full 50-qubit TreeVQA round must complete end-to-end through
  ``TreeVQAConfig(backend="pauli_propagation")`` within the fast-tier
  timeout.

Results are appended to ``BENCH_propagation.json`` at the repo root so CI can
upload them as a machine-readable artifact.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.core.config import TreeVQAConfig
from repro.core.controller import TreeVQAController
from repro.core.task import VQATask
from repro.hamiltonians.spin import transverse_field_ising_chain
from repro.quantum.pauli_propagation import (
    CompiledPropagation,
    PauliPropagationConfig,
    PauliPropagationSimulator,
)

_RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_propagation.json"

#: The Fig. 9 large-scale truncation settings (fast preset).
_FIG9_CONFIG = dict(max_weight=6, coefficient_threshold=1e-5, max_terms=30_000)

SPEEDUP_FLOOR = 10.0


def _record(key: str, payload: dict) -> None:
    """Merge one benchmark's numbers into the shared JSON artifact."""
    existing = {}
    if _RESULTS_PATH.exists():
        existing = json.loads(_RESULTS_PATH.read_text())
    existing[key] = payload
    _RESULTS_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def test_vectorized_propagation_speedup_over_dict_evaluator():
    num_qubits = 28
    operator = transverse_field_ising_chain(num_qubits, 1.0)
    ansatz = HardwareEfficientAnsatz(num_qubits, num_layers=2, entanglement="linear")
    config = PauliPropagationConfig(**_FIG9_CONFIG)
    rng = np.random.default_rng(5)
    rows = [rng.normal(scale=0.5, size=ansatz.num_parameters) for _ in range(2)]
    bits = "0" * num_qubits

    compiled = CompiledPropagation(ansatz.program(), operator, config)
    outcome = compiled.run(rows[0], bits)  # warm-up (structure caches, JIT-free)

    start = time.perf_counter()
    vectorized_values = [compiled.expectation(row, bits) for row in rows]
    vectorized_seconds = (time.perf_counter() - start) / len(rows)

    simulator = PauliPropagationSimulator(config)
    start = time.perf_counter()
    legacy_values = [
        simulator.expectation(operator, ansatz.bound_circuit(row), bits)
        for row in rows
    ]
    legacy_seconds = (time.perf_counter() - start) / len(rows)

    # Same truncation rules on both paths: the values must agree closely.
    np.testing.assert_allclose(vectorized_values, legacy_values, rtol=0, atol=1e-9)

    speedup = legacy_seconds / vectorized_seconds
    print()
    print(
        f"propagation speedup on {num_qubits}-qubit, 2-layer TFIM "
        f"(peak {outcome.peak_terms} terms): {speedup:.1f}x "
        f"({legacy_seconds * 1e3:.0f} ms dict -> {vectorized_seconds * 1e3:.0f} ms vectorized)"
    )
    _record(
        "speedup_28q",
        {
            "num_qubits": num_qubits,
            "peak_terms": outcome.peak_terms,
            "legacy_seconds_per_eval": legacy_seconds,
            "vectorized_seconds_per_eval": vectorized_seconds,
            "speedup": speedup,
            "floor": SPEEDUP_FLOOR,
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized propagation speedup {speedup:.1f}x below the "
        f"{SPEEDUP_FLOOR:.0f}x floor"
    )


@pytest.mark.timeout(300)
def test_50_qubit_treevqa_round_end_to_end():
    num_qubits = 50
    tasks = [
        VQATask(
            name=f"TFIM50@{h:.2f}",
            hamiltonian=transverse_field_ising_chain(num_qubits, h),
            scan_parameter=h,
            # No exact reference exists at this width; a variational bound
            # keeps fidelity/error well-defined for the report.
            reference_energy=-1.1 * num_qubits,
        )
        for h in (0.8, 1.2)
    ]
    ansatz = HardwareEfficientAnsatz(num_qubits, num_layers=1, entanglement="linear")
    config = TreeVQAConfig(
        backend="pauli_propagation",
        propagation_max_weight=6,
        propagation_coefficient_threshold=1e-5,
        propagation_max_terms=30_000,
        max_rounds=2,
        seed=9,
    )

    start = time.perf_counter()
    result = TreeVQAController(tasks, ansatz, config).run()
    elapsed = time.perf_counter() - start

    assert len(result.outcomes) == len(tasks)
    for outcome in result.outcomes:
        assert math.isfinite(outcome.energy)
    propagation = result.metadata["propagation"]
    assert propagation["requests"] > 0
    print()
    print(
        f"50-qubit TreeVQA round: {elapsed:.1f}s, "
        f"{propagation['requests']} propagation requests, "
        f"max {propagation['max_peak_terms']} terms"
    )
    _record(
        "treevqa_round_50q",
        {
            "num_qubits": num_qubits,
            "num_tasks": len(tasks),
            "rounds": result.total_rounds,
            "seconds": elapsed,
            "requests": propagation["requests"],
            "max_peak_terms": propagation["max_peak_terms"],
            "energies": [outcome.energy for outcome in result.outcomes],
        },
    )
