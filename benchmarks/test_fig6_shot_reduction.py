"""Benchmark: regenerate Fig. 6 (shot reduction at a fixed fidelity target).

The paper's headline: TreeVQA reaches the same application fidelity with
substantially fewer shots than independent per-task VQE, on every benchmark.
The bench preset runs three representative panels (one molecule, one spin
model, the H2/UCCSD case); the underlying runner covers all six.
"""

from __future__ import annotations

import pytest

#: Experiment-figure regeneration dominates the tier-1 wall-clock; the
#: default CI job skips these (-m "not slow") and a scheduled full-suite
#: job runs everything.
pytestmark = pytest.mark.slow

from repro.evaluation.experiments import format_figure6, run_figure6

PANELS = ("HF", "TFIM", "H2")


def test_fig6_shot_reduction(benchmark, preset):
    result = benchmark.pedantic(
        run_figure6, kwargs={"preset": preset, "benchmarks": PANELS, "seed": 7},
        rounds=1, iterations=1,
    )
    print()
    print(format_figure6(result))
    assert len(result.panels) == len(PANELS)
    savings = {panel.benchmark: panel.headline_savings for panel in result.panels}
    # Every panel must produce a headline comparison, and TreeVQA must win on
    # the chemistry panel (the most similar task family).
    assert all(value is not None for value in savings.values())
    assert savings["HF"] > 1.5
    average = result.average_savings()
    assert average is not None and average > 1.0
