"""Benchmark: regenerate Table 1 (chemistry benchmark characteristics)."""

from __future__ import annotations

import pytest

#: Experiment-figure regeneration dominates the tier-1 wall-clock; the
#: default CI job skips these (-m "not slow") and a scheduled full-suite
#: job runs everything.
pytestmark = pytest.mark.slow

from repro.evaluation.experiments import format_table1, run_table1


def test_table1_benchmarks(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print()
    print(format_table1(rows))
    names = [row.molecule for row in rows]
    assert names == ["H2", "LiH", "BeH2", "HF", "C2H2"]
    # Relative ordering of problem sizes matches the paper.
    sizes = {row.molecule: row.repro_num_terms for row in rows}
    assert sizes["H2"] < sizes["LiH"] < sizes["BeH2"] < sizes["C2H2"]
    paper_sizes = {row.molecule: row.paper_num_terms for row in rows}
    assert paper_sizes == {"H2": 15, "LiH": 496, "BeH2": 810, "HF": 631, "C2H2": 5945}
