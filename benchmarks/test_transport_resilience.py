"""Micro-benchmark: dispatch throughput under injected worker crashes.

Measures what fault tolerance *costs*: the same batch workload dispatched
through a crash-free 4-worker pool and through a pool whose transport kills
one worker per batch (deterministically, via
:class:`~repro.quantum.transport.FaultInjectingTransport`).  Every crashed
shard is respawned and rerouted, so both runs produce bit-identical results
— the asserted floor is that recovery overhead (a process respawn, a
program re-ship, and a shard re-execution per batch) keeps faulty-pool
throughput at ≥0.6x the crash-free baseline.

The floor only applies on a multi-core runner: on a single-core machine
respawn overhead competes with the workload itself for one CPU, so the
ratio is reported informationally and the bit-identity contract is still
enforced.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.quantum import (
    ExecutionRequest,
    Fault,
    FaultInjectingTransport,
    LocalProcessTransport,
    ParallelBackend,
    PauliOperator,
    StatevectorBackend,
    compile_circuit_program,
    default_worker_count,
)

NUM_QUBITS = 10
BATCH = 24
BATCHES = 6
WORKERS = 4
MIN_THROUGHPUT_RATIO = 0.6


def _requests(seed=0):
    rng = np.random.default_rng(seed)
    ansatz = HardwareEfficientAnsatz(NUM_QUBITS, num_layers=3)
    program = compile_circuit_program(ansatz.circuit)
    labels = set()
    while len(labels) < 8:
        labels.add("".join(rng.choice(list("IXYZ"), size=NUM_QUBITS)))
    operator = PauliOperator(
        NUM_QUBITS, dict(zip(sorted(labels), rng.normal(size=len(labels))))
    )
    return [
        ExecutionRequest(
            None,
            operator,
            initial_bitstring="0" * NUM_QUBITS,
            tag=index,
            program=program,
            parameters=rng.normal(0.0, 0.7, size=ansatz.num_parameters),
        )
        for index in range(BATCH)
    ]


def _timed_batches(backend, requests):
    outputs = []
    start = time.perf_counter()
    for _ in range(BATCHES):
        outputs.append(backend.run_batch(requests))
    return outputs, time.perf_counter() - start


@pytest.mark.timeout(600)
def test_throughput_with_one_crash_per_batch():
    requests = _requests()

    with ParallelBackend(StatevectorBackend, workers=WORKERS) as clean:
        clean.run_batch(requests)  # spawn + program shipping outside the clock
        clean_outputs, clean_seconds = _timed_batches(clean, requests)

    # One crash per batch: each timed batch costs worker 0 two recv
    # occurrences — the crashing dispatch plus the successful rerouted retry
    # — so ``nth=2, every=2`` fires exactly once per batch (the warm-up
    # batch's single clean recv is occurrence 1), and every batch pays one
    # reap + respawn + reroute cycle.
    transport = FaultInjectingTransport(
        LocalProcessTransport(),
        [Fault(worker=0, op="recv", kind="crash", nth=2, every=2)],
    )
    faulty = ParallelBackend(
        StatevectorBackend,
        workers=WORKERS,
        transport=transport,
        worker_timeout_s=60.0,
        retry_backoff_s=0.0,
    )
    try:
        faulty.run_batch(requests)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            faulty_outputs, faulty_seconds = _timed_batches(faulty, requests)
        assert faulty.shard_retries >= BATCHES
        assert faulty.worker_respawns >= BATCHES
        assert faulty.fallback_batches == 0  # rerouting, never in-process
    finally:
        faulty.close()

    # Bit-identical work: crashes may never change the merged results.
    reference = StatevectorBackend().run_batch(requests)
    for outputs in (clean_outputs, faulty_outputs):
        for results in outputs:
            for ours, expected in zip(results, reference):
                np.testing.assert_array_equal(ours.term_vector, expected.term_vector)
                assert ours.tag == expected.tag

    ratio = clean_seconds / faulty_seconds
    cores = default_worker_count()
    print(
        f"\ntransport resilience ({BATCH} requests x {NUM_QUBITS} qubits, "
        f"{BATCHES} batches, {WORKERS} workers on {cores} core(s)): "
        f"crash-free {1e3 * clean_seconds / BATCHES:.1f} ms/batch, "
        f"one-crash-per-batch {1e3 * faulty_seconds / BATCHES:.1f} ms/batch, "
        f"throughput ratio {ratio:.2f}x"
    )
    if cores >= 2:
        assert ratio >= MIN_THROUGHPUT_RATIO, (
            f"one injected crash per batch drops throughput to {ratio:.2f}x "
            f"of the crash-free baseline (floor: {MIN_THROUGHPUT_RATIO}x) — "
            "recovery is paying more than a respawn + reroute should"
        )
    else:
        print(
            f"(constrained runner: {cores} core(s) — ≥{MIN_THROUGHPUT_RATIO}x "
            "floor skipped, bit-identity still enforced)"
        )
