"""Benchmark: regenerate Fig. 14 (window-size sweep) and the §9.1 threshold sweep."""

from __future__ import annotations

import pytest

#: Experiment-figure regeneration dominates the tier-1 wall-clock; the
#: default CI job skips these (-m "not slow") and a scheduled full-suite
#: job runs everything.
pytestmark = pytest.mark.slow

from repro.evaluation.experiments import format_figure14, run_figure14


def test_fig14_window_and_threshold(benchmark, preset):
    result = benchmark.pedantic(
        run_figure14,
        kwargs={
            "preset": preset,
            "benchmarks": ("TFIM",),
            "window_sizes": (4, 10, 20),
            "thresholds": (3e-4, 1.5e-3, 1e-2),
            "seed": 7,
        },
        rounds=1, iterations=1,
    )
    print()
    print(format_figure14(result))
    assert len(result.window_points) == 3
    assert len(result.threshold_points) == 3
    # Larger windows delay splits, producing deeper (longer) critical paths or
    # at least not shallower ones, and accuracy stays in a sane range.
    assert all(0 <= p.final_accuracy_percent <= 100 for p in result.window_points)
    assert result.best_window("TFIM") is not None
    # The threshold sweep exhibits a non-trivial optimum (errors vary).
    errors = [p.mean_error_percent for p in result.threshold_points]
    assert max(errors) >= min(errors)
    assert result.best_threshold("TFIM") is not None
