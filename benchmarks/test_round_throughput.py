"""Micro-benchmark: batched round scheduling vs. sequential per-request rounds.

Tracks the speedup of executing a whole controller round as stacked backend
batches (the round scheduler gathering every cluster's asks into one
dispatch) over the ``max_batch_size=1`` degenerate case that executes the
same requests one at a time.  The workload is the ISSUE's reference shape:
an 8-qubit, 16-task application (16 singleton clusters, so every round asks
32 SPSA evaluations).

Since batched execution is bit-identical per request regardless of grouping,
the two modes must also produce identical step records — asserted below, so
the speedup is measured on provably identical work.
"""

from __future__ import annotations

import time

import numpy as np

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import RoundScheduler, TreeVQAConfig, VQACluster, VQATask
from repro.hamiltonians import transverse_field_ising_chain
from repro.quantum import StatevectorBackend
from repro.quantum.sampling import ExactEstimator

NUM_QUBITS = 8
NUM_TASKS = 16
NUM_LAYERS = 3
ROUNDS = 6
MIN_SPEEDUP = 3.0


def _make_tasks() -> list[VQATask]:
    fields = np.linspace(0.6, 1.4, NUM_TASKS)
    return [
        VQATask(
            name=f"tfim@{field:.3f}",
            hamiltonian=transverse_field_ising_chain(NUM_QUBITS, float(field)),
            scan_parameter=float(field),
        )
        for field in fields
    ]


def _make_clusters(tasks: list[VQATask], ansatz, estimator) -> list[VQACluster]:
    config = TreeVQAConfig(
        max_rounds=ROUNDS, warmup_iterations=0, window_size=2,
        disable_automatic_splits=True, seed=0,
    )
    return [
        VQACluster(
            cluster_id=f"bench-{index}",
            tasks=[task],
            ansatz=ansatz,
            optimizer=config.make_optimizer(),
            estimator=estimator,
            config=config,
            initial_parameters=ansatz.zero_parameters(),
        )
        for index, task in enumerate(tasks)
    ]


def _run_rounds(scheduler: RoundScheduler, clusters: list[VQACluster]):
    records = []
    for _ in range(ROUNDS):
        records.extend(record for _, record in scheduler.run_round(clusters))
    return records


def test_batched_rounds_at_least_3x_sequential():
    tasks = _make_tasks()
    ansatz = HardwareEfficientAnsatz(NUM_QUBITS, num_layers=NUM_LAYERS)
    estimator = ExactEstimator(seed=0)

    # Warm-up: compile every task's expectation engine (cached per operator,
    # shared by both timed runs) and JIT-warm the NumPy paths.
    warm = _make_clusters(tasks, ansatz, estimator)
    RoundScheduler(StatevectorBackend(), estimator).run_round(warm)

    sequential_clusters = _make_clusters(tasks, ansatz, estimator)
    sequential = RoundScheduler(StatevectorBackend(), estimator, max_batch_size=1)
    start = time.perf_counter()
    sequential_records = _run_rounds(sequential, sequential_clusters)
    sequential_seconds = time.perf_counter() - start

    batched_clusters = _make_clusters(tasks, ansatz, estimator)
    batched = RoundScheduler(StatevectorBackend(), estimator)
    start = time.perf_counter()
    batched_records = _run_rounds(batched, batched_clusters)
    batched_seconds = time.perf_counter() - start

    # Same seeds, bit-identical execution: the timed runs did identical work.
    assert len(batched_records) == len(sequential_records) == ROUNDS * NUM_TASKS
    for left, right in zip(batched_records, sequential_records):
        assert left.mixed_loss == right.mixed_loss
        np.testing.assert_array_equal(left.parameters, right.parameters)
    assert batched.requests_executed == sequential.requests_executed

    speedup = sequential_seconds / batched_seconds
    per_round_sequential = 1e3 * sequential_seconds / ROUNDS
    per_round_batched = 1e3 * batched_seconds / ROUNDS
    print(
        f"\nround throughput ({NUM_TASKS} tasks x {NUM_QUBITS} qubits, "
        f"{ROUNDS} rounds): sequential {per_round_sequential:.1f} ms/round, "
        f"batched {per_round_batched:.1f} ms/round, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched rounds only {speedup:.2f}x faster than sequential "
        f"(expected >= {MIN_SPEEDUP}x)"
    )
