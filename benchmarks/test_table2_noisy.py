"""Benchmark: regenerate Table 2 (noisy-device simulation across five backends)."""

from __future__ import annotations

import pytest

#: Experiment-figure regeneration dominates the tier-1 wall-clock; the
#: default CI job skips these (-m "not slow") and a scheduled full-suite
#: job runs everything.
pytestmark = pytest.mark.slow

from repro.evaluation.experiments import format_table2, run_table2


def test_table2_noisy(benchmark):
    result = benchmark.pedantic(
        run_table2, kwargs={"preset": "fast", "seed": 7, "max_rounds": 25},
        rounds=1, iterations=1,
    )
    print()
    print(format_table2(result))
    assert set(result.backends()) == {"hanoi", "cairo", "mumbai", "kolkata", "auckland"}
    # Noisy optimisation still reaches a usable fidelity on every backend and
    # TreeVQA still saves shots on at least some of them (Table 2 shape).
    assert all(row.max_fidelity > 0.5 for row in result.rows)
    savings = [row.savings_ratio for row in result.rows if row.savings_ratio is not None]
    assert savings and max(savings) > 1.0
