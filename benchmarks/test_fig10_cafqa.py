"""Benchmark: regenerate Fig. 10 (TreeVQA combined with CAFQA initialisation)."""

from __future__ import annotations

import pytest

#: Experiment-figure regeneration dominates the tier-1 wall-clock; the
#: default CI job skips these (-m "not slow") and a scheduled full-suite
#: job runs everything.
pytestmark = pytest.mark.slow

from repro.evaluation.experiments import format_figure10, run_figure10


def test_fig10_cafqa(benchmark, preset):
    result = benchmark.pedantic(
        run_figure10,
        kwargs={
            "preset": preset,
            "num_tasks": 4,
            "gap_percentages": (5.0, 10.0, 20.0, 30.0),
            "seed": 7,
        },
        rounds=1, iterations=1,
    )
    print()
    print(format_figure10(result))
    # CAFQA provides a high-accuracy classical initialisation (paper: 0.955 for LiH).
    assert result.cafqa_fidelity > 0.8
    assert len(result.points) == 4
    # Both methods recover at least the smallest gap fraction, and TreeVQA does
    # so with fewer shots.
    first = result.points[0]
    assert first.treevqa_shots is not None and first.baseline_shots is not None
    usable = [p.savings_ratio for p in result.points if p.savings_ratio is not None]
    assert usable and max(usable) > 1.0
