"""Tests for the ansatz families."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from scipy.linalg import expm

from repro.ansatz import (
    HardwareEfficientAnsatz,
    MultiAngleQAOAAnsatz,
    QAOAAnsatz,
    UCCSDAnsatz,
    append_pauli_rotation,
    pauli_rotation_circuit,
)
from repro.ansatz.ucc import double_excitation_paulis, single_excitation_paulis
from repro.hamiltonians.maxcut import maxcut_minimization_hamiltonian
from repro.quantum.exact import ground_state_energy
from repro.quantum.pauli import PauliOperator, PauliString
from repro.quantum.statevector import Statevector, StatevectorSimulator


class TestPauliRotation:
    @pytest.mark.parametrize("label", ["Z", "XX", "XYZ", "IZI"])
    def test_matches_matrix_exponential(self, label):
        theta = 0.73
        num_qubits = len(label)
        circuit = pauli_rotation_circuit(num_qubits, label, theta)
        state = StatevectorSimulator().run(circuit)
        expected_unitary = expm(-0.5j * theta * PauliString(label).to_matrix())
        expected = expected_unitary @ Statevector.zero_state(num_qubits).data
        # Global phase may differ; compare up to phase via fidelity.
        fidelity = abs(np.vdot(expected, state.data)) ** 2
        assert fidelity == pytest.approx(1.0, abs=1e-10)

    def test_identity_rotation_is_noop(self):
        circuit = pauli_rotation_circuit(2, "II", 0.5)
        assert len(circuit) == 0

    def test_length_mismatch(self):
        from repro.quantum.circuit import QuantumCircuit

        with pytest.raises(ValueError):
            append_pauli_rotation(QuantumCircuit(2), "XXX", 0.1)


class TestHardwareEfficientAnsatz:
    def test_parameter_count(self):
        ansatz = HardwareEfficientAnsatz(4, num_layers=2)
        # (layers + final) * 2 rotations per qubit
        assert ansatz.num_parameters == (2 + 1) * 2 * 4

    def test_no_final_layer(self):
        ansatz = HardwareEfficientAnsatz(3, num_layers=1, final_rotation_layer=False)
        assert ansatz.num_parameters == 6

    def test_entanglement_patterns(self):
        linear = HardwareEfficientAnsatz(4, num_layers=1, entanglement="linear")
        circular = HardwareEfficientAnsatz(4, num_layers=1, entanglement="circular")
        full = HardwareEfficientAnsatz(4, num_layers=1, entanglement="full")
        assert linear.circuit.two_qubit_gate_count() == 3
        assert circular.circuit.two_qubit_gate_count() == 4
        assert full.circuit.two_qubit_gate_count() == 6
        with pytest.raises(ValueError):
            HardwareEfficientAnsatz(4, entanglement="star")

    def test_initial_bitstring_prepended(self):
        ansatz = HardwareEfficientAnsatz(3, num_layers=1, initial_bitstring="110")
        gates = [inst.gate for inst in ansatz.circuit.instructions[:2]]
        assert gates == ["x", "x"]
        with pytest.raises(ValueError):
            HardwareEfficientAnsatz(3, initial_bitstring="01")

    def test_zero_parameters_keep_computational_basis_state(self):
        # At zero angles the rotations are identities; the CX layer maps the
        # reference bitstring to another (deterministic) basis state.
        ansatz = HardwareEfficientAnsatz(3, num_layers=1, initial_bitstring="101")
        probabilities = ansatz.prepare_state(ansatz.zero_parameters()).probabilities()
        assert np.max(probabilities) == pytest.approx(1.0)
        # The all-zero reference is a CX fixed point and survives exactly.
        zero_reference = HardwareEfficientAnsatz(3, num_layers=1, initial_bitstring="000")
        state = zero_reference.prepare_state(zero_reference.zero_parameters())
        assert abs(state.data[0]) == pytest.approx(1.0)

    def test_bound_circuit_validates_length(self):
        ansatz = HardwareEfficientAnsatz(2, num_layers=1)
        with pytest.raises(ValueError):
            ansatz.bound_circuit(np.zeros(3))

    def test_initial_parameters_random(self):
        ansatz = HardwareEfficientAnsatz(2, num_layers=1)
        values = ansatz.initial_parameters(np.random.default_rng(0))
        assert values.shape == (ansatz.num_parameters,)
        assert np.any(values != 0)

    def test_two_qubit_circular_does_not_duplicate(self):
        ansatz = HardwareEfficientAnsatz(2, num_layers=1, entanglement="circular")
        assert ansatz.circuit.two_qubit_gate_count() == 1


class TestUCCSD:
    def test_excitation_pauli_structure(self):
        singles = single_excitation_paulis(4, 0, 2)
        assert {label for label, _ in singles} == {"YZXI", "XZYI"}
        doubles = double_excitation_paulis(4, (0, 1), (2, 3))
        assert len(doubles) == 8
        for label, sign in doubles:
            assert len(label) == 4
            assert abs(sign) == 0.125

    def test_invalid_excitations(self):
        with pytest.raises(ValueError):
            single_excitation_paulis(4, 1, 1)
        with pytest.raises(ValueError):
            double_excitation_paulis(4, (0, 1), (1, 3))

    def test_parameter_count_h2(self):
        ansatz = UCCSDAnsatz(4, 2)
        # 2 occupied × 2 virtual singles + 1 double
        assert ansatz.num_parameters == 5

    def test_reference_state_at_zero_parameters(self):
        ansatz = UCCSDAnsatz(4, 2)
        state = ansatz.prepare_state(ansatz.zero_parameters())
        assert abs(state.data[int("1100", 2)]) == pytest.approx(1.0)

    def test_particle_number_conserved(self):
        ansatz = UCCSDAnsatz(4, 2)
        rng = np.random.default_rng(5)
        state = ansatz.prepare_state(rng.normal(0, 0.4, ansatz.num_parameters))
        number_operator = PauliOperator(4, {
            PauliString.identity(4): 2.0,
            **{PauliString.from_sparse(4, {q: "Z"}): -0.5 for q in range(4)},
        })
        # <N> = sum_q (1 - <Z_q>)/2 must remain 2 for a particle-conserving ansatz.
        assert state.expectation(number_operator) == pytest.approx(2.0, abs=1e-8)

    def test_invalid_particle_count(self):
        with pytest.raises(ValueError):
            UCCSDAnsatz(4, 0)
        with pytest.raises(ValueError):
            UCCSDAnsatz(4, 4)


class TestQAOA:
    @pytest.fixture
    def triangle_graph(self):
        graph = nx.Graph()
        graph.add_weighted_edges_from([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
        return graph

    def test_rejects_non_diagonal_cost(self):
        cost = PauliOperator.from_terms([("XX", 1.0)])
        with pytest.raises(ValueError):
            QAOAAnsatz(cost).circuit

    def test_parameter_counts(self, triangle_graph):
        cost = maxcut_minimization_hamiltonian(triangle_graph)
        standard = QAOAAnsatz(cost, num_layers=2)
        assert standard.num_parameters == 4
        multi = MultiAngleQAOAAnsatz(cost, num_layers=2)
        # 3 clauses + 3 qubits per layer
        assert multi.num_parameters == 12
        assert multi.parameters_per_layer == 6

    def test_plus_state_at_zero_parameters(self, triangle_graph):
        cost = maxcut_minimization_hamiltonian(triangle_graph)
        ansatz = QAOAAnsatz(cost, num_layers=1)
        state = ansatz.prepare_state(ansatz.zero_parameters())
        np.testing.assert_allclose(np.abs(state.data), np.full(8, 1 / np.sqrt(8)), atol=1e-12)

    def test_optimised_qaoa_beats_random_guess(self, triangle_graph):
        cost = maxcut_minimization_hamiltonian(triangle_graph)
        ansatz = QAOAAnsatz(cost, num_layers=1)
        simulator = StatevectorSimulator()
        best = np.inf
        for gamma in np.linspace(0.1, 1.5, 8):
            for beta in np.linspace(-0.7, 0.7, 9):
                value = simulator.expectation(ansatz.bound_circuit([gamma, beta]), cost)
                best = min(best, value)
        random_value = simulator.expectation(ansatz.bound_circuit(ansatz.zero_parameters()), cost)
        assert best < random_value
        assert best >= ground_state_energy(cost) - 1e-9

    def test_ma_qaoa_special_case_matches_standard(self, triangle_graph):
        """ma-QAOA with all angles per layer equal reduces to standard QAOA (§6)."""
        cost = maxcut_minimization_hamiltonian(triangle_graph)
        standard = QAOAAnsatz(cost, num_layers=1)
        multi = MultiAngleQAOAAnsatz(cost, num_layers=1)
        gamma, beta = 0.4, 0.25
        simulator = StatevectorSimulator()
        standard_value = simulator.expectation(standard.bound_circuit([gamma, beta]), cost)
        num_clauses = multi.parameters_per_layer - multi.num_qubits
        multi_params = np.array([gamma] * num_clauses + [beta] * multi.num_qubits)
        multi_value = simulator.expectation(multi.bound_circuit(multi_params), cost)
        assert multi_value == pytest.approx(standard_value, abs=1e-9)
