"""Tests for SPSA and COBYLA optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optimizers import COBYLA, SPSA, OptimizerResult


def quadratic(x: np.ndarray) -> float:
    return float(np.sum((x - 1.0) ** 2))


class TestSPSA:
    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SPSA(learning_rate=0.0)
        with pytest.raises(ValueError):
            SPSA(perturbation=-1.0)

    def test_schedules_decay(self):
        spsa = SPSA(learning_rate=0.5, perturbation=0.2, expected_iterations=100)
        assert spsa.learning_rate_at(0) > spsa.learning_rate_at(50)
        assert spsa.perturbation_at(0) > spsa.perturbation_at(50)

    def test_step_uses_two_evaluations(self):
        spsa = SPSA(seed=0)
        spsa.reset(np.zeros(3))
        calls = []

        def objective(x):
            calls.append(x.copy())
            return quadratic(x)

        step = spsa.run_step(objective)
        assert len(calls) == 2
        assert step.num_evaluations == 2
        assert step.iteration == 1

    def test_requires_reset_before_step(self):
        with pytest.raises(RuntimeError):
            SPSA().run_step(quadratic)

    def test_minimize_converges_on_quadratic(self):
        spsa = SPSA(learning_rate=0.3, perturbation=0.1, seed=2, expected_iterations=200)
        result = spsa.minimize(quadratic, np.zeros(4), 200)
        assert isinstance(result, OptimizerResult)
        assert result.num_iterations == 200
        assert result.num_evaluations == 400
        assert quadratic(result.parameters) < 0.1
        assert result.best_loss <= result.loss_history[0]

    def test_deterministic_with_seed(self):
        a = SPSA(seed=5).minimize(quadratic, np.zeros(2), 30)
        b = SPSA(seed=5).minimize(quadratic, np.zeros(2), 30)
        np.testing.assert_allclose(a.parameters, b.parameters)

    def test_calibrate_scales_learning_rate(self):
        flat = SPSA(seed=1)
        steep = SPSA(seed=1)
        flat.calibrate(lambda x: 0.01 * quadratic(x), np.ones(3) * 3, target_step=0.1)
        steep.calibrate(lambda x: 100.0 * quadratic(x), np.ones(3) * 3, target_step=0.1)
        assert flat.learning_rate > steep.learning_rate

    def test_minimize_validates_iterations(self):
        with pytest.raises(ValueError):
            SPSA().minimize(quadratic, np.zeros(2), 0)

    def test_callback_invoked(self):
        seen = []
        SPSA(seed=0).minimize(quadratic, np.zeros(2), 5, callback=lambda step: seen.append(step))
        assert len(seen) == 5


class TestCOBYLA:
    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            COBYLA(initial_trust_radius=0.0)
        with pytest.raises(ValueError):
            COBYLA(evaluations_per_step=1)

    def test_step_counts_evaluations(self):
        cobyla = COBYLA(evaluations_per_step=6)
        cobyla.reset(np.zeros(2))
        step = cobyla.run_step(quadratic)
        assert step.num_evaluations >= 2
        assert step.iteration == 1

    def test_minimize_converges_on_quadratic(self):
        cobyla = COBYLA(initial_trust_radius=0.5, evaluations_per_step=8)
        result = cobyla.minimize(quadratic, np.zeros(3), 40)
        assert quadratic(result.parameters) < 0.05

    def test_monotone_best_parameters(self):
        """The retained parameters never regress to a worse objective."""
        cobyla = COBYLA(evaluations_per_step=4)
        cobyla.reset(np.full(2, 3.0))
        best = np.inf
        for _ in range(20):
            cobyla.run_step(quadratic)
            value = quadratic(cobyla.parameters)
            assert value <= best + 1e-9
            best = min(best, value)

    def test_trust_radius_decays(self):
        cobyla = COBYLA(initial_trust_radius=0.5, trust_decay=0.5)
        cobyla.reset(np.zeros(2))
        cobyla.run_step(quadratic)
        cobyla.run_step(quadratic)
        assert cobyla._trust_radius < 0.5

    def test_reset_restores_trust_radius(self):
        cobyla = COBYLA(initial_trust_radius=0.5, trust_decay=0.5)
        cobyla.reset(np.zeros(2))
        cobyla.run_step(quadratic)
        cobyla.reset(np.zeros(2))
        assert cobyla._trust_radius == 0.5


class TestAskTell:
    def test_spsa_asks_perturbation_pair_at_once(self):
        spsa = SPSA(seed=0, perturbation=0.1)
        spsa.reset(np.zeros(3))
        points = spsa.ask()
        assert len(points) == 2
        # The pair is symmetric about the current iterate.
        np.testing.assert_allclose(points[0] + points[1], np.zeros(3), atol=1e-12)
        step = spsa.tell([quadratic(p) for p in points])
        assert step is not None and step.iteration == 1

    def test_spsa_ask_tell_matches_run_step(self):
        driven, manual = SPSA(seed=5), SPSA(seed=5)
        driven.reset(np.zeros(3))
        manual.reset(np.zeros(3))
        for _ in range(10):
            expected = driven.run_step(quadratic)
            step = manual.tell([quadratic(p) for p in manual.ask()])
        np.testing.assert_array_equal(step.parameters, expected.parameters)
        assert step.loss == expected.loss

    def test_cobyla_asks_one_probe_at_a_time(self):
        cobyla = COBYLA(evaluations_per_step=4)
        cobyla.reset(np.full(2, 3.0))
        step = None
        cycles = 0
        while step is None:
            points = cobyla.ask()
            assert len(points) <= 1
            step = cobyla.tell([quadratic(p) for p in points])
            cycles += 1
        assert cycles == step.num_evaluations >= 2

    def test_cobyla_ask_tell_matches_run_step(self):
        driven, manual = COBYLA(evaluations_per_step=4), COBYLA(evaluations_per_step=4)
        driven.reset(np.full(2, 3.0))
        manual.reset(np.full(2, 3.0))
        for _ in range(5):
            expected = driven.run_step(quadratic)
            step = None
            while step is None:
                step = manual.tell([quadratic(p) for p in manual.ask()])
        np.testing.assert_allclose(step.parameters, expected.parameters)
        assert step.num_evaluations == expected.num_evaluations

    def test_protocol_misuse_raises(self):
        spsa = SPSA(seed=0)
        with pytest.raises(RuntimeError):
            spsa.ask()  # not reset
        spsa.reset(np.zeros(2))
        with pytest.raises(RuntimeError):
            spsa.tell([0.0, 0.0])  # tell without ask
        points = spsa.ask()
        with pytest.raises(RuntimeError):
            spsa.ask()  # double ask
        with pytest.raises(ValueError):
            spsa.tell([1.0])  # wrong arity

    def test_cancel_discards_pending_step(self):
        for optimizer in (SPSA(seed=0), COBYLA(evaluations_per_step=4)):
            optimizer.reset(np.zeros(2))
            optimizer.ask()
            optimizer.cancel()
            assert optimizer.iteration == 0
            step = None
            while step is None:
                step = optimizer.tell([quadratic(p) for p in optimizer.ask()])
            assert step.iteration == 1

    def test_step_objective_entry_point_is_deprecated(self):
        spsa = SPSA(seed=0)
        spsa.reset(np.zeros(2))
        with pytest.warns(DeprecationWarning, match="deprecated"):
            step = spsa.step(quadratic)
        assert step.iteration == 1
