"""Tests for the benchmark Hamiltonian families."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamiltonians import (
    IEEE14_BRANCHES,
    LOAD_SCENARIOS,
    MOLECULES,
    MolecularFamily,
    cut_value,
    edge_weight_variance,
    get_molecule,
    hartree_fock_bitstring,
    heisenberg_xxz_chain,
    ieee14_graph,
    load_scaled_graphs,
    max_cut_brute_force,
    maxcut_cost_hamiltonian,
    maxcut_minimization_hamiltonian,
    qubo_to_ising,
    tfim_field_scan,
    transverse_field_ising_chain,
    xxz_anisotropy_scan,
)
from repro.quantum.exact import ground_state, ground_state_energy


class TestMolecularFamilies:
    def test_catalog_contents(self):
        assert set(MOLECULES) == {"H2", "LiH", "BeH2", "HF", "C2H2"}
        assert get_molecule("lih").name == "LiH"
        with pytest.raises(ValueError):
            get_molecule("H2O")

    def test_term_counts_match_spec(self):
        for name in ("H2", "LiH", "HF"):
            spec = MOLECULES[name]
            family = MolecularFamily(spec)
            hamiltonian = family.hamiltonian(spec.equilibrium_bond)
            assert hamiltonian.num_qubits == spec.num_qubits
            assert hamiltonian.num_terms <= spec.num_terms
            assert hamiltonian.num_terms >= spec.num_terms - 10
            assert hamiltonian.is_hermitian()

    def test_relative_ordering_matches_paper(self):
        sizes = {name: MOLECULES[name].num_terms for name in MOLECULES}
        assert sizes["H2"] < sizes["LiH"] <= sizes["HF"] < sizes["BeH2"] < sizes["C2H2"]

    def test_hamiltonian_varies_smoothly(self):
        family = MolecularFamily(get_molecule("LiH"))
        h1 = family.hamiltonian(1.5)
        h2 = family.hamiltonian(1.51)
        h3 = family.hamiltonian(1.9)
        from repro.core.similarity import coefficient_l1_distance

        assert coefficient_l1_distance(h1, h2) < coefficient_l1_distance(h1, h3)

    def test_deterministic_generation(self):
        first = MolecularFamily(get_molecule("HF")).hamiltonian(0.95)
        second = MolecularFamily(get_molecule("HF")).hamiltonian(0.95)
        assert first.equals(second)

    def test_pes_has_minimum_near_equilibrium(self):
        spec = get_molecule("H2")
        family = MolecularFamily(spec)
        lengths = np.linspace(0.4, 2.2, 10)
        energies = [ground_state_energy(family.hamiltonian(float(r))) for r in lengths]
        best = lengths[int(np.argmin(energies))]
        assert 0.5 < best < 1.3
        # Dissociation limit should be higher than the minimum.
        assert energies[-1] > min(energies)

    def test_invalid_bond_length(self):
        family = MolecularFamily(get_molecule("H2"))
        with pytest.raises(ValueError):
            family.hamiltonian(0.0)

    def test_scan_default_instances(self):
        family = MolecularFamily(get_molecule("LiH"))
        scan = family.scan()
        assert len(scan) == 10
        assert scan[1][0] - scan[0][0] == pytest.approx(0.03)
        h2_scan = MolecularFamily(get_molecule("H2")).scan()
        assert len(h2_scan) == 5

    def test_hartree_fock_bitstring(self):
        assert hartree_fock_bitstring(6, 2) == "110000"
        with pytest.raises(ValueError):
            hartree_fock_bitstring(4, 5)
        family = MolecularFamily(get_molecule("LiH"))
        assert family.hartree_fock_bitstring().count("1") == get_molecule("LiH").num_particles


class TestSpinModels:
    def test_xxz_term_count(self):
        operator = heisenberg_xxz_chain(5, 1.0)
        assert operator.num_terms == 3 * 4
        periodic = heisenberg_xxz_chain(5, 1.0, periodic=True)
        assert periodic.num_terms == 3 * 5

    def test_xxz_known_two_site_energy(self):
        # Two-site Heisenberg (Δ=1): singlet energy is -3J.
        operator = heisenberg_xxz_chain(2, 1.0)
        assert ground_state_energy(operator) == pytest.approx(-3.0)

    def test_tfim_limits(self):
        # h = 0: classical Ising, ground energy -(N-1)J.
        assert ground_state_energy(transverse_field_ising_chain(4, 0.0)) == pytest.approx(-3.0)
        # J = 0 equivalent: huge field dominates, E ≈ -h*N.
        strong_field = transverse_field_ising_chain(4, 50.0)
        assert ground_state_energy(strong_field) == pytest.approx(-200.0, rel=0.01)

    def test_scans(self):
        assert len(xxz_anisotropy_scan(4)) == 10
        scan = tfim_field_scan(4, [0.5, 1.0, 1.5])
        assert [h for h, _ in scan] == [0.5, 1.0, 1.5]

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            heisenberg_xxz_chain(1, 1.0)
        with pytest.raises(ValueError):
            transverse_field_ising_chain(1, 1.0)

    def test_gap_closes_near_tfim_transition(self):
        # Deep in the paramagnetic phase the gap is ~2(h-J); it shrinks toward
        # the critical point h = J.
        paramagnetic = ground_state(transverse_field_ising_chain(6, 2.5), compute_gap=True)
        critical = ground_state(transverse_field_ising_chain(6, 1.0), compute_gap=True)
        assert critical.gap < paramagnetic.gap


class TestMaxCut:
    @pytest.fixture
    def square_graph(self):
        graph = nx.Graph()
        graph.add_weighted_edges_from([(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (3, 0, 2.0)])
        return graph

    def test_cost_hamiltonian_eigenvalue_equals_max_cut(self, square_graph):
        cost = maxcut_cost_hamiltonian(square_graph)
        best_value, best_bits = max_cut_brute_force(square_graph)
        # Highest eigenvalue of the cost Hamiltonian equals the max cut weight.
        minimization = maxcut_minimization_hamiltonian(square_graph)
        assert -ground_state_energy(minimization) == pytest.approx(best_value)
        assert cut_value(square_graph, best_bits) == pytest.approx(best_value)

    def test_cut_value_with_dict_assignment(self, square_graph):
        value = cut_value(square_graph, {0: 0, 1: 1, 2: 0, 3: 1})
        assert value == pytest.approx(6.0)

    def test_bitstring_length_validation(self, square_graph):
        with pytest.raises(ValueError):
            cut_value(square_graph, "01")

    def test_qubo_to_ising_matches_enumeration(self):
        rng = np.random.default_rng(3)
        q = rng.normal(size=(3, 3))
        operator = qubo_to_ising(q)
        # Check every bitstring: x^T Q x equals <x|H|x>.
        for bits in range(8):
            x = np.array([(bits >> (2 - i)) & 1 for i in range(3)], dtype=float)
            expected = float(x @ (0.5 * (q + q.T)) @ x)
            from repro.quantum.statevector import Statevector

            state = Statevector.computational_basis(3, bits)
            assert operator.expectation(state.data) == pytest.approx(expected, abs=1e-9)

    def test_qubo_validation(self):
        with pytest.raises(ValueError):
            qubo_to_ising(np.zeros((2, 3)))


class TestIEEE14:
    def test_topology(self):
        graph = ieee14_graph()
        assert graph.number_of_nodes() == 14
        assert graph.number_of_edges() == len(IEEE14_BRANCHES) == 20
        assert nx.is_connected(graph)

    def test_load_scaling_changes_weights(self):
        light = ieee14_graph(0.5)
        heavy = ieee14_graph(1.5)
        light_total = sum(d["weight"] for _, _, d in light.edges(data=True))
        heavy_total = sum(d["weight"] for _, _, d in heavy.edges(data=True))
        assert heavy_total > light_total

    def test_load_scenarios_variance_ordering(self):
        variances = []
        for scenario in LOAD_SCENARIOS:
            graphs = [g for _, g in load_scaled_graphs(scenario.load_range, 10)]
            variances.append(edge_weight_variance(graphs))
        # Wider load ranges must produce larger edge-weight variance (Fig. 12).
        assert variances[0] > variances[1] > variances[2]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ieee14_graph(0.0)
        with pytest.raises(ValueError):
            load_scaled_graphs((1.5, 0.5))
        with pytest.raises(ValueError):
            edge_weight_variance([])

    @given(st.floats(0.5, 1.5))
    @settings(max_examples=20, deadline=None)
    def test_weights_always_positive(self, scale):
        graph = ieee14_graph(scale)
        assert all(d["weight"] > 0 for _, _, d in graph.edges(data=True))
