"""Tests for the named benchmark suites."""

from __future__ import annotations

import pytest

from repro.ansatz import HardwareEfficientAnsatz, MultiAngleQAOAAnsatz, UCCSDAnsatz
from repro.hamiltonians import (
    BenchmarkSuite,
    build_suite,
    chemistry_suite,
    ising_large_suite,
    maxcut_ieee14_suite,
    tfim_suite,
    xxz_suite,
)


class TestChemistrySuite:
    def test_h2_defaults_to_uccsd(self):
        suite = chemistry_suite("H2")
        assert isinstance(suite.ansatz, UCCSDAnsatz)
        assert suite.num_tasks == 5
        assert suite.kind == "chemistry"

    def test_lih_defaults_to_hardware_efficient(self):
        suite = chemistry_suite("LiH")
        assert isinstance(suite.ansatz, HardwareEfficientAnsatz)
        assert suite.num_tasks == 10
        assert suite.metadata["paper_num_terms"] == 496

    def test_tasks_share_initial_bitstring(self):
        suite = chemistry_suite("HF")
        bitstrings = {task.initial_bitstring for task in suite.tasks}
        assert len(bitstrings) == 1

    def test_custom_bond_lengths(self):
        suite = chemistry_suite("LiH", bond_lengths=[1.5, 1.6])
        assert suite.num_tasks == 2
        assert suite.tasks[0].scan_parameter == pytest.approx(1.5)


class TestSpinSuites:
    def test_xxz_suite(self):
        suite = xxz_suite(num_sites=4)
        assert suite.num_tasks == 10
        assert suite.num_qubits == 4
        assert all("XXZ" in task.name for task in suite.tasks)

    def test_tfim_suite_custom_fields(self):
        suite = tfim_suite(num_sites=4, fields=[0.9, 1.1])
        assert suite.num_tasks == 2

    def test_ising_large_suite(self):
        suite = ising_large_suite(num_sites=12, fields=[0.8, 1.2])
        assert suite.num_qubits == 12
        assert suite.metadata["simulator"] == "pauli-propagation"


class TestMaxCutSuite:
    def test_scenario_by_name(self):
        suite = maxcut_ieee14_suite("0.9:1.1", num_instances=4)
        assert suite.num_tasks == 4
        assert suite.num_qubits == 14
        assert isinstance(suite.ansatz, MultiAngleQAOAAnsatz)
        assert suite.metadata["edge_weight_variance"] > 0

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            maxcut_ieee14_suite("2:3")


class TestBuildSuite:
    @pytest.mark.parametrize(
        "name, expected_kind",
        [("H2", "chemistry"), ("xxz", "physics"), ("tfim", "physics"), ("maxcut", "qaoa")],
    )
    def test_dispatch(self, name, expected_kind):
        suite = build_suite(name) if name != "maxcut" else build_suite(name, num_instances=3)
        assert isinstance(suite, BenchmarkSuite)
        assert suite.kind == expected_kind

    def test_unknown_suite(self):
        with pytest.raises(ValueError):
            build_suite("nonexistent")

    def test_hamiltonians_accessor(self):
        suite = tfim_suite(num_sites=4, fields=[1.0])
        assert len(suite.hamiltonians()) == 1
