"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import TreeVQAConfig, VQATask
from repro.hamiltonians import tfim_suite, transverse_field_ising_chain
from repro.quantum import PauliOperator, QuantumCircuit, Statevector


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def bell_state() -> Statevector:
    circuit = QuantumCircuit(2).h(0).cx(0, 1)
    return Statevector.zero_state(2).evolve(circuit)


@pytest.fixture
def small_hamiltonian() -> PauliOperator:
    return PauliOperator.from_terms([("ZZ", 1.0), ("XI", 0.5), ("IX", 0.5)])


@pytest.fixture
def tfim_tasks() -> list[VQATask]:
    """Three small transverse-field Ising tasks (4 qubits)."""
    return [
        VQATask(
            name=f"tfim@{field:.2f}",
            hamiltonian=transverse_field_ising_chain(4, field),
            scan_parameter=field,
        )
        for field in (0.8, 1.0, 1.2)
    ]


@pytest.fixture
def small_ansatz() -> HardwareEfficientAnsatz:
    return HardwareEfficientAnsatz(4, num_layers=1)


@pytest.fixture
def fast_config() -> TreeVQAConfig:
    """A configuration small enough for unit tests."""
    return TreeVQAConfig(
        max_rounds=25,
        warmup_iterations=5,
        window_size=4,
        epsilon_split=1e-3,
        optimizer_kwargs={"learning_rate": 0.3, "perturbation": 0.15},
        seed=3,
    )


@pytest.fixture
def small_suite():
    """A tiny TFIM benchmark suite."""
    return tfim_suite(num_sites=4, fields=[0.8, 1.0, 1.2], num_ansatz_layers=1)
