"""End-to-end tests of the asyncio job service (:mod:`repro.service`).

The load-bearing invariant: N concurrent jobs multiplexed onto **one**
shared backend produce trajectories bit-identical to running each job
alone — whatever the interleaving, the estimator, or the pool size.  All
async tests run through plain ``asyncio.run()`` inside sync test functions
(no pytest-asyncio dependency); the ``timeout`` marker is enforced in CI
where pytest-timeout is installed.
"""

from __future__ import annotations

import asyncio
import time
import warnings

import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import TreeVQAConfig, TreeVQAController, VQATask
from repro.core.controller import live_controller_count
from repro.hamiltonians import transverse_field_ising_chain
from repro.service import (
    FairShareDispatcher,
    Job,
    JobCancelledError,
    JobState,
    RoundStream,
    RoundUpdate,
    ServiceClosedError,
    ServiceError,
    TreeVQAService,
)

pytestmark = pytest.mark.timeout(600)


def make_tasks(fields=(0.8, 1.0, 1.2)) -> list[VQATask]:
    return [
        VQATask(
            name=f"tfim@{field:.2f}",
            hamiltonian=transverse_field_ising_chain(4, field),
            scan_parameter=field,
        )
        for field in fields
    ]


def make_ansatz() -> HardwareEfficientAnsatz:
    return HardwareEfficientAnsatz(4, num_layers=1)


def make_config(seed=3, *, estimator="exact", max_rounds=4, **overrides) -> TreeVQAConfig:
    base = dict(
        max_rounds=max_rounds,
        warmup_iterations=2,
        window_size=3,
        epsilon_split=1e-3,
        optimizer_kwargs={"learning_rate": 0.3, "perturbation": 0.15},
        seed=seed,
        estimator=estimator,
    )
    if estimator == "sampling":
        base["shots_per_pauli_term"] = 64
    base.update(overrides)
    return TreeVQAConfig(**base)


def fingerprint(result) -> dict:
    """Exact per-task trajectory + outcome fingerprint (bit-identity checks)."""
    return {
        outcome.task.name: (
            outcome.energy,
            outcome.source,
            tuple(result.trajectories[outcome.task.name].energies),
            tuple(result.trajectories[outcome.task.name].cumulative_shots),
        )
        for outcome in result.outcomes
    }


def solo_fingerprint(seed, **config_kwargs) -> dict:
    controller = TreeVQAController(
        make_tasks(), make_ansatz(), make_config(seed, **config_kwargs)
    )
    return fingerprint(controller.run())


class TestSingleJob:
    def test_job_matches_controller_run_and_streams_every_round(self):
        reference = solo_fingerprint(3)

        async def scenario():
            async with TreeVQAService() as service:
                job = await service.submit(make_tasks(), make_ansatz(), make_config(3))
                updates = [update async for update in job.updates]
                result = await job.result()
                return job, updates, result

        job, updates, result = asyncio.run(scenario())
        assert fingerprint(result) == reference
        assert job.state is JobState.DONE
        assert job.done
        # One update per executed round, in strict round order.
        assert [update.round_index for update in updates] == list(
            range(1, result.total_rounds + 1)
        )
        assert all(isinstance(update, RoundUpdate) for update in updates)
        assert all(update.job_id == job.job_id for update in updates)
        # Shot accounting is consistent between the stream and the result.
        assert updates[-1].total_shots == result.ledger.total == job.shots_used
        assert sum(update.shots_this_round for update in updates) == result.ledger.total
        assert job.rounds_completed == result.total_rounds
        # Round payloads carry the per-cluster and per-task losses.
        assert updates[0].mixed_losses
        assert set(updates[0].individual_losses) == {task.name for task in make_tasks()}

    def test_result_await_before_completion_and_repeated_awaits(self):
        async def scenario():
            async with TreeVQAService() as service:
                job = await service.submit(make_tasks(), make_ansatz(), make_config(3))
                first = await job.result()  # await while the job still runs
                second = await job.result()  # result is replayable
                return first, second

        first, second = asyncio.run(scenario())
        assert first is second

    def test_service_ledger_aggregates_every_job(self):
        async def scenario():
            async with TreeVQAService() as service:
                jobs = [
                    await service.submit(
                        make_tasks(), make_ansatz(), make_config(seed), job_id=f"j{seed}"
                    )
                    for seed in (3, 4)
                ]
                await asyncio.gather(*(job.result() for job in jobs))
                return service.ledger, service.stats(), jobs

        ledger, stats, jobs = asyncio.run(scenario())
        assert ledger.total == sum(job.shots_used for job in jobs)
        assert set(ledger.sources()) == {"j3", "j4"}
        for job in jobs:
            assert ledger.total_for(job.job_id) == job.shots_used
        assert stats["jobs"] == {"done": 2}
        assert stats["total_shots"] == ledger.total
        assert stats["queued"] == 0 and stats["running"] == 0


class TestConcurrencyParity:
    def test_concurrent_jobs_bit_identical_to_solo_runs_in_process(self):
        references = {seed: solo_fingerprint(seed) for seed in (3, 4, 5)}

        async def scenario():
            async with TreeVQAService() as service:
                jobs = {
                    seed: await service.submit(
                        make_tasks(), make_ansatz(), make_config(seed)
                    )
                    for seed in references
                }
                results = await asyncio.gather(
                    *(job.result() for job in jobs.values())
                )
                return dict(zip(jobs, results))

        for seed, result in asyncio.run(scenario()).items():
            assert fingerprint(result) == references[seed], f"seed {seed} diverged"

    @pytest.mark.timeout(600)
    def test_four_concurrent_jobs_on_shared_pool_bit_identical(self):
        """The acceptance scenario: four jobs — one using the sampling
        estimator (its own RNG streams) — multiplex onto one shared
        two-worker pool and every trajectory is bit-identical to solo."""
        specs = {
            "j-exact-3": dict(seed=3),
            "j-exact-4": dict(seed=4),
            "j-exact-5": dict(seed=5),
            "j-sampling-7": dict(seed=7, estimator="sampling"),
        }
        references = {
            name: solo_fingerprint(**kwargs) for name, kwargs in specs.items()
        }

        async def scenario():
            async with TreeVQAService(workers=2) as service:
                jobs = {
                    name: await service.submit(
                        make_tasks(), make_ansatz(), make_config(**kwargs), job_id=name
                    )
                    for name, kwargs in specs.items()
                }
                results = await asyncio.gather(
                    *(job.result() for job in jobs.values())
                )
                return dict(zip(jobs, results)), service.stats()

        results, stats = asyncio.run(scenario())
        for name, result in results.items():
            assert fingerprint(result) == references[name], f"{name} diverged"
        # All four jobs really multiplexed onto one pool, and the pool's
        # per-worker program caches amortized shipping across jobs.
        pool = stats["backend_pool"]
        assert pool["workers"] == 2
        assert pool["program_reuses"] > 0

    def test_rounds_interleave_fair_share(self):
        """With two running jobs, the dispatcher alternates their rounds:
        the service ledger's charge sequence never serves the same job
        twice in a row while both jobs are still active."""

        async def scenario():
            async with TreeVQAService() as service:
                job_a = await service.submit(
                    make_tasks(), make_ansatz(), make_config(3), job_id="a"
                )
                job_b = await service.submit(
                    make_tasks(), make_ansatz(), make_config(4), job_id="b"
                )
                await asyncio.gather(job_a.result(), job_b.result())
                return [record.source for record in service.ledger.records]

        sources = asyncio.run(scenario())
        assert set(sources) == {"a", "b"}
        # Job "a" may run rounds alone before "b" is submitted (the loop
        # starts dispatching immediately); once both are in the rotation the
        # round-robin alternates strictly until one of them finishes.
        first_b = sources.index("b")
        last_active = min(
            max(i for i, s in enumerate(sources) if s == source) for source in ("a", "b")
        )
        overlap = sources[first_b : last_active + 1]
        assert all(x != y for x, y in zip(overlap, overlap[1:])), sources


class TestCancellation:
    def test_cancel_while_queued_never_runs(self):
        async def scenario():
            async with TreeVQAService(max_running_jobs=1) as service:
                running = await service.submit(
                    make_tasks(), make_ansatz(), make_config(3)
                )
                queued = await service.submit(
                    make_tasks(), make_ansatz(), make_config(4)
                )
                queued.cancel()
                await running.result()
                with pytest.raises(JobCancelledError):
                    await queued.result()
                leftovers = [update async for update in queued.updates]
                return queued, leftovers

        queued, leftovers = asyncio.run(scenario())
        assert queued.state is JobState.CANCELLED
        assert queued.rounds_completed == 0
        assert leftovers == []

    def test_cancel_mid_run_stops_at_round_boundary(self):
        async def scenario():
            async with TreeVQAService() as service:
                victim = await service.submit(
                    make_tasks(), make_ansatz(), make_config(3, max_rounds=50)
                )
                bystander = await service.submit(
                    make_tasks(), make_ansatz(), make_config(4)
                )
                seen = []
                async for update in victim.updates:
                    seen.append(update)
                    victim.cancel()
                    victim.cancel()  # idempotent
                bystander_result = await bystander.result()
                with pytest.raises(JobCancelledError):
                    await victim.result()
                return victim, seen, bystander_result

        victim, seen, bystander_result = asyncio.run(scenario())
        assert victim.state is JobState.CANCELLED
        # The in-flight round completed and streamed; nothing ran after it.
        assert 1 <= victim.rounds_completed < 50
        assert len(seen) == victim.rounds_completed
        # The co-tenant was untouched by the cancellation.
        assert fingerprint(bystander_result) == solo_fingerprint(4)

    def test_cancel_after_done_is_a_noop(self):
        async def scenario():
            async with TreeVQAService() as service:
                job = await service.submit(make_tasks(), make_ansatz(), make_config(3))
                result = await job.result()
                job.cancel()
                return job, result, await job.result()

        job, result, replay = asyncio.run(scenario())
        assert job.state is JobState.DONE
        assert replay is result


class TestSharedResourceLifecycle:
    def test_finished_job_leaves_backend_usable_for_later_submissions(self):
        async def scenario():
            async with TreeVQAService() as service:
                first = await service.submit(make_tasks(), make_ansatz(), make_config(3))
                await first.result()
                backend = service.backend
                second = await service.submit(make_tasks(), make_ansatz(), make_config(4))
                await second.result()
                assert service.backend is backend
                return fingerprint(await second.result())

        assert asyncio.run(scenario()) == solo_fingerprint(4)

    def test_aclose_closes_pool_exactly_once_and_controllers_unregister(self):
        baseline = live_controller_count()

        async def scenario():
            service = TreeVQAService(workers=2)
            job = await service.submit(make_tasks(), make_ansatz(), make_config(3))
            await job.result()
            backend = service.backend
            # The finishing job must not have torn the shared pool down.
            assert backend._pool is not None
            await service.aclose()
            await service.aclose()  # idempotent
            assert backend._pool is None
            with pytest.raises(ServiceClosedError):
                await service.submit(make_tasks(), make_ansatz(), make_config(4))

        asyncio.run(scenario())
        assert live_controller_count() == baseline

    def test_aclose_drains_queued_jobs(self):
        async def scenario():
            service = TreeVQAService(max_running_jobs=1)
            jobs = [
                await service.submit(
                    make_tasks(), make_ansatz(), make_config(seed)
                )
                for seed in (3, 4)
            ]
            await service.aclose()
            return jobs

        jobs = asyncio.run(scenario())
        assert all(job.state is JobState.DONE for job in jobs)


class TestWorkerDeathDuringService:
    def test_pool_worker_death_respawns_and_stays_bit_identical(self):
        reference = solo_fingerprint(4)

        async def scenario():
            async with TreeVQAService(workers=2) as service:
                warmup = await service.submit(
                    make_tasks(), make_ansatz(), make_config(3, max_rounds=1)
                )
                await warmup.result()
                # Kill one pool worker between dispatches; the next round's
                # batch detects the death, warns, respawns the slot, and
                # stays fully parallel — no in-process fallback.
                victim = service.backend._pool[0].endpoint._process
                victim.kill()
                deadline = time.monotonic() + 5.0
                while victim.is_alive() and time.monotonic() < deadline:
                    await asyncio.sleep(0.01)
                with pytest.warns(RuntimeWarning, match="respawning"):
                    job = await service.submit(
                        make_tasks(), make_ansatz(), make_config(4)
                    )
                    result = await job.result()
                return (
                    fingerprint(result),
                    result.metadata.get("transport"),
                    service.backend.fallback_batches,
                    service.stats()["backend_pool"],
                )

        job_fingerprint, transport_meta, fallback_batches, pool_stats = asyncio.run(
            scenario()
        )
        assert job_fingerprint == reference
        assert fallback_batches == 0
        # The respawn is recorded in both the job's result metadata and the
        # service-level pool stats.
        assert transport_meta is not None and transport_meta["worker_respawns"] >= 1
        assert pool_stats["worker_respawns"] >= 1

    def test_worker_killed_mid_round_with_two_streaming_jobs(self):
        reference_a = solo_fingerprint(4)
        reference_b = solo_fingerprint(5)

        async def scenario():
            async with TreeVQAService(workers=2, worker_timeout_s=60.0) as service:
                # The reroute/respawn warnings fire on the service's executor
                # thread at an arbitrary point of either job's rounds; record
                # rather than assert-match them (the counters below are the
                # deterministic signal).
                with warnings.catch_warnings():
                    warnings.simplefilter("always")
                    job_a = await service.submit(
                        make_tasks(), make_ansatz(), make_config(4)
                    )
                    job_b = await service.submit(
                        make_tasks(), make_ansatz(), make_config(5)
                    )
                    # Let the jobs start streaming, then kill a pool worker
                    # mid-run while both are in flight.
                    async for _ in job_a.updates:
                        break
                    assert not job_a.done and not job_b.done
                    victim = service.backend._pool[1].endpoint._process
                    victim.kill()
                    result_a = await job_a.result()
                    result_b = await job_b.result()
                return (
                    fingerprint(result_a),
                    fingerprint(result_b),
                    result_a.metadata.get("transport"),
                    result_b.metadata.get("transport"),
                    service.stats()["backend_pool"],
                )

        fp_a, fp_b, meta_a, meta_b, pool_stats = asyncio.run(scenario())
        # Both jobs finish and match their solo runs bit-for-bit despite the
        # mid-run worker kill.
        assert fp_a == reference_a
        assert fp_b == reference_b
        # The pool healed (respawn recorded service-wide), and every job
        # constructed before the kill carries it in its transport metadata.
        assert pool_stats["worker_respawns"] >= 1
        assert meta_a is not None and meta_a["worker_respawns"] >= 1
        assert meta_b is not None and meta_b["worker_respawns"] >= 1


class TestSubmissionValidation:
    def _submit_error(self, config) -> str:
        async def scenario():
            async with TreeVQAService() as service:
                with pytest.raises(ServiceError) as excinfo:
                    await service.submit(make_tasks(), make_ansatz(), config)
                return str(excinfo.value)

        return asyncio.run(scenario())

    def test_rejects_execution_workers(self):
        message = self._submit_error(make_config(3, execution_workers=2))
        assert "execution_workers" in message and "TreeVQAService(workers=" in message

    def test_rejects_worker_timeout(self):
        message = self._submit_error(
            make_config(3, execution_workers=2, worker_timeout_s=5.0)
        )
        assert "worker_timeout_s" in message and "shared pool" in message

    def test_rejects_cache_sizes(self):
        message = self._submit_error(make_config(3, program_cache_size=512))
        assert "cache" in message and "TreeVQAService" in message
        message = self._submit_error(make_config(3, measurement_plan_cache_size=64))
        assert "cache" in message

    def test_rejects_backend_factory(self):
        from repro.quantum.backend import StatevectorBackend

        message = self._submit_error(make_config(3, backend_factory=StatevectorBackend))
        assert "backend_factory" in message

    def test_rejects_backend_name_mismatch(self):
        message = self._submit_error(make_config(3, backend="pauli_propagation"))
        assert "pauli_propagation" in message and "statevector" in message

    def test_rejects_duplicate_job_id(self):
        async def scenario():
            async with TreeVQAService() as service:
                await service.submit(
                    make_tasks(), make_ansatz(), make_config(3), job_id="dup"
                )
                with pytest.raises(ServiceError, match="duplicate"):
                    await service.submit(
                        make_tasks(), make_ansatz(), make_config(4), job_id="dup"
                    )

        asyncio.run(scenario())

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="unknown backend"):
            TreeVQAService(backend="no-such-backend")
        with pytest.raises(ValueError, match="workers"):
            TreeVQAService(workers=0)
        with pytest.raises(ValueError):
            TreeVQAService(max_running_jobs=0)
        with pytest.raises(ValueError):
            TreeVQAService(max_inflight_shots=0)


class TestBackpressure:
    def test_max_running_jobs_queues_submissions_fifo(self):
        async def scenario():
            async with TreeVQAService(max_running_jobs=1) as service:
                first = await service.submit(
                    make_tasks(), make_ansatz(), make_config(3), job_id="first"
                )
                second = await service.submit(
                    make_tasks(), make_ansatz(), make_config(4), job_id="second"
                )
                # While the first job runs, the second stays queued.
                async for _ in first.updates:
                    break
                queued_state = second.state
                await asyncio.gather(first.result(), second.result())
                sources = [record.source for record in service.ledger.records]
                return queued_state, sources

        queued_state, sources = asyncio.run(scenario())
        assert queued_state is JobState.QUEUED
        # Strictly sequential: every "first" round precedes every "second".
        assert sources == sorted(sources, key=lambda s: s != "first")

    def test_max_inflight_shots_pauses_admission_without_deadlock(self):
        async def scenario():
            # Cap far below one job's own footprint: the first job must
            # still be admitted (idle rotation always admits) and run to
            # completion; the second waits for its capacity release.
            async with TreeVQAService(max_inflight_shots=1) as service:
                first = await service.submit(
                    make_tasks(), make_ansatz(), make_config(3), job_id="first"
                )
                second = await service.submit(
                    make_tasks(), make_ansatz(), make_config(4), job_id="second"
                )
                await asyncio.gather(first.result(), second.result())
                return [record.source for record in service.ledger.records]

        sources = asyncio.run(scenario())
        assert sources == sorted(sources, key=lambda s: s != "first")


class TestDispatcherUnit:
    """Synchronous bookkeeping tests of FairShareDispatcher (stub jobs)."""

    @staticmethod
    def _stub_jobs(count):
        async def build():
            return [Job(f"job-{i}", controller=None) for i in range(count)]

        return asyncio.run(build())

    def test_round_robin_rotation(self):
        dispatcher = FairShareDispatcher()
        jobs = self._stub_jobs(3)
        for job in jobs:
            dispatcher.submit(job)
        assert dispatcher.admit_ready() == jobs
        served = []
        for _ in range(6):
            job = dispatcher.next_round()
            served.append(job.job_id)
            dispatcher.requeue(job)
        assert served == ["job-0", "job-1", "job-2"] * 2

    def test_caps_and_capacity_release(self):
        dispatcher = FairShareDispatcher(max_running_jobs=2)
        jobs = self._stub_jobs(3)
        for job in jobs:
            dispatcher.submit(job)
        assert dispatcher.admit_ready() == jobs[:2]
        assert dispatcher.num_queued == 1
        dispatcher.finish(jobs[0])
        assert dispatcher.admit_ready() == [jobs[2]]
        assert dispatcher.num_queued == 0

    def test_inflight_shot_cap_blocks_but_never_deadlocks(self):
        dispatcher = FairShareDispatcher(max_inflight_shots=100)
        jobs = self._stub_jobs(2)
        for job in jobs:
            dispatcher.submit(job)
        assert dispatcher.admit_ready() == [jobs[0], jobs[1]]  # both under cap
        jobs[0].shots_used = 500  # over cap now
        late = self._stub_jobs(1)[0]
        dispatcher.submit(late)
        assert dispatcher.admit_ready() == []
        dispatcher.finish(jobs[0])
        dispatcher.finish(jobs[1])
        # Rotation idle: the cap must not starve the queue.
        assert dispatcher.admit_ready() == [late]

    def test_cancelled_queued_job_is_skipped(self):
        dispatcher = FairShareDispatcher()
        jobs = self._stub_jobs(2)
        for job in jobs:
            dispatcher.submit(job)
        jobs[0].cancel()
        assert dispatcher.admit_ready() == [jobs[1]]
        assert jobs[0].state is JobState.CANCELLED


class TestRoundStream:
    def test_publish_then_close_delivers_in_order(self):
        async def scenario():
            stream = RoundStream()
            updates = [
                RoundUpdate(
                    job_id="j",
                    round_index=i,
                    mixed_losses={},
                    individual_losses={},
                    shots_this_round=0,
                    total_shots=0,
                    num_active_clusters=1,
                    splits=(),
                )
                for i in (1, 2, 3)
            ]
            for update in updates:
                stream.publish(update)
            stream.close()
            stream.close()  # idempotent
            drained = [update async for update in stream]
            drained_again = [update async for update in stream]
            return updates, drained, drained_again

        updates, drained, drained_again = asyncio.run(scenario())
        assert drained == updates
        assert drained_again == []  # the close sentinel re-arms

    def test_publish_after_close_raises(self):
        async def scenario():
            stream = RoundStream()
            stream.close()
            assert stream.closed
            with pytest.raises(RuntimeError, match="closed"):
                stream.publish(None)

        asyncio.run(scenario())
