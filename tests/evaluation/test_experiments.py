"""Smoke and shape tests for the figure/table experiment runners.

These use deliberately tiny presets so the whole module runs in tens of
seconds; the benchmark harness (``benchmarks/``) runs the real "fast" presets
and records the headline numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.experiments import (
    Preset,
    build_vqe_suite,
    default_config,
    format_figure13,
    format_figure4,
    format_figure6,
    format_table1,
    get_preset,
    run_comparison,
    run_figure13,
    run_figure4,
    run_figure4a,
    run_figure6_panel,
    run_large_scale_benchmark,
    run_table1,
)
from repro.evaluation.experiments.figure14 import run_window_size_sweep
from repro.evaluation.experiments.figure6 import Figure6Result
from repro.evaluation.experiments.figure7 import run_figure7_panel

TINY = Preset(
    name="fast", num_tasks=3, max_rounds=40, baseline_iterations=40,
    chemistry_qubits_cap=6, spin_sites=4, warmup_iterations=6, window_size=4,
)


class TestPresetsAndSuites:
    def test_get_preset(self):
        assert get_preset("fast").name == "fast"
        assert get_preset(TINY) is TINY
        with pytest.raises(ValueError):
            get_preset("enormous")

    def test_build_vqe_suites(self):
        for name in ("LiH", "XXZ", "TFIM", "H2"):
            suite = build_vqe_suite(name, TINY)
            assert suite.num_tasks >= 3 or name == "H2"
        with pytest.raises(ValueError):
            build_vqe_suite("nope", TINY)

    def test_default_config_optimizers(self):
        assert default_config(TINY).optimizer == "spsa"
        assert default_config(TINY, optimizer="cobyla").optimizer == "cobyla"


class TestTable1AndFigure4:
    def test_table1_rows(self):
        rows = run_table1(("H2", "LiH"))
        assert [row.molecule for row in rows] == ["H2", "LiH"]
        assert rows[1].paper_num_terms == 496
        assert "Table 1" in format_table1(rows)

    def test_figure4a_amplitudes_vary_smoothly(self):
        rows = run_figure4a(bond_lengths=(0.6, 0.7, 1.8))
        assert len(rows) == 3
        for row in rows:
            assert all(0 <= amp <= 1 for amp in row.amplitudes.values())

    def test_figure4_heatmaps_and_correlation(self):
        result = run_figure4(bond_lengths=(1.4, 1.5, 1.6, 2.0, 2.4))
        assert result.overlap_matrix.shape == (5, 5)
        assert result.hamiltonian_similarity.shape == (5, 5)
        np.testing.assert_allclose(np.diag(result.overlap_matrix), 1.0)
        # The paper's claim: the coefficient metric tracks ground-state overlap.
        assert result.correlation() > 0.3
        assert "Fig. 4b" in format_figure4(result)


class TestComparisonRunners:
    def test_run_comparison_shapes(self):
        suite = build_vqe_suite("TFIM", TINY)
        config = default_config(TINY, seed=3)
        comparison = run_comparison(suite, config, baseline_iterations=TINY.baseline_iterations)
        assert comparison.treevqa.total_shots > 0
        assert comparison.baseline.total_shots > 0
        assert set(comparison.treevqa.final_fidelities()) == {t.name for t in suite.tasks}

    def test_figure6_panel_savings_positive(self):
        panel = run_figure6_panel("TFIM", TINY, seed=3)
        assert panel.thresholds == sorted(panel.thresholds)
        # The tiny preset only gets part-way to convergence; the benchmark
        # harness exercises the real "fast"/"full" presets.
        assert panel.max_common_fidelity > 0.3
        usable = [p.savings_ratio for p in panel.points if p.savings_ratio is not None]
        assert usable, "no threshold was reached by both methods"
        # TreeVQA should save shots (allow a little slack for the tiny preset).
        assert max(usable) > 1.0
        text = format_figure6(Figure6Result(panels=[panel]))
        assert "Fig. 6" in text

    def test_figure7_panel_monotone_budgets(self):
        panel = run_figure7_panel("TFIM", TINY, seed=3)
        assert panel.budgets == sorted(panel.budgets)
        assert all(0 <= f <= 1 for f in panel.treevqa_fidelities)
        assert all(0 <= f <= 1 for f in panel.baseline_fidelities)
        # Fidelity curves are non-decreasing in the budget.
        assert all(
            b >= a - 1e-9
            for a, b in zip(panel.treevqa_fidelities, panel.treevqa_fidelities[1:])
        )


class TestStudies:
    def test_figure13_split_timing(self):
        result = run_figure13(TINY, benchmarks=("TFIM",), split_percentages=(25, 75), seed=3)
        assert len(result.points) == 2
        assert all(point.mean_error_percent >= 0 for point in result.points)
        assert result.best_split_percent("TFIM") in (25.0, 75.0)
        assert "Fig. 13" in format_figure13(result)

    def test_window_size_sweep(self):
        points = run_window_size_sweep("TFIM", TINY, window_sizes=(4, 12), seed=3)
        assert len(points) == 2
        assert points[0].window_size == 4
        assert all(0 <= p.final_accuracy_percent <= 100 for p in points)
        assert all(p.critical_depth_percent <= 100.0 + 1e-9 for p in points)

    def test_large_scale_benchmark_savings(self):
        result = run_large_scale_benchmark(
            "Ising25", preset_name="fast", noisy=False,
            shared_iterations=6, leaf_iterations=3, baseline_iterations=10, seed=2,
        )
        assert len(result.tasks) == 5
        assert all(task.treevqa_shots > 0 for task in result.tasks)
        assert result.mean_savings() > 0
