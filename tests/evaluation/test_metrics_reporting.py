"""Tests for evaluation metrics and report formatting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ShotLedger, VQATask
from repro.core.results import RunResult, TaskOutcome, TaskTrajectory
from repro.evaluation.metrics import (
    SavingsPoint,
    common_max_fidelity,
    fidelity,
    fidelity_budget_curve,
    relative_error,
    savings_at_threshold,
    savings_curve,
)
from repro.evaluation.reporting import format_heatmap, format_series, format_table
from repro.hamiltonians import transverse_field_ising_chain


def _make_result(energies, shots, reference=-4.0):
    task = VQATask("t", transverse_field_ising_chain(3, 1.0), reference_energy=reference)
    trajectory = TaskTrajectory("t")
    for s, e in zip(shots, energies):
        trajectory.record(s, e)
    ledger = ShotLedger()
    ledger.charge("t", 1, shots[-1])
    outcome = TaskOutcome(
        task, energies[-1], "x", task.fidelity(energies[-1]), task.error(energies[-1])
    )
    return RunResult(
        outcomes=[outcome], trajectories={"t": trajectory}, ledger=ledger, total_rounds=3
    )


class TestMetrics:
    def test_relative_error_and_fidelity(self):
        assert relative_error(-3.0, -4.0) == pytest.approx(0.25)
        assert fidelity(-3.0, -4.0) == pytest.approx(0.75)
        assert fidelity(-4.0, -4.0) == 1.0
        assert relative_error(1.0, 0.0) == 1.0
        assert 0.0 <= fidelity(10.0, -4.0) <= 1.0

    def test_savings_point_ratio(self):
        assert SavingsPoint(0.9, 100, 400).savings_ratio == 4.0
        assert SavingsPoint(0.9, None, 400).savings_ratio is None
        assert SavingsPoint(0.9, 100, None).savings_ratio is None

    def test_savings_curve_and_threshold(self):
        treevqa = _make_result([-2.0, -3.0, -3.8], [100, 200, 300])
        baseline = _make_result([-2.0, -3.0, -3.8], [1000, 2000, 3000])
        points = savings_curve(treevqa, baseline, [0.5, 0.75, 0.95])
        assert [p.threshold for p in points] == [0.5, 0.75, 0.95]
        assert points[1].savings_ratio == pytest.approx(10.0)
        threshold, ratio = savings_at_threshold(treevqa, baseline)
        assert threshold == pytest.approx(common_max_fidelity(treevqa, baseline))
        assert ratio == pytest.approx(10.0)

    def test_fidelity_budget_curve(self):
        result = _make_result([-2.0, -3.0, -3.8], [100, 200, 300])
        curve = fidelity_budget_curve(result, [150, 250, 350])
        assert [value for _, value in curve] == pytest.approx([0.5, 0.75, 0.95])
        mean_curve = fidelity_budget_curve(result, [350], aggregate="mean")
        assert mean_curve[0][1] == pytest.approx(0.95)
        with pytest.raises(ValueError):
            fidelity_budget_curve(result, [100], aggregate="median")


class TestReporting:
    def test_format_table_alignment_and_none(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["b", None]], title="T")
        assert text.startswith("T")
        assert "1.235" in text
        assert "-" in text

    def test_format_series(self):
        text = format_series("y", [1, 2], [0.5, 0.25])
        assert "0.5" in text and "0.25" in text

    def test_format_heatmap(self):
        matrix = np.array([[1.0, 0.5], [0.5, 1.0]])
        text = format_heatmap(["a", "b"], matrix, title="H")
        assert "1.00" in text and "0.50" in text
