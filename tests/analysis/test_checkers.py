"""Per-rule fixtures: one firing and one clean snippet per checker.

``check_source`` takes the canonical module path explicitly, so scoped rules
(estimator-layer exemptions, wide-path modules) are exercised with virtual
paths — no files need to exist on disk.
"""

from __future__ import annotations

from textwrap import dedent

from repro.analysis import check_source


def rules_in(source: str, relpath: str = "repro/fake.py") -> list[str]:
    findings, _ = check_source(dedent(source), relpath)
    return sorted({finding.rule for finding in findings})


class TestRngDiscipline:
    def test_unseeded_default_rng_fires(self):
        assert rules_in(
            """
            import numpy as np
            def draw():
                return np.random.default_rng().random()
            """
        ) == ["REPRO001"]

    def test_seeded_default_rng_is_clean(self):
        assert rules_in(
            """
            import numpy as np
            def draw(seed):
                return np.random.default_rng(seed).random()
            """
        ) == []

    def test_global_seed_and_legacy_samplers_fire(self):
        assert rules_in(
            """
            import numpy as np
            np.random.seed(0)
            x = np.random.normal(0.0, 1.0)
            """
        ) == ["REPRO001"]

    def test_seed_sequence_outside_estimator_layer_fires(self):
        source = """
            import numpy as np
            seq = np.random.SeedSequence(entropy=7, spawn_key=(1,))
            """
        assert rules_in(source, "repro/core/helper.py") == ["REPRO001"]

    def test_seed_sequence_inside_estimator_layer_is_clean(self):
        source = """
            import numpy as np
            seq = np.random.SeedSequence(entropy=7, spawn_key=(1,))
            """
        assert rules_in(source, "repro/quantum/sampling.py") == []

    def test_imported_default_rng_alias_is_caught(self):
        assert rules_in(
            """
            from numpy.random import default_rng
            rng = default_rng()
            """
        ) == ["REPRO001"]


class TestBackendContract:
    COMPLETE = """
        class ExecutionBackend:
            name = "abstract"
            provides_states = True

        class GoodBackend(ExecutionBackend):
            name = "good"
            provides_states = True

            def run_batch(self, requests, *, need_states=False):
                return [None for _ in requests]
        """

    def test_complete_backend_is_clean(self):
        assert rules_in(self.COMPLETE) == []

    def test_missing_run_batch_and_flags_fire(self):
        assert rules_in(
            """
            class ExecutionBackend:
                pass

            class LazyBackend(ExecutionBackend):
                pass
            """
        ) == ["REPRO002"]

    def test_transitive_subclass_is_checked(self):
        assert rules_in(
            """
            class ExecutionBackend:
                pass

            class Mid(ExecutionBackend):
                name = "mid"
                provides_states = True
                def run_batch(self, requests, *, need_states=False):
                    return []

            class Leaf(Mid):
                pass
            """
        ) == ["REPRO002"]

    def test_request_mutation_fires(self):
        assert rules_in(
            """
            class ExecutionBackend:
                pass

            class Mutator(ExecutionBackend):
                name = "mutator"
                provides_states = False
                def run_batch(self, requests, *, need_states=False):
                    for request in requests:
                        request.tag = "hijacked"
                    return []
            """
        ) == ["REPRO002"]

    def test_estimator_without_capability_flags_fires(self):
        assert rules_in(
            """
            class BaseEstimator:
                pass

            class VagueEstimator(BaseEstimator):
                def estimate(self, result):
                    return 0.0
            """
        ) == ["REPRO002"]

    def test_estimator_with_flag_is_clean(self):
        assert rules_in(
            """
            class BaseEstimator:
                pass

            class TermEstimator(BaseEstimator):
                consumes_term_vectors = True
            """
        ) == []


class TestWorkerSafety:
    def test_cpu_count_fires(self):
        assert rules_in(
            """
            import multiprocessing
            workers = multiprocessing.cpu_count()
            """
        ) == ["REPRO003"]

    def test_sched_getaffinity_is_clean(self):
        assert rules_in(
            """
            import os
            workers = len(os.sched_getaffinity(0))
            """
        ) == []

    def test_lambda_factory_keyword_fires(self):
        assert rules_in(
            """
            def launch(pool):
                pool.submit(backend_factory=lambda: object())
            """
        ) == ["REPRO003"]

    def test_lambda_inside_factory_function_fires(self):
        assert rules_in(
            """
            def make_backend():
                return lambda: object()
            """
        ) == ["REPRO003"]

    def test_nested_def_inside_factory_fires(self):
        assert rules_in(
            """
            def make_backend():
                def inner():
                    return object()
                return inner
            """
        ) == ["REPRO003"]

    def test_partial_factory_is_clean(self):
        assert rules_in(
            """
            from functools import partial

            def build(kind):
                return object()

            def make_backend(kind):
                return partial(build, kind)
            """
        ) == []

    def test_dataclass_default_factory_lambda_is_exempt(self):
        assert rules_in(
            """
            from dataclasses import dataclass, field

            @dataclass
            class Result:
                values: list = field(default_factory=lambda: [])
            """
        ) == []

    TRANSPORT = "repro/quantum/transport.py"

    def test_recv_under_lock_fires_in_transport_modules(self):
        assert rules_in(
            """
            class Endpoint:
                def recv_reply(self):
                    with self._lock:
                        return self._connection.recv()
            """,
            self.TRANSPORT,
        ) == ["REPRO003"]

    def test_bare_recv_call_under_lock_fires(self):
        assert rules_in(
            """
            def pump(lock, recv):
                with lock:
                    return recv()
            """,
            self.TRANSPORT,
        ) == ["REPRO003"]

    def test_recv_outside_lock_is_clean_in_transport_modules(self):
        assert rules_in(
            """
            class Endpoint:
                def recv_reply(self, timeout_s):
                    if not self._connection.poll(timeout_s):
                        raise TimeoutError
                    return self._connection.recv()

                def close(self):
                    with self._lock:
                        self._closed = True
            """,
            self.TRANSPORT,
        ) == []

    def test_recv_under_lock_outside_transport_modules_is_not_checked(self):
        # The invariant targets transport implementations; the dispatcher's
        # deliberate hold-the-lock-per-dispatch design is out of scope.
        assert rules_in(
            """
            class Endpoint:
                def recv_reply(self):
                    with self._lock:
                        return self._connection.recv()
            """
        ) == []


class TestExponentialAllocation:
    WIDE = "repro/core/fake.py"

    def test_unguarded_dense_allocation_fires(self):
        assert rules_in(
            """
            import numpy as np
            def amplitudes(num_qubits):
                return np.zeros(2 ** num_qubits, dtype=complex)
            """,
            self.WIDE,
        ) == ["REPRO004"]

    def test_unguarded_state_construction_fires(self):
        assert rules_in(
            """
            def state(num_qubits):
                return Statevector.zero_state(num_qubits)
            """,
            self.WIDE,
        ) == ["REPRO004"]

    def test_enclosing_width_guard_is_clean(self):
        assert rules_in(
            """
            import numpy as np
            def amplitudes(num_qubits):
                if num_qubits <= 20:
                    return np.zeros(2 ** num_qubits, dtype=complex)
                return None
            """,
            self.WIDE,
        ) == []

    def test_preceding_raise_guard_is_clean(self):
        assert rules_in(
            """
            import numpy as np
            def amplitudes(num_qubits):
                if num_qubits > 20:
                    raise ValueError("too wide")
                return np.zeros(1 << num_qubits, dtype=complex)
            """,
            self.WIDE,
        ) == []

    def test_dense_backend_modules_are_out_of_scope(self):
        assert rules_in(
            """
            import numpy as np
            def amplitudes(num_qubits):
                return np.zeros(2 ** num_qubits, dtype=complex)
            """,
            "repro/quantum/statevector.py",
        ) == []

    def test_non_width_exponent_is_clean(self):
        assert rules_in(
            """
            import numpy as np
            def table(depth):
                return np.zeros(2 ** depth)
            """,
            self.WIDE,
        ) == []


class TestConfigContract:
    def test_documented_validated_config_is_clean(self):
        assert rules_in(
            """
            from dataclasses import dataclass

            @dataclass
            class TreeVQAConfig:
                '''Config.

                Attributes:
                    max_rounds: Round cap; must be >= 1.
                '''

                max_rounds: int = 200

                def __post_init__(self):
                    if self.max_rounds < 1:
                        raise ValueError("max_rounds must be >= 1")
            """,
            "repro/core/config.py",
        ) == []

    def test_undocumented_unvalidated_field_fires(self):
        findings, _ = check_source(
            dedent(
                """
                from dataclasses import dataclass

                @dataclass
                class TreeVQAConfig:
                    '''Config.

                    Attributes:
                        max_rounds: Round cap; must be >= 1.
                    '''

                    max_rounds: int = 200
                    mystery_knob: float = 0.0

                    def __post_init__(self):
                        if self.max_rounds < 1:
                            raise ValueError("max_rounds must be >= 1")
                """
            ),
            "repro/core/config.py",
        )
        messages = [finding.message for finding in findings]
        assert all(finding.rule == "REPRO005" for finding in findings)
        assert any("undocumented" in message for message in messages)
        assert any("validation branch" in message for message in messages)

    def test_validation_via_helper_method_is_reachable(self):
        assert rules_in(
            """
            from dataclasses import dataclass

            @dataclass
            class TreeVQAConfig:
                '''Config.

                Attributes:
                    max_rounds: Round cap; must be >= 1.
                '''

                max_rounds: int = 200

                def __post_init__(self):
                    self._validate()

                def _validate(self):
                    if self.max_rounds < 1:
                        raise ValueError("max_rounds must be >= 1")
            """,
            "repro/core/config.py",
        ) == []

    def test_unforwarded_backend_knob_fires(self):
        findings, _ = check_source(
            dedent(
                """
                from dataclasses import dataclass

                @dataclass
                class TreeVQAConfig:
                    '''Config.

                    Attributes:
                        noise_scale: Noise strength; must be finite.
                    '''

                    noise_scale: float = 0.0

                    def __post_init__(self):
                        if self.noise_scale < 0:
                            raise ValueError("noise_scale must be >= 0")

                    def _inner_backend_factory(self):
                        return object
                """
            ),
            "repro/core/config.py",
        )
        assert [finding.rule for finding in findings] == ["REPRO005"]
        assert "worker processes" in findings[0].message

    def test_other_classes_are_ignored(self):
        assert rules_in(
            """
            from dataclasses import dataclass

            @dataclass
            class SomeOtherConfig:
                undocumented: int = 0
            """,
            "repro/core/config.py",
        ) == []
