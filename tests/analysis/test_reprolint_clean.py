"""Smoke test: the shipped tree satisfies its own invariants.

This is the in-suite twin of the CI lint gate — it fails the fast tier
immediately if a change reintroduces an unseeded RNG, an unguarded dense
allocation, a contract-less backend, or a stale/unjustified suppression.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import check_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_is_lint_clean():
    report = check_paths([REPO_ROOT / "src"])
    assert report.files_checked > 0
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.clean, f"reprolint findings:\n{rendered}"
