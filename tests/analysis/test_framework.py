"""Framework-level behaviour: suppressions, scoping, reporting, CLI."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    META_RULE,
    REGISTRY,
    check_paths,
    check_source,
)
from repro.analysis.framework import canonical_module_path

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A snippet with exactly one REPRO001 finding (unseeded default_rng).
UNSEEDED = "import numpy as np\nrng = np.random.default_rng()\n"


def findings_of(source: str, relpath: str = "repro/fake.py"):
    findings, suppressed = check_source(source, relpath)
    return findings, suppressed


class TestCanonicalPaths:
    def test_src_prefix_is_stripped(self):
        assert (
            canonical_module_path("src/repro/quantum/backend.py")
            == "repro/quantum/backend.py"
        )

    def test_deepest_repro_component_roots_the_path(self):
        assert (
            canonical_module_path("/x/repro/src/repro/core/task.py")
            == "repro/core/task.py"
        )

    def test_paths_outside_repro_pass_through(self):
        assert canonical_module_path("./scripts/tool.py") == "scripts/tool.py"


class TestSuppressions:
    def test_same_line_suppression_with_justification(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# reprolint: disable=REPRO001 -- fixture exercises the raw API\n"
        )
        findings, suppressed = findings_of(source)
        assert findings == []
        assert suppressed == 1

    def test_line_above_suppression(self):
        source = (
            "import numpy as np\n"
            "# reprolint: disable=REPRO001 -- fixture exercises the raw API\n"
            "rng = np.random.default_rng()\n"
        )
        findings, suppressed = findings_of(source)
        assert findings == []
        assert suppressed == 1

    def test_file_level_suppression_covers_any_line(self):
        source = (
            "# reprolint: disable-file=REPRO001 -- legacy RNG fixture module\n"
            "import numpy as np\n\n\n"
            "rng = np.random.default_rng()\n"
        )
        findings, suppressed = findings_of(source)
        assert findings == []
        assert suppressed == 1

    def test_missing_justification_is_a_meta_finding_and_does_not_suppress(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # reprolint: disable=REPRO001\n"
        )
        findings, suppressed = findings_of(source)
        assert suppressed == 0
        rules = sorted(finding.rule for finding in findings)
        assert rules == [META_RULE, "REPRO001"]
        meta = next(f for f in findings if f.rule == META_RULE)
        assert "justification" in meta.message

    def test_unknown_rule_is_reported(self):
        source = "x = 1  # reprolint: disable=REPRO999 -- because\n"
        findings, _ = findings_of(source)
        assert [f.rule for f in findings] == [META_RULE]
        assert "unknown rule" in findings[0].message

    def test_meta_rule_cannot_be_suppressed(self):
        source = "x = 1  # reprolint: disable=REPRO000 -- trying anyway\n"
        findings, _ = findings_of(source)
        assert [f.rule for f in findings] == [META_RULE]
        assert "cannot be suppressed" in findings[0].message

    def test_unused_suppression_is_reported(self):
        source = "x = 1  # reprolint: disable=REPRO001 -- stale exemption\n"
        findings, _ = findings_of(source)
        assert [f.rule for f in findings] == [META_RULE]
        assert "unused suppression" in findings[0].message

    def test_suppression_of_other_rule_does_not_hide_finding(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# reprolint: disable=REPRO003 -- wrong rule\n"
        )
        findings, suppressed = findings_of(source)
        assert suppressed == 0
        rules = sorted(finding.rule for finding in findings)
        # The unmatched suppression is itself flagged as unused.
        assert rules == [META_RULE, "REPRO001"]


class TestReporting:
    def test_syntax_error_becomes_parse_finding(self):
        findings, _ = findings_of("def broken(:\n")
        assert [f.rule for f in findings] == [META_RULE]
        assert findings[0].name == "parse-error"

    def test_findings_carry_locations(self):
        findings, _ = findings_of(UNSEEDED)
        (finding,) = findings
        assert finding.line == 2
        assert finding.render().startswith("repro/fake.py:2:")

    def test_rules_filter_restricts_run(self):
        findings, _ = check_source(UNSEEDED, "repro/fake.py", rules=("REPRO004",))
        assert findings == []

    def test_check_paths_json_schema(self, tmp_path):
        module = tmp_path / "repro" / "thing.py"
        module.parent.mkdir()
        module.write_text(UNSEEDED, encoding="utf-8")
        report = check_paths([tmp_path])
        payload = report.as_dict()
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["suppressed"] == 0
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "col", "rule", "name", "message"}
        assert finding["rule"] == "REPRO001"

    def test_registry_has_all_five_rules(self):
        assert sorted(REGISTRY) == [
            "REPRO001",
            "REPRO002",
            "REPRO003",
            "REPRO004",
            "REPRO005",
        ]


class TestCli:
    def run_cli(self, *args: str, cwd: Path | None = None):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            cwd=cwd or REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        result = self.run_cli(str(clean))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK" in result.stdout

    def test_findings_exit_one_with_location(self, tmp_path):
        dirty = tmp_path / "repro" / "dirty.py"
        dirty.parent.mkdir()
        dirty.write_text(UNSEEDED, encoding="utf-8")
        result = self.run_cli(str(dirty))
        assert result.returncode == 1
        assert f"{dirty.as_posix()}:2:" in result.stdout
        assert "REPRO001" in result.stdout

    def test_json_format_is_machine_readable(self, tmp_path):
        dirty = tmp_path / "repro" / "dirty.py"
        dirty.parent.mkdir()
        dirty.write_text(UNSEEDED, encoding="utf-8")
        result = self.run_cli(str(dirty), "--format=json")
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["findings"][0]["rule"] == "REPRO001"

    def test_unknown_rule_is_usage_error(self):
        result = self.run_cli("--rules=NOPE", "src")
        assert result.returncode == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        result = self.run_cli(str(tmp_path / "absent"))
        assert result.returncode == 2

    def test_list_rules(self):
        result = self.run_cli("--list-rules")
        assert result.returncode == 0
        for rule in ("REPRO001", "REPRO005"):
            assert rule in result.stdout


@pytest.mark.parametrize("rule", sorted(REGISTRY))
def test_every_rule_has_name_and_description(rule):
    checker = REGISTRY[rule]
    assert checker.name and checker.name != "abstract"
    assert checker.description
