"""Tests for the application wrappers and the top-level public API."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.applications import build_pes_tasks, run_landscape, run_pes_scan
from repro.core import TreeVQAConfig
from repro.hamiltonians import tfim_suite


class TestPESApplication:
    def test_build_pes_tasks_precision_controls_count(self):
        coarse, _ = build_pes_tasks("LiH", precision=0.1)
        fine, _ = build_pes_tasks("LiH", precision=0.03)
        assert len(fine) > len(coarse)
        assert all(task.initial_bitstring is not None for task in fine)
        with pytest.raises(ValueError):
            build_pes_tasks("LiH", precision=0.0)

    def test_run_pes_scan_produces_curve(self):
        config = TreeVQAConfig(
            max_rounds=15, warmup_iterations=4, window_size=3, seed=0,
        )
        curve = run_pes_scan("H2", precision=0.05, config=config, ansatz_layers=1)
        assert curve.molecule == "H2"
        assert len(curve.points) >= 2
        assert curve.total_shots > 0
        assert curve.max_error() >= 0
        bond_lengths = [point.bond_length for point in curve.points]
        assert bond_lengths == sorted(bond_lengths)
        equilibrium = curve.equilibrium()
        assert equilibrium.energy == min(p.energy for p in curve.points)

    def test_run_pes_scan_method_validation(self):
        with pytest.raises(ValueError):
            run_pes_scan("H2", method="quantum-annealing")


class TestLandscapeApplication:
    def test_run_landscape_treevqa_and_baseline(self):
        suite = tfim_suite(num_sites=4, fields=[0.9, 1.1], num_ansatz_layers=1)
        config = TreeVQAConfig(max_rounds=12, warmup_iterations=4, window_size=3, seed=0)
        landscape = run_landscape(suite, config=config)
        assert landscape.method == "treevqa"
        assert len(landscape.points) == 2
        assert np.all(np.diff(landscape.scan_parameters()) > 0)
        baseline = run_landscape(suite, config=config, method="baseline")
        assert baseline.total_shots > 0
        with pytest.raises(ValueError):
            run_landscape(suite, config=config, method="other")


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_key_entry_points_importable(self):
        from repro.core import IndependentVQABaseline, TreeVQAConfig, TreeVQAController, VQATask
        from repro.ansatz import HardwareEfficientAnsatz
        from repro.evaluation.experiments import run_figure6
        from repro.quantum import PauliOperator, Statevector

        assert callable(run_figure6)
        assert TreeVQAController is not None
        assert IndependentVQABaseline is not None
        assert VQATask is not None
        assert TreeVQAConfig is not None
        assert HardwareEfficientAnsatz is not None
        assert PauliOperator is not None
        assert Statevector is not None
