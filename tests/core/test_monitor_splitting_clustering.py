"""Tests for slope monitoring, split conditions and spectral clustering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import kmeans, normalized_laplacian, spectral_clustering, spectral_embedding
from repro.core.monitor import SlopeMonitor, linear_regression_slope
from repro.core.splitting import SplitDecision, assign_split_groups, evaluate_split_condition


class TestLinearRegressionSlope:
    def test_known_slopes(self):
        assert linear_regression_slope([1.0, 2.0, 3.0, 4.0]) == pytest.approx(1.0)
        assert linear_regression_slope([5.0, 3.0, 1.0]) == pytest.approx(-2.0)
        assert linear_regression_slope([2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_short_series(self):
        assert linear_regression_slope([1.0]) == 0.0
        assert linear_regression_slope([]) == 0.0

    @given(st.floats(-3, 3), st.floats(-5, 5), st.integers(3, 30))
    @settings(max_examples=30, deadline=None)
    def test_recovers_exact_linear_trend(self, slope, intercept, length):
        values = [slope * i + intercept for i in range(length)]
        assert linear_regression_slope(values) == pytest.approx(slope, abs=1e-8)


class TestSlopeMonitor:
    def test_validation(self):
        with pytest.raises(ValueError):
            SlopeMonitor(0, 5, 2)
        with pytest.raises(ValueError):
            SlopeMonitor(2, 1, 2)
        with pytest.raises(ValueError):
            SlopeMonitor(2, 5, -1)

    def test_record_length_check(self):
        monitor = SlopeMonitor(num_tasks=2, window_size=3, warmup_iterations=0)
        with pytest.raises(ValueError):
            monitor.record(1.0, [1.0])

    def test_ready_requires_warmup_and_full_window(self):
        monitor = SlopeMonitor(num_tasks=1, window_size=3, warmup_iterations=5)
        for i in range(3):
            monitor.record(float(i), [float(i)])
        report = monitor.report()
        assert report.window_filled
        assert not report.past_warmup
        assert not report.ready
        for i in range(3):
            monitor.record(float(i), [float(i)])
        assert monitor.report().ready

    def test_slopes_track_recent_window_only(self):
        monitor = SlopeMonitor(num_tasks=2, window_size=4, warmup_iterations=0)
        # Decreasing for 10 steps then flat for 4: window slope should be ~0.
        for i in range(10):
            monitor.record(10.0 - i, [10.0 - i, 5.0])
        for _ in range(4):
            monitor.record(1.0, [1.0, 5.0])
        report = monitor.report()
        assert abs(report.mixed_slope) < 1e-9
        assert report.individual_slopes[1] == pytest.approx(0.0)


class TestSplitCondition:
    def _report(self, mixed_slope, individual, ready=True):
        from repro.core.monitor import SlopeReport

        return SlopeReport(
            mixed_slope=mixed_slope,
            individual_slopes=tuple(individual),
            window_filled=ready,
            past_warmup=ready,
        )

    def test_not_ready_never_splits(self):
        decision = evaluate_split_condition(self._report(0.0, [0.0], ready=False), 1e-3)
        assert not decision.should_split

    def test_stall_triggers_split(self):
        decision = evaluate_split_condition(self._report(1e-5, [-0.1, -0.2]), 1e-3)
        assert decision.should_split
        assert "stalled" in decision.reason

    def test_positive_individual_slope_triggers_split(self):
        decision = evaluate_split_condition(self._report(-0.5, [-0.1, 0.05]), 1e-3)
        assert decision.should_split
        assert "divergence" in decision.reason

    def test_progressing_does_not_split(self):
        decision = evaluate_split_condition(self._report(-0.5, [-0.1, -0.2]), 1e-3)
        assert not decision.should_split

    def test_individual_threshold_relaxation(self):
        report = self._report(-0.5, [-0.1, 0.001])
        assert evaluate_split_condition(report, 1e-3).should_split
        held = evaluate_split_condition(report, 1e-3, individual_slope_threshold=0.01)
        assert not held.should_split

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            evaluate_split_condition(self._report(0.0, [0.0]), -1.0)

    def test_no_split_constructor(self):
        decision = SplitDecision.no_split("because")
        assert not decision.should_split


class TestKMeans:
    def test_two_obvious_clusters(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
        labels = kmeans(points, 2, seed=0)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_degenerate_cases(self):
        points = np.random.default_rng(0).normal(size=(4, 2))
        assert set(kmeans(points, 1).tolist()) == {0}
        assert sorted(kmeans(points, 4).tolist()) == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            kmeans(points, 5)
        with pytest.raises(ValueError):
            kmeans(points[0], 1)


class TestSpectralClustering:
    def _block_similarity(self):
        similarity = np.full((6, 6), 0.05)
        similarity[:3, :3] = 0.95
        similarity[3:, 3:] = 0.95
        np.fill_diagonal(similarity, 1.0)
        return similarity

    def test_laplacian_properties(self):
        laplacian = normalized_laplacian(self._block_similarity())
        eigenvalues = np.linalg.eigvalsh(laplacian)
        assert eigenvalues[0] == pytest.approx(0.0, abs=1e-9)
        assert np.all(eigenvalues >= -1e-9)

    def test_embedding_shape(self):
        embedding = spectral_embedding(self._block_similarity(), 2)
        assert embedding.shape == (6, 2)

    def test_block_structure_recovered(self):
        labels = spectral_clustering(self._block_similarity(), 2, seed=0)
        assert len(set(labels[:3])) == 1
        assert len(set(labels[3:])) == 1
        assert labels[0] != labels[5]

    def test_all_labels_used_even_for_uniform_similarity(self):
        similarity = np.ones((4, 4))
        labels = spectral_clustering(similarity, 2, seed=1)
        assert set(labels.tolist()) == {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            spectral_clustering(np.ones((2, 3)), 2)
        asymmetric = np.array([[1.0, 0.2], [0.4, 1.0]])
        with pytest.raises(ValueError):
            spectral_clustering(asymmetric, 2)
        with pytest.raises(ValueError):
            spectral_clustering(np.ones((3, 3)), 4)

    def test_single_cluster(self):
        labels = spectral_clustering(np.ones((3, 3)), 1)
        assert set(labels.tolist()) == {0}


class TestAssignSplitGroups:
    def test_groups_are_non_empty_partition(self):
        similarity = np.full((5, 5), 0.1)
        similarity[:2, :2] = 0.9
        similarity[2:, 2:] = 0.9
        np.fill_diagonal(similarity, 1.0)
        groups = assign_split_groups(similarity, 2, seed=0)
        assert len(groups) == 2
        flattened = sorted(index for group in groups for index in group)
        assert flattened == list(range(5))
        assert all(groups)

    def test_singleton_rejected(self):
        with pytest.raises(ValueError):
            assign_split_groups(np.ones((1, 1)), 2)

    def test_more_groups_than_items_clamped(self):
        groups = assign_split_groups(np.ones((2, 2)), 4, seed=0)
        assert len(groups) == 2
